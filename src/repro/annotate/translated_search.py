"""Translated whole-genome homology search (the paper's future work).

The paper's conclusion: *"A future version of Darwin-WGA will also allow
for TBLASTX-like search in the amino acid space for protein-coding genes
in addition to DNA alignments."*  This module implements that mode in
software: both genomes are translated in all reading frames, amino-acid
word hits are enumerated, extended without gaps under an X-drop rule
(BLOSUM62), deduplicated per diagonal, and reported with their DNA
coordinates — protein-level homologies that DNA seeding can miss once
synonymous third-codon positions have saturated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from .blosum import blosum62
from .tblastx import TblastxParams, _aa_words, _ungapped_protein_block
from .translate import translate


@dataclass(frozen=True)
class TranslatedHit:
    """A protein-space local homology between two genomes.

    Coordinates are DNA positions on the forward strands; ``*_frame``
    are reading frames 0-2 (forward) or 3-5 (reverse complement).
    """

    score: int
    target_frame: int
    query_frame: int
    target_start: int
    target_end: int
    query_start: int
    query_end: int

    @property
    def aa_length(self) -> int:
        return (self.target_end - self.target_start) // 3


def _frame_translations(seq: Sequence) -> List[Tuple[int, np.ndarray]]:
    frames = [(f, translate(seq, f)) for f in range(3)]
    reverse = seq.reverse_complement()
    frames.extend((f + 3, translate(reverse, f)) for f in range(3))
    return frames


def _dna_interval(
    frame: int, aa_start: int, aa_end: int, dna_length: int
) -> Tuple[int, int]:
    """Map an amino-acid interval of a frame back to forward-strand DNA."""
    offset = frame % 3
    start = offset + 3 * aa_start
    end = offset + 3 * aa_end
    if frame < 3:
        return start, min(end, dna_length)
    # Reverse frames index the reverse complement; flip back.
    return max(dna_length - end, 0), dna_length - start


def translated_search(
    target: Sequence,
    query: Sequence,
    params: Optional[TblastxParams] = None,
    max_hits: int = 200,
) -> List[TranslatedHit]:
    """Find protein-space homologies between two DNA sequences.

    Returns hits sorted by descending score, at most one per
    (frame pair, diagonal, block) after dedup, capped at ``max_hits``.
    """
    params = params or TblastxParams()
    matrix = blosum62()
    target_frames = _frame_translations(target)
    query_frames = _frame_translations(query)

    hits: List[TranslatedHit] = []
    for t_frame, t_aa in target_frames:
        t_words = _aa_words(t_aa, params.word_size)
        if t_words.size == 0:
            continue
        order = np.argsort(t_words, kind="stable")
        sorted_words = t_words[order]
        for q_frame, q_aa in query_frames:
            q_words = _aa_words(q_aa, params.word_size)
            if q_words.size == 0:
                continue
            left = np.searchsorted(sorted_words, q_words, "left")
            right = np.searchsorted(sorted_words, q_words, "right")
            seen_blocks = set()
            for q_pos in np.flatnonzero(right > left):
                for slot in range(left[q_pos], right[q_pos]):
                    t_pos = int(order[slot])
                    score, b_start, b_end = _ungapped_protein_block(
                        t_aa,
                        q_aa,
                        t_pos,
                        int(q_pos),
                        params.word_size,
                        matrix,
                        params.xdrop,
                    )
                    if score < params.threshold:
                        continue
                    diagonal = t_pos - int(q_pos)
                    key = (diagonal, b_start)
                    if key in seen_blocks:
                        continue
                    seen_blocks.add(key)
                    q_start = b_start - diagonal
                    q_end = b_end - diagonal
                    t_dna = _dna_interval(
                        t_frame, b_start, b_end, len(target)
                    )
                    q_dna = _dna_interval(
                        q_frame, q_start, q_end, len(query)
                    )
                    hits.append(
                        TranslatedHit(
                            score=score,
                            target_frame=t_frame,
                            query_frame=q_frame,
                            target_start=t_dna[0],
                            target_end=t_dna[1],
                            query_start=q_dna[0],
                            query_end=q_dna[1],
                        )
                    )
    hits.sort(key=lambda h: -h.score)
    return hits[:max_hits]


def protein_space_recall(
    hits: List[TranslatedHit],
    exons: List,
    min_overlap: float = 0.5,
) -> float:
    """Fraction of exon intervals overlapped by translated hits."""
    if not exons:
        return 0.0
    covered = 0
    for exon in exons:
        span = exon.end - exon.start
        best = 0
        for hit in hits:
            lo = max(exon.start, hit.target_start)
            hi = min(exon.end, hit.target_end)
            best = max(best, hi - lo)
        if span > 0 and best >= min_overlap * span:
            covered += 1
    return covered / len(exons)
