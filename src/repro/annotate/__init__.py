"""Annotation analysis: translation, mini-TBLASTX, exon coverage."""

from .blosum import blosum62
from .exons import ExonCoverageReport, exon_coverage, uncovered_exons
from .tblastx import (
    TblastxHit,
    TblastxParams,
    find_orthologous_exons,
)
from .translated_search import (
    TranslatedHit,
    protein_space_recall,
    translated_search,
)
from .translate import (
    AA_ALPHABET,
    AA_STOP,
    AA_X,
    decode_protein,
    encode_protein,
    six_frame_translations,
    translate,
)

__all__ = [
    "blosum62",
    "ExonCoverageReport",
    "exon_coverage",
    "uncovered_exons",
    "TblastxHit",
    "TblastxParams",
    "find_orthologous_exons",
    "AA_ALPHABET",
    "AA_STOP",
    "AA_X",
    "decode_protein",
    "encode_protein",
    "six_frame_translations",
    "translate",
    "TranslatedHit",
    "protein_space_recall",
    "translated_search",
]
