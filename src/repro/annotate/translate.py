"""Codon translation: DNA to amino-acid sequences.

Supports the mini-TBLASTX exon-orthology search (paper section V-E uses
TBLASTX to establish which exons have high-confidence protein-level
orthologs).  Amino acids are numerically encoded like DNA bases so that
BLOSUM matrices index directly.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..genome import alphabet
from ..genome.sequence import Sequence

#: Amino-acid alphabet: the 20 standard residues, X (unknown), * (stop).
AA_ALPHABET = "ARNDCQEGHILKMFPSTWYVX*"

#: Numeric codes for X and stop.
AA_X = AA_ALPHABET.index("X")
AA_STOP = AA_ALPHABET.index("*")

_AA_CODE: Dict[str, int] = {aa: i for i, aa in enumerate(AA_ALPHABET)}

# Standard genetic code, codons in TCAG-free ACGT ordering below.
_CODON_STRING = (
    "KNKN" "TTTT" "RSRS" "IIMI"  # AAx ACx AGx ATx
    "QHQH" "PPPP" "RRRR" "LLLL"  # CAx CCx CGx CTx
    "EDED" "AAAA" "GGGG" "VVVV"  # GAx GCx GGx GTx
    "*Y*Y" "SSSS" "*CWC" "LFLF"  # TAx TCx TGx TTx
)
# Index layout: first base * 16 + second base * 4 + third base, with the
# numeric base codes A=0, C=1, G=2, T=3.

_CODON_TABLE = np.empty(64, dtype=np.uint8)
for _idx, _aa in enumerate(_CODON_STRING):
    _CODON_TABLE[_idx] = _AA_CODE[_aa]


def encode_protein(text: str) -> np.ndarray:
    """Encode a protein string into amino-acid codes (unknown -> X)."""
    return np.array(
        [_AA_CODE.get(ch.upper(), AA_X) for ch in text], dtype=np.uint8
    )


def decode_protein(codes: np.ndarray) -> str:
    """Decode amino-acid codes back to a string."""
    return "".join(AA_ALPHABET[int(c)] for c in codes)


def translate(seq: Sequence, frame: int = 0) -> np.ndarray:
    """Translate a DNA sequence in one forward reading frame.

    ``frame`` is 0, 1, or 2 (the offset of the first codon).  Codons
    containing an ambiguous base translate to ``X``.  Returns amino-acid
    codes.
    """
    if frame not in (0, 1, 2):
        raise ValueError("frame must be 0, 1, or 2")
    codes = seq.codes[frame:]
    n_codons = codes.size // 3
    if n_codons == 0:
        return np.empty(0, dtype=np.uint8)
    codons = codes[: n_codons * 3].reshape(n_codons, 3).astype(np.int64)
    ambiguous = (codons >= alphabet.NUM_NUCLEOTIDES).any(axis=1)
    indices = codons[:, 0] * 16 + codons[:, 1] * 4 + codons[:, 2]
    indices[ambiguous] = 0
    amino = _CODON_TABLE[indices]
    amino[ambiguous] = AA_X
    return amino


def six_frame_translations(seq: Sequence) -> List[np.ndarray]:
    """All six reading-frame translations (3 forward, 3 reverse)."""
    frames = [translate(seq, frame) for frame in range(3)]
    reverse = seq.reverse_complement()
    frames.extend(translate(reverse, frame) for frame in range(3))
    return frames
