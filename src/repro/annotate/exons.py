"""Exon-coverage sensitivity metric (paper Table III, last columns).

An orthologous exon counts as *covered* by a whole genome alignment when
a sufficient fraction of its target bases lies inside aligned chain
blocks.  The paper counts how many TBLASTX-confirmed exons each aligner's
chains cover; higher coverage at equal noise means higher sensitivity on
the functionally relevant part of the genome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence as TypingSequence

import numpy as np

from ..chain.chainer import Chain
from ..genome.evolution import Interval


@dataclass(frozen=True)
class ExonCoverageReport:
    """Coverage of an orthologous exon set by one aligner's chains."""

    total_exons: int
    covered_exons: int

    @property
    def coverage(self) -> float:
        return (
            self.covered_exons / self.total_exons if self.total_exons else 0.0
        )


def _aligned_target_mask(
    chains: TypingSequence[Chain], length: int
) -> np.ndarray:
    """Boolean mask of target positions inside aligned chain blocks."""
    mask = np.zeros(length, dtype=bool)
    for chain in chains:
        for block in chain.blocks:
            start = max(0, block.target_start)
            end = min(length, block.target_end)
            if end > start:
                mask[start:end] = True
    return mask


def exon_coverage(
    chains: TypingSequence[Chain],
    exons: TypingSequence[Interval],
    target_length: int,
    min_fraction: float = 0.5,
) -> ExonCoverageReport:
    """Count exons covered by the chains.

    Args:
        chains: the aligner's chains.
        exons: orthologous exon intervals in target coordinates.
        target_length: target genome length.
        min_fraction: minimum fraction of exon bases that must be aligned.
    """
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError("min_fraction must lie in (0, 1]")
    mask = _aligned_target_mask(chains, target_length)
    covered = 0
    for exon in exons:
        start = max(0, exon.start)
        end = min(target_length, exon.end)
        if end <= start:
            continue
        aligned = int(mask[start:end].sum())
        if aligned >= min_fraction * (end - start):
            covered += 1
    return ExonCoverageReport(
        total_exons=len(exons), covered_exons=covered
    )


def uncovered_exons(
    chains: TypingSequence[Chain],
    exons: TypingSequence[Interval],
    target_length: int,
    min_fraction: float = 0.5,
) -> List[Interval]:
    """The exons the chains fail to cover (Figure 9-style case studies)."""
    mask = _aligned_target_mask(chains, target_length)
    missed: List[Interval] = []
    for exon in exons:
        start = max(0, exon.start)
        end = min(target_length, exon.end)
        if end <= start:
            continue
        aligned = int(mask[start:end].sum())
        if aligned < min_fraction * (end - start):
            missed.append(exon)
    return missed
