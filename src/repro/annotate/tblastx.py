"""Mini-TBLASTX: translated exon-orthology search.

The paper uses TBLASTX to decide, independently of the whole-genome
aligners, which protein-coding exons of the target have a high-confidence
ortholog in the query (section V-E); the resulting exon set is the
denominator for the exon-coverage sensitivity metric (Table III).

This implementation follows the BLAST recipe at small scale: translate
the exon in three frames and the query genome in six frames, find exact
amino-acid word hits (default 3-mers), and extend each hit without gaps
under an X-drop rule using BLOSUM62.  An exon "has an ortholog" when any
extended hit reaches the score threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from ..genome.evolution import Interval
from .blosum import blosum62
from .translate import AA_ALPHABET, six_frame_translations, translate


@dataclass(frozen=True)
class TblastxParams:
    """Word size, X-drop and reporting threshold of the search."""

    word_size: int = 3
    xdrop: int = 22
    threshold: int = 60
    #: Blocks whose (query - exon) diagonals fall in the same slack
    #: window chain together (tolerating codon-indel shifts).
    diagonal_slack: int = 8

    def __post_init__(self) -> None:
        if self.word_size < 1:
            raise ValueError("word_size must be positive")


@dataclass(frozen=True)
class TblastxHit:
    """Best translated hit of one exon."""

    exon: Interval
    score: int
    query_frame: int
    query_aa_pos: int


def _aa_words(codes: np.ndarray, k: int) -> np.ndarray:
    """Pack k consecutive amino-acid codes into integer words."""
    if codes.size < k:
        return np.empty(0, dtype=np.int64)
    base = len(AA_ALPHABET)
    weights = base ** np.arange(k - 1, -1, -1, dtype=np.int64)
    return (
        np.lib.stride_tricks.sliding_window_view(
            codes.astype(np.int64), k
        )
        @ weights
    )


def _ungapped_protein_block(
    a: np.ndarray,
    b: np.ndarray,
    start_a: int,
    start_b: int,
    word: int,
    matrix: np.ndarray,
    xdrop: int,
) -> Tuple[int, int, int]:
    """Two-sided ungapped X-drop extension of an amino-acid word hit.

    Returns ``(score, block_start, block_end)`` in the coordinates of
    ``a`` (the exon translation).
    """

    def one_side(offsets: np.ndarray) -> Tuple[int, int]:
        ai = start_a + offsets
        bi = start_b + offsets
        valid = (ai >= 0) & (ai < a.size) & (bi >= 0) & (bi < b.size)
        if not valid.any():
            return 0, 0
        ai = ai[valid]
        bi = bi[valid]
        scores = matrix[a[ai], b[bi]].astype(np.int64)
        cumulative = np.cumsum(scores)
        running = np.maximum.accumulate(np.maximum(cumulative, 0))
        dead = np.flatnonzero(running - cumulative > xdrop)
        limit = int(dead[0]) if dead.size else scores.size
        if limit == 0:
            return 0, 0
        best = int(np.argmax(cumulative[:limit]))
        score = int(cumulative[best])
        if score <= 0:
            return 0, 0
        return score, best + 1

    core = int(
        matrix[
            a[start_a : start_a + word], b[start_b : start_b + word]
        ].sum()
    )
    right_score, right_span = one_side(np.arange(word, word + 200))
    left_score, left_span = one_side(-np.arange(1, 201))
    return (
        core + right_score + left_score,
        start_a - left_span,
        start_a + word + right_span,
    )


def best_exon_hit(
    exon_seq: Sequence,
    query_frames: List[np.ndarray],
    params: TblastxParams,
    matrix: np.ndarray,
) -> Optional[tuple]:
    """Best translated hit of one exon against pre-translated frames.

    Collinear ungapped blocks on nearby diagonals of the same query frame
    are *chained* (their scores summed): codon indels inside real exons
    fragment the protein alignment into short blocks shifted by one or
    two residues, exactly like TBLASTX's gapped statistics would bridge.
    """
    best: Optional[tuple] = None
    for exon_frame in range(3):
        exon_aa = translate(exon_seq, exon_frame)
        exon_words = _aa_words(exon_aa, params.word_size)
        if exon_words.size == 0:
            continue
        for frame_id, frame_aa in enumerate(query_frames):
            frame_words = _aa_words(frame_aa, params.word_size)
            if frame_words.size == 0:
                continue
            order = np.argsort(frame_words, kind="stable")
            sorted_words = frame_words[order]
            left = np.searchsorted(sorted_words, exon_words, "left")
            right = np.searchsorted(sorted_words, exon_words, "right")
            # blocks[bucket] maps block_start -> (score, end, query_pos)
            blocks: dict = {}
            for exon_pos in np.flatnonzero(right > left):
                for slot in range(left[exon_pos], right[exon_pos]):
                    query_pos = int(order[slot])
                    score, b_start, b_end = _ungapped_protein_block(
                        exon_aa,
                        frame_aa,
                        int(exon_pos),
                        query_pos,
                        params.word_size,
                        matrix,
                        params.xdrop,
                    )
                    if score <= 0:
                        continue
                    bucket = (query_pos - int(exon_pos)) // max(
                        1, params.diagonal_slack
                    )
                    per_bucket = blocks.setdefault(bucket, {})
                    known = per_bucket.get(b_start)
                    if known is None or score > known[0]:
                        per_bucket[b_start] = (score, b_end, query_pos)
            for bucket, per_bucket in blocks.items():
                total = 0
                last_end = -1
                anchor_pos = None
                for b_start in sorted(per_bucket):
                    score, b_end, query_pos = per_bucket[b_start]
                    if b_start < last_end:
                        continue
                    total += score
                    last_end = b_end
                    if anchor_pos is None:
                        anchor_pos = query_pos
                if best is None or total > best[0]:
                    best = (total, frame_id, anchor_pos or 0)
    return best


def find_orthologous_exons(
    target: Sequence,
    exons: List[Interval],
    query: Sequence,
    params: Optional[TblastxParams] = None,
) -> List[TblastxHit]:
    """Exons of ``target`` with a high-confidence translated hit in
    ``query`` — the paper's TBLASTX "Total" exon set."""
    params = params or TblastxParams()
    matrix = blosum62()
    query_frames = six_frame_translations(query)
    hits: List[TblastxHit] = []
    for exon in exons:
        exon_seq = target.slice(exon.start, exon.end)
        best = best_exon_hit(exon_seq, query_frames, params, matrix)
        if best is not None and best[0] >= params.threshold:
            hits.append(
                TblastxHit(
                    exon=exon,
                    score=best[0],
                    query_frame=best[1],
                    query_aa_pos=best[2],
                )
            )
    return hits
