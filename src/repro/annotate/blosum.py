"""BLOSUM62 substitution matrix over the library's amino-acid encoding."""

from __future__ import annotations

import numpy as np

from .translate import AA_ALPHABET, AA_STOP, AA_X

_BLOSUM62_CORE = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
"""


def blosum62() -> np.ndarray:
    """BLOSUM62 as a 22x22 ``int32`` array over ``AA_ALPHABET``.

    The 20 standard residues carry the canonical scores; ``X`` scores -1
    against everything, ``*`` scores -4 against residues and +1 against
    itself (NCBI convention).
    """
    size = len(AA_ALPHABET)
    matrix = np.full((size, size), -1, dtype=np.int32)
    core = np.array(
        [
            [int(value) for value in line.split()]
            for line in _BLOSUM62_CORE.strip().splitlines()
        ],
        dtype=np.int32,
    )
    matrix[:20, :20] = core
    matrix[AA_STOP, :] = -4
    matrix[:, AA_STOP] = -4
    matrix[AA_STOP, AA_STOP] = 1
    matrix[AA_X, :20] = -1
    matrix[:20, AA_X] = -1
    matrix[AA_X, AA_X] = -1
    return matrix
