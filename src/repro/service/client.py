"""Minimal blocking client for the serving daemon.

Used by the CLI drills, the tests and the CI chaos smoke: submit a
job, poll it to a terminal state, read health.  Plain
:mod:`http.client` keeps it dependency-free and keeps failure modes
obvious — a refused connection raises ``ConnectionError`` for the
caller to retry (the daemon may still be binding, or mid-restart
during a chaos drill).
"""

# repro: allow-file[DET003] wall-clock deadlines for wait() polling;
# job results never depend on these readings.

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional, Tuple

__all__ = ["ServeClient", "ServeError"]

#: States after which a job's record can no longer change.
_TERMINAL = ("done", "failed", "expired", "cancelled")


class ServeError(RuntimeError):
    """The daemon answered, but with a non-success status.

    ``headers`` carries the response headers so callers can honour
    backoff hints (a 429 always names its ``Retry-After``).
    """

    def __init__(
        self, status: int, payload: Dict, headers: Optional[Dict] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class ServeClient:
    """Talks JSON to one ``repro serve`` daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8753,
        timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Tuple[int, Dict, Dict]:
        """One round trip; returns (status, payload, headers)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            return response.status, decoded, dict(response.getheaders())
        finally:
            connection.close()

    def _checked(self, method: str, path: str, body=None) -> Dict:
        status, payload, headers = self.request(method, path, body)
        if status >= 400:
            raise ServeError(status, payload, headers)
        return payload

    # -- API surface -------------------------------------------------
    def submit(self, job: Dict) -> Dict:
        """POST /jobs — raises :class:`ServeError` on 4xx/5xx (429
        included: callers decide their own backoff)."""
        return self._checked("POST", "/jobs", job)

    def job(self, job_id: str) -> Dict:
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> Dict:
        return self._checked("GET", "/jobs")

    def healthz(self) -> Dict:
        return self._checked("GET", "/healthz")

    def status(self) -> Dict:
        return self._checked("GET", "/status")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll: float = 0.2,
    ) -> Dict:
        """Poll until ``job_id`` reaches a terminal state.

        Connection errors during the wait are tolerated (the daemon may
        be restarting mid-drill); only the overall deadline is fatal.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                record = self.job(job_id)
                if record.get("state") in _TERMINAL:
                    return record
            except (ConnectionError, http.client.HTTPException, OSError):
                pass  # repro: allow[RES001] daemon restarting mid-drill
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout:.0f}s"
                )
            time.sleep(poll)
