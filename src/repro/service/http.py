"""Stdlib-only asyncio HTTP/1.1 + JSON front-end for the daemon.

Deliberately tiny: the daemon needs four routes, bounded request
bodies, and honest status codes — not a framework.  Requests are
parsed from an :func:`asyncio.start_server` stream (request line,
headers, ``Content-Length`` body capped at 1 MiB), dispatched to a
synchronous handler picked from a regex route table, and answered
with a JSON body and ``Connection: close``.

Handlers are plain functions ``(match, body) -> (status, payload)`` or
``(status, payload, extra_headers)``; they run inline on the event
loop.  That is a deliberate fit for this service: every handler is a
dict lookup or an fsync'd journal append — alignment work itself never
runs on the loop, it is queued for the runner thread.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["HttpJsonServer", "MAX_BODY_BYTES"]

#: Job specs are a handful of paths and options; anything bigger than
#: this is a malformed or hostile request and is refused outright.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: ``(status, payload)`` or ``(status, payload, headers)``.
Handler = Callable[..., tuple]


class HttpJsonServer:
    """One-shot HTTP/1.1 JSON server on a background event loop.

    ``routes`` is a list of ``(method, pattern, handler)``; the first
    pattern whose regex fully matches the request path wins.  The
    server owns its own event loop thread so the daemon's runner and
    signal handling stay ordinary synchronous code.
    """

    def __init__(
        self,
        routes: List[Tuple[str, str, Handler]],
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.routes = [
            (method, re.compile(pattern), handler)
            for method, pattern, handler in routes
        ]
        self.log = log or (lambda message: None)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------
    def start(self, host: str, port: int) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        self._thread = threading.Thread(
            target=self._run, args=(host, port), name="serve-http",
            daemon=True,
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.port is not None
        return self.port

    def _run(self, host: str, port: int) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._serve_connection, host, port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except OSError as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def stop(self) -> None:
        """Stop accepting and join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._loop = None
        self._thread = None

    # -- request handling --------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        try:
            status, payload, headers = await self._handle(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as error:  # one request fails, not the server
            self.log(f"serve: handler error: {error!r}")
            status, payload, headers = 500, {"error": "internal error"}, {}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii"))
        writer.write(body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            # Client went away mid-response; its retry will re-ask.
            return

    async def _handle(self, reader) -> Tuple[int, Dict, Dict]:
        request_line = (await reader.readline()).decode(
            "latin-1", "replace"
        ).rstrip("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return 400, {"error": "malformed request line"}, {}
        method, raw_path = parts[0].upper(), parts[1]
        path = raw_path.split("?", 1)[0]
        content_length = 0
        while True:
            line = (await reader.readline()).decode(
                "latin-1", "replace"
            ).rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}, {}
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}, {}
        body: Dict = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return 400, {"error": "request body is not valid JSON"}, {}
        matched_path = False
        for route_method, pattern, handler in self.routes:
            match = pattern.fullmatch(path)
            if match is None:
                continue
            matched_path = True
            if route_method != method:
                continue
            result = handler(match, body)
            if len(result) == 2:
                status, payload = result
                return status, payload, {}
            status, payload, extra = result
            return status, payload, dict(extra)
        if matched_path:
            return 405, {"error": f"method {method} not allowed"}, {}
        return 404, {"error": f"no such route: {path}"}, {}
