"""The serving daemon: journal + scheduler + runner + supervisor.

``ServeDaemon`` ties the service pieces into one supervised process:

* **admission** (HTTP loop thread): validate → journal ``submitted`` →
  enqueue, under one lock so capacity checks are exact; a full queue
  answers HTTP 429 + ``Retry-After`` and journals nothing;
* **execution** (runner thread): jobs drain one at a time in
  weighted-fair order through a shared
  :class:`~repro.parallel.engine.ExecutionEngine` pool with warm
  genome/seed-index caches; per-job deadlines are enforced at pick-up
  so an expired job never consumes engine capacity;
* **supervision**: pool workers publish liveness beats over the
  telemetry bus; a :class:`~repro.obs.bus.HeartbeatMonitor` is wired
  into :class:`~repro.resilience.policy.ResilienceOptions` as the
  dispatcher's liveness sentinel, so a hung (not just crashed) worker
  is detected past its deadline, SIGKILLed with its pool, and the
  attempt retried on a fresh pool — escalating to serial fallback
  exactly like any other fault;
* **durability**: every lifecycle transition is an fsync'd journal
  event *before* the client hears about it; ``kill -9`` + restart
  replays the journal, keeps completed results, and re-runs in-flight
  jobs from their checkpoints with byte-identical output;
* **shutdown**: SIGTERM/SIGINT drain — the running job finishes, the
  queue stays journaled for the next start, new submissions get 503.
"""

# repro: allow-file[DET003] admission timestamps, queue-wait deadlines
# and latency metrics; alignment output never depends on these clocks.

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..obs import HeartbeatMonitor, TelemetryOptions
from ..parallel.engine import ExecutionEngine
from ..resilience import FaultPlan, ResilienceOptions, RetryPolicy
from .http import HttpJsonServer
from .jobs import Job, JobError, replay_jobs
from .journal import JobJournal
from .runner import JobRunner
from .scheduler import WeightedFairScheduler

__all__ = ["ServeConfig", "ServeDaemon"]


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    state_dir: Union[str, Path]
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the bound port lands in ``port_file``).
    port: int = 8753
    workers: int = 1
    index_cache: Union[str, Path, None] = None
    #: Bounded admission: queued jobs beyond this are shed with 429.
    max_queued: int = 16
    #: Seconds between worker liveness beats (None = no heartbeats).
    heartbeat_interval: Optional[float] = None
    #: Silence longer than this marks a worker hung; defaults to
    #: ``4 * heartbeat_interval``.
    heartbeat_deadline: Optional[float] = None
    max_retries: int = 2
    task_timeout: Optional[float] = None
    #: ``SEED[:kind=rate,...]`` chaos spec (see repro.resilience).
    inject_faults: Optional[str] = None
    #: Written with the bound port once listening (CI rendezvous).
    port_file: Union[str, Path, None] = None


class ServeDaemon:
    """One alignment service over one state directory."""

    def __init__(
        self,
        config: ServeConfig,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config
        self.log = log or (lambda message: None)
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

        self.journal = JobJournal.attach(self.state_dir / "journal.jsonl")
        self.jobs: Dict[str, Job] = replay_jobs(self.journal.events)
        self._next_seq = 1 + max(
            (job.seq for job in self.jobs.values()), default=-1
        )

        self.telemetry = TelemetryOptions(
            heartbeat_interval=config.heartbeat_interval
        )
        self.monitor: Optional[HeartbeatMonitor] = None
        plan = (
            FaultPlan.parse(config.inject_faults)
            if config.inject_faults
            else None
        )
        if config.workers > 1:
            # The bus must exist before the pool initializer runs —
            # beats and the hang sentinel both ride it.
            bus = self.telemetry.ensure_bus()
            if config.heartbeat_interval:
                deadline = (
                    config.heartbeat_deadline
                    or 4.0 * config.heartbeat_interval
                )
                self.monitor = HeartbeatMonitor(bus, deadline=deadline)
        self.resilience = ResilienceOptions(
            policy=RetryPolicy(
                max_retries=config.max_retries,
                timeout=config.task_timeout,
            ),
            fault_plan=plan,
            liveness=self.monitor,
        )
        self.engine: Optional[ExecutionEngine] = None
        if config.workers > 1:
            self.engine = ExecutionEngine(
                config.workers,
                resilience=self.resilience,
                telemetry=self.telemetry,
            )
        self.runner = JobRunner(
            self.state_dir,
            engine=self.engine,
            workers=config.workers,
            index_cache=config.index_cache,
            resilience=self.resilience,
            telemetry=self.telemetry,
        )
        self.scheduler = WeightedFairScheduler(max_queued=config.max_queued)
        self.http = HttpJsonServer(self._routes(), log=self.log)

        self.registry = self.telemetry.registry
        self._submit_lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = False
        self._runner_thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

        requeued = self._requeue_survivors()
        if self.jobs:
            self.log(
                f"serve: journal replayed {len(self.jobs)} jobs "
                f"({requeued} re-queued, "
                f"{self.journal.skipped_records} torn records skipped)"
            )

    # -- startup / shutdown ------------------------------------------
    def _requeue_survivors(self) -> int:
        """Re-admit journaled jobs a crash left unfinished."""
        survivors = sorted(
            (job for job in self.jobs.values() if job.state == "queued"),
            key=lambda job: job.seq,
        )
        for job in survivors:
            # Restart restarts the queue-wait deadline: the journal
            # records no wall-clock, so waiting time cannot carry over.
            job.admitted_at = time.monotonic()
            self.scheduler.offer(job)
        return len(survivors)

    def start(self) -> int:
        """Serve in the background; returns the bound port."""
        self.port = self.http.start(self.config.host, self.config.port)
        self._runner_thread = threading.Thread(
            target=self._run_loop, name="serve-runner", daemon=True
        )
        self._runner_thread.start()
        if self.config.port_file is not None:
            port_file = Path(self.config.port_file)
            port_file.parent.mkdir(parents=True, exist_ok=True)
            port_file.write_text(f"{self.port}\n")
        self.log(
            f"serve: listening on {self.config.host}:{self.port} "
            f"(state {self.state_dir}, workers {self.config.workers}, "
            f"queue {self.config.max_queued})"
        )
        return self.port

    def request_stop(self) -> None:
        """Begin the drain: refuse new jobs, finish the running one."""
        self._draining = True
        self._stop.set()

    def stop(self, timeout: float = 60.0) -> None:
        """Drain and shut every component down."""
        self.request_stop()
        if self._runner_thread is not None:
            self._runner_thread.join(timeout=timeout)
            self._runner_thread = None
        self.http.stop()
        if self.engine is not None:
            self.engine.close()
            self.engine = None
        self.telemetry.close()
        queued = sum(
            1 for job in self.jobs.values() if job.state == "queued"
        )
        self.log(
            f"serve: stopped ({queued} queued jobs left journaled "
            f"for the next start)"
        )

    def serve_forever(self) -> int:
        """Foreground mode for the CLI: serve until SIGTERM/SIGINT."""
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda _signum, _frame: self.request_stop()
            )
        try:
            self.start()
            while not self._stop.wait(timeout=0.25):
                pass
            self.log("serve: draining (running job will finish)")
            self.stop()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return 0

    # -- admission (HTTP loop thread) --------------------------------
    def submit(self, payload: Dict) -> tuple:
        if self._draining:
            return 503, {"error": "daemon is draining; resubmit later"}
        with self._submit_lock:
            try:
                job = Job.from_request(
                    payload, f"job-{self._next_seq:06d}", self._next_seq
                )
            except JobError as error:
                return 400, {"error": str(error)}
            if self.scheduler.depth() >= self.scheduler.max_queued:
                self.scheduler.shed += 1
                self.registry.counter("serve_jobs_shed").inc()
                return (
                    429,
                    {"error": "admission queue full; retry later"},
                    {"Retry-After": str(self._retry_after())},
                )
            self._next_seq += 1
            # Durability before acknowledgement: the event hits disk
            # (fsync) before the client hears 202, so an acked job can
            # never vanish in a crash.
            self.journal.append(job.submitted_event())
            self.jobs[job.id] = job
            job.admitted_at = time.monotonic()
            self.scheduler.offer(job)
        self.registry.counter("serve_jobs_submitted").inc()
        self.registry.gauge("serve_queue_depth").set(self.scheduler.depth())
        return 202, {"id": job.id, "state": job.state, "seq": job.seq}

    def _retry_after(self) -> int:
        """Honest 429 backoff hint from observed job service times."""
        run_seconds = self.registry.histogram("serve_job_run_seconds")
        mean = run_seconds.mean if run_seconds.count else 1.0
        return max(1, int(mean * (1 + self.scheduler.depth())))

    def cancel(self, job_id: str) -> tuple:
        with self._submit_lock:
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"no such job: {job_id}"}
            if job.state != "queued":
                return 400, {
                    "error": f"job is {job.state}, not cancellable"
                }
            self.journal.append({"event": "cancelled", "id": job.id})
            job.state = "cancelled"
        return 200, {"id": job.id, "state": job.state}

    # -- execution (runner thread) -----------------------------------
    def _run_loop(self) -> None:
        while not self._stop.is_set():
            job = self.scheduler.take(timeout=0.2)
            if job is None:
                continue
            if self._stop.is_set():
                # Drain: the job stays journaled `submitted` with no
                # `started`, so the next start re-queues it.
                break
            self._run_job(job)
        self.registry.gauge("serve_queue_depth").set(self.scheduler.depth())

    def _run_job(self, job: Job) -> None:
        now = time.monotonic()
        waited = now - job.admitted_at if job.admitted_at else 0.0
        # In every branch below the in-memory ``job.state`` assignment
        # comes *last*: it is what the HTTP thread polls, so by the time
        # a client sees a terminal state the journal and the counters
        # already include the job.
        if job.deadline is not None and waited > job.deadline:
            self.journal.append({"event": "expired", "id": job.id})
            self.registry.counter("serve_jobs_expired").inc()
            job.state = "expired"
            self.log(
                f"serve: {job.id} expired after {waited:.1f}s queued "
                f"(deadline {job.deadline:.1f}s)"
            )
            return
        self.journal.append({"event": "started", "id": job.id})
        job.state = "running"
        self.log(f"serve: {job.id} running ({job.kind}, {job.priority})")
        try:
            summary = self.runner.run(job)
        except Exception as error:  # the job fails, the daemon survives
            job.error = f"{type(error).__name__}: {error}"
            self.journal.append(
                {"event": "failed", "id": job.id, "error": job.error}
            )
            self.registry.counter("serve_jobs_failed").inc()
            job.state = "failed"
            self.log(f"serve: {job.id} failed: {job.error}")
        else:
            job.summary = summary
            self.journal.append(
                {"event": "done", "id": job.id, "summary": summary}
            )
            self.registry.counter("serve_jobs_completed").inc()
            self.registry.histogram("serve_job_run_seconds").observe(
                summary.get("run_seconds", 0.0)
            )
            if job.admitted_at is not None:
                self.registry.histogram("serve_job_latency_seconds").observe(
                    time.monotonic() - job.admitted_at
                )
            job.state = "done"
            self.log(f"serve: {job.id} done -> {summary.get('output')}")
        finally:
            self.registry.gauge("serve_queue_depth").set(
                self.scheduler.depth()
            )

    # -- read surface ------------------------------------------------
    def healthz(self) -> Dict:
        return {
            "ok": True,
            "state": "draining" if self._draining else "serving",
            "queue_depth": self.scheduler.depth(),
            "workers": self.config.workers,
        }

    def status(self) -> Dict:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        bus = self.telemetry.bus
        return {
            "health": self.healthz(),
            "jobs": counts,
            "shed": self.scheduler.shed,
            "recovery": self.resilience.stats.as_dict(),
            "hang_detections": (
                self.monitor.detections if self.monitor else 0
            ),
            "heartbeats": bus.beat_counts() if bus is not None else {},
            "metrics": self.registry.as_dict(),
        }

    # -- HTTP glue ---------------------------------------------------
    def _routes(self):
        return [
            ("POST", r"/jobs", lambda match, body: self.submit(body)),
            ("GET", r"/jobs", self._list_jobs),
            ("GET", r"/jobs/([A-Za-z0-9_-]+)", self._get_job),
            (
                "POST",
                r"/jobs/([A-Za-z0-9_-]+)/cancel",
                lambda match, body: self.cancel(match.group(1)),
            ),
            ("GET", r"/healthz", lambda match, body: (200, self.healthz())),
            ("GET", r"/status", lambda match, body: (200, self.status())),
        ]

    def _list_jobs(self, match, body) -> tuple:
        ordered = sorted(self.jobs.values(), key=lambda job: job.seq)
        return 200, {"jobs": [job.as_dict() for job in ordered]}

    def _get_job(self, match, body) -> tuple:
        job = self.jobs.get(match.group(1))
        if job is None:
            return 404, {"error": f"no such job: {match.group(1)}"}
        return 200, job.as_dict()
