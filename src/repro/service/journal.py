"""Crash-safe job journal: fsync'd append-only JSONL events.

The serving daemon must survive ``kill -9`` without losing or
double-running work, which is the same durability problem
:class:`~repro.resilience.checkpoint.RunManifest` already solves for
chromosome-pair units — so the journal reuses its record discipline
verbatim:

* one JSON object per line, header first, appended with
  ``flush`` + ``fsync`` so a crash loses at most the line in flight;
* every event record carries a SHA-256 over its (base64) payload —
  a torn tail (the crash interrupted the final write) or a corrupted
  line is *skipped*, never trusted;
* events are append-only facts (``submitted`` / ``started`` /
  ``done`` / ``failed`` / ``expired`` / ``cancelled``); the current
  job table is a pure fold over them
  (:func:`repro.service.jobs.replay_jobs`), so replay after a crash
  reconstructs exactly the pre-crash state: completed jobs keep their
  recorded results, in-flight jobs go back to the queue and resume
  from their per-job checkpoints.

Appends may come from the HTTP loop thread (admission) and the runner
thread (execution) concurrently; the journal serialises them under a
lock.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["JOURNAL_VERSION", "JobJournal", "JournalError"]

#: Bump when the journal format changes; old journals are refused.
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is unusable (bad header, wrong version)."""


def _payload_checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class JobJournal:
    """Append-only event log for one serving state directory."""

    def __init__(self, path: Union[str, Path], header: Dict) -> None:
        self.path = Path(path)
        self.header = header
        self.events: List[Dict] = []
        self.skipped_records = 0
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------
    @classmethod
    def create(cls, path: Union[str, Path]) -> "JobJournal":
        """Start a fresh journal at ``path`` (truncating any old one)."""
        header = {"kind": "header", "version": JOURNAL_VERSION}
        journal = cls(path, header)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        with open(journal.path, "w") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    @classmethod
    def load(cls, path: Union[str, Path]) -> "JobJournal":
        """Parse an existing journal, skipping torn/corrupt records."""
        path = Path(path)
        raw = path.read_bytes()
        torn_tail = 0
        if raw and not raw.endswith(b"\n"):
            # kill -9 interrupted the final write.  Chop the torn bytes
            # now: they can never parse, and leaving them would make
            # the *next* append continue the partial line — merging a
            # good record into garbage that a later replay would skip.
            keep = raw.rfind(b"\n") + 1
            with open(path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
            raw = raw[:keep]
            torn_tail = 1
        lines = raw.decode("utf-8").splitlines()
        if not lines:
            raise JournalError(f"{path}: empty journal")
        try:
            header = json.loads(lines[0])
        except ValueError:
            raise JournalError(f"{path}: unreadable journal header")
        if header.get("kind") != "header":
            raise JournalError(f"{path}: first record is not a header")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{path}: unsupported journal version "
                f"{header.get('version')!r}"
            )
        journal = cls(path, header)
        journal.skipped_records = torn_tail
        for line in lines[1:]:
            try:
                record = json.loads(line)
                if record.get("kind") != "event":
                    raise ValueError("not an event record")
                payload = base64.b64decode(record["payload"])
                if _payload_checksum(payload) != record["sha256"]:
                    raise ValueError("checksum mismatch")
                event = json.loads(payload.decode("utf-8"))
            except (ValueError, KeyError, TypeError):
                # Torn tail or corruption: the event never durably
                # happened.  For `submitted` the client saw no ack (the
                # journal is written before the HTTP response); for
                # `done` the job simply re-runs from its checkpoint.
                journal.skipped_records += 1
                continue
            journal.events.append(event)
        return journal

    @classmethod
    def attach(cls, path: Union[str, Path]) -> "JobJournal":
        """Open for serving: load when present, else start fresh."""
        path = Path(path)
        if path.exists():
            try:
                return cls.load(path)
            except JournalError:
                # A crash during create() can leave a torn header only
                # (load chops it to zero bytes): nothing durable was
                # ever acknowledged, so starting fresh is sound.
                if path.stat().st_size == 0:
                    return cls.create(path)
                raise
        return cls.create(path)

    # -- appending ---------------------------------------------------
    def append(self, event: Dict) -> Dict:
        """Durably append one event (flushed + fsynced) and return it."""
        payload = json.dumps(event, sort_keys=True).encode("utf-8")
        line = json.dumps(
            {
                "kind": "event",
                "sha256": _payload_checksum(payload),
                "payload": base64.b64encode(payload).decode("ascii"),
            },
            sort_keys=True,
        )
        with self._lock:
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)
