"""Job model, request validation and journal replay.

A job is a small declarative spec ("align these two FASTAs", "chain
this MAF") plus lifecycle state.  The journal stores *events about*
jobs; :func:`replay_jobs` folds an event list back into the job table,
which is the whole crash-recovery story: after ``kill -9`` the daemon
replays the journal, keeps every ``done`` job's recorded summary, and
re-queues everything that was queued or mid-run — the per-job
:class:`~repro.resilience.checkpoint.RunManifest` checkpoint then makes
the re-run resume instead of recompute, with byte-identical output.

Lifecycle::

    queued -> running -> done | failed
    queued -> expired            (per-job deadline passed while waiting)
    queued -> cancelled          (client asked before the run started)

(shed requests are rejected at admission with HTTP 429 and never become
jobs at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "PRIORITY_WEIGHTS",
    "Job",
    "JobError",
    "replay_jobs",
]

#: Work the daemon knows how to run.
JOB_KINDS = ("align", "chain")

#: Every lifecycle state a journaled job can be in.
JOB_STATES = (
    "queued",
    "running",
    "done",
    "failed",
    "expired",
    "cancelled",
)

#: Weighted-fair scheduling classes: an ``interactive`` job receives
#: 8x the service share of a ``batch`` job under contention, but a
#: saturated queue still drains every class (no starvation — weights
#: shift finishing order, never membership).
PRIORITY_WEIGHTS: Dict[str, float] = {
    "interactive": 8.0,
    "default": 4.0,
    "batch": 1.0,
}

_SPEC_FIELDS = {
    "align": ("target", "query"),
    "chain": ("maf", "target", "query"),
}

_OPTIONAL_FIELDS = {
    "align": ("aligner", "plus_only", "out"),
    "chain": ("linear_gap", "out"),
}


class JobError(ValueError):
    """A submitted job spec is invalid (HTTP 400)."""


@dataclass
class Job:
    """One unit of service work plus its live state."""

    id: str
    kind: str
    spec: Dict
    priority: str = "default"
    #: Queue-wait budget in seconds (None = wait forever); enforced at
    #: pick-up time, so an expired job never consumes engine capacity.
    deadline: Optional[float] = None
    seq: int = 0
    state: str = "queued"
    error: Optional[str] = None
    summary: Dict = field(default_factory=dict)
    #: Admission time on the daemon's monotonic clock (not journaled:
    #: a restart re-admits the survivors, restarting their deadlines).
    admitted_at: Optional[float] = None

    @classmethod
    def from_request(cls, payload: Dict, job_id: str, seq: int) -> "Job":
        """Validate one ``POST /jobs`` body into a job (or JobError)."""
        if not isinstance(payload, dict):
            raise JobError("job body must be a JSON object")
        kind = payload.get("kind", "align")
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r} "
                f"(expected one of {', '.join(JOB_KINDS)})"
            )
        priority = payload.get("priority", "default")
        if priority not in PRIORITY_WEIGHTS:
            raise JobError(
                f"unknown priority {priority!r} (expected one of "
                f"{', '.join(sorted(PRIORITY_WEIGHTS))})"
            )
        deadline = payload.get("deadline")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise JobError("deadline must be a number of seconds")
            if deadline <= 0:
                raise JobError("deadline must be positive")
        spec: Dict = {}
        for name in _SPEC_FIELDS[kind]:
            value = payload.get(name)
            if not value or not isinstance(value, str):
                raise JobError(f"{kind} job requires a {name!r} path")
            spec[name] = value
        for name in _OPTIONAL_FIELDS[kind]:
            if name in payload:
                spec[name] = payload[name]
        aligner = spec.get("aligner", "darwin")
        if kind == "align" and aligner not in ("darwin", "lastz"):
            raise JobError(f"unknown aligner {aligner!r}")
        return cls(
            id=job_id,
            kind=kind,
            spec=spec,
            priority=priority,
            deadline=deadline,
            seq=seq,
        )

    def submitted_event(self) -> Dict:
        return {
            "event": "submitted",
            "id": self.id,
            "seq": self.seq,
            "kind": self.kind,
            "priority": self.priority,
            "deadline": self.deadline,
            "spec": dict(self.spec),
        }

    def as_dict(self) -> Dict:
        """JSON-ready view served by ``GET /jobs/<id>``."""
        return {
            "id": self.id,
            "kind": self.kind,
            "priority": self.priority,
            "deadline": self.deadline,
            "state": self.state,
            "error": self.error,
            "summary": dict(self.summary),
            "spec": dict(self.spec),
        }


def replay_jobs(events: List[Dict]) -> Dict[str, Job]:
    """Fold journal events into the job table (submission order).

    Jobs left ``running`` by a crash come back ``queued``: their
    ``started`` event proves the run began, their missing ``done``
    proves it never finished, and their checkpoint manifest holds
    whatever units did complete.
    """
    jobs: Dict[str, Job] = {}
    for event in events:
        name = event.get("event")
        job_id = event.get("id")
        if name == "submitted":
            jobs[job_id] = Job(
                id=job_id,
                kind=event.get("kind", "align"),
                spec=dict(event.get("spec", {})),
                priority=event.get("priority", "default"),
                deadline=event.get("deadline"),
                seq=int(event.get("seq", 0)),
            )
            continue
        job = jobs.get(job_id)
        if job is None:
            continue  # event for a submit lost to a torn tail
        if name == "started":
            job.state = "running"
        elif name == "done":
            job.state = "done"
            job.summary = dict(event.get("summary", {}))
        elif name == "failed":
            job.state = "failed"
            job.error = event.get("error", "unknown error")
        elif name == "expired":
            job.state = "expired"
        elif name == "cancelled":
            job.state = "cancelled"
    for job in jobs.values():
        if job.state == "running":
            job.state = "queued"
    return jobs
