"""Alignment-as-a-service: a supervised daemon over the pipelines.

Darwin-WGA frames alignment as a long-running accelerator service fed
by a host; this package is the software analogue — ``repro serve``
turns the seed-filter-extend pipelines into a traffic-survivable
daemon:

* :mod:`repro.service.http` — a stdlib-only asyncio HTTP+JSON
  front-end (``POST /jobs``, ``GET /jobs/<id>``, ``/healthz``,
  ``/status``);
* :mod:`repro.service.journal` — a crash-safe job journal: fsync'd
  append-only JSONL in the :class:`~repro.resilience.checkpoint.
  RunManifest` record style (checksummed, torn-tail tolerant), so a
  ``kill -9`` of the daemon replays to the exact pre-crash job table;
* :mod:`repro.service.jobs` — job model and journal replay (completed
  jobs are never re-run; in-flight jobs resume from their per-job
  :class:`~repro.resilience.checkpoint.RunManifest` checkpoints with
  byte-identical final output);
* :mod:`repro.service.scheduler` — deterministic per-class
  weighted-fair queueing with a bounded admission queue
  (load-shedding: HTTP 429 + ``Retry-After`` under saturation);
* :mod:`repro.service.runner` — executes jobs over one shared
  :class:`~repro.parallel.engine.ExecutionEngine` pool with warm
  genome and seed-index caches shared across jobs;
* :mod:`repro.service.daemon` — ties it together and supervises:
  workers publish heartbeat beats over the telemetry bus, a
  :class:`~repro.obs.bus.HeartbeatMonitor` sentinel detects hung (not
  just crashed) workers past a deadline and escalates through the
  resilience ladder (terminate-and-rebuild → serial fallback);
  SIGTERM drains the running job then stops, leaving queued work
  journaled for the next start;
* :mod:`repro.service.client` — a tiny blocking client for the CLI,
  tests and CI drills.

The package sits at the top of the layer DAG (rank 7, beside the CLI):
it orchestrates every lower layer but is imported by none of them.
"""

from .client import ServeClient
from .daemon import ServeConfig, ServeDaemon
from .journal import JobJournal, JournalError
from .jobs import (
    JOB_KINDS,
    JOB_STATES,
    PRIORITY_WEIGHTS,
    Job,
    replay_jobs,
)
from .scheduler import WeightedFairScheduler

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "PRIORITY_WEIGHTS",
    "Job",
    "JobJournal",
    "JournalError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "WeightedFairScheduler",
    "replay_jobs",
]
