"""Deterministic weighted-fair job scheduling with bounded admission.

Classic WFQ virtual-time accounting, deliberately clock-free so a
replayed queue always drains in the same order: each priority class
advances a virtual finish time by ``1 / weight`` per job, a job's
finish tag is ``max(global_vtime, class_vtime) + 1/weight`` at offer
time, and :meth:`take` pops the smallest ``(finish_tag, seq)``.  Under
contention an ``interactive`` job (weight 8) therefore receives eight
times the service share of a ``batch`` job (weight 1), while FIFO order
holds within a class and no class ever starves.

Admission is **bounded**: :meth:`offer` refuses beyond ``max_queued``
(the daemon answers HTTP 429 + ``Retry-After``), so a saturating burst
degrades into shed requests instead of unbounded memory growth — the
PAR003 discipline (no unbounded stage buffers) applied to the service
edge.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, List, Optional

from .jobs import PRIORITY_WEIGHTS, Job

__all__ = ["WeightedFairScheduler"]


class WeightedFairScheduler:
    """Thread-safe bounded weighted-fair queue of :class:`Job`."""

    def __init__(
        self,
        max_queued: int = 64,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if max_queued < 1:
            raise ValueError("max_queued must be at least 1")
        self.max_queued = max_queued
        self.weights = dict(weights or PRIORITY_WEIGHTS)
        self._heap: List[tuple] = []
        self._lock = threading.Condition()
        self._vtime = 0.0
        self._class_vtime: Dict[str, float] = {}
        self.shed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def offer(self, job: Job) -> bool:
        """Admit ``job``, or refuse (False) when the queue is full."""
        with self._lock:
            if len(self._heap) >= self.max_queued:
                self.shed += 1
                return False
            weight = self.weights.get(job.priority, 1.0)
            start = max(
                self._vtime, self._class_vtime.get(job.priority, 0.0)
            )
            finish = start + 1.0 / weight
            self._class_vtime[job.priority] = finish
            heapq.heappush(self._heap, (finish, job.seq, job))
            self._lock.notify()
            return True

    def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next job by weighted-fair order (blocking).

        Returns None when the wait times out with an empty queue.
        Cancelled jobs (state changed after admission) are dropped
        silently here — their state transition was already journaled.
        """
        with self._lock:
            while True:
                while self._heap:
                    finish, _seq, job = heapq.heappop(self._heap)
                    self._vtime = max(self._vtime, finish)
                    if job.state == "queued":
                        return job
                if not self._lock.wait(timeout=timeout):
                    return None

    def drain(self) -> List[Job]:
        """Remove and return every queued job (shutdown path)."""
        with self._lock:
            jobs = [job for _f, _s, job in sorted(self._heap)]
            self._heap.clear()
            return jobs

    def depth(self) -> int:
        return len(self)
