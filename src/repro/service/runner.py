"""Job execution: one shared engine, warm caches, atomic outputs.

Every job runs through the same machinery the one-shot CLI uses —
:func:`repro.core.pipeline.align_assemblies` with a per-job
:class:`~repro.resilience.checkpoint.RunManifest` checkpoint — so a
daemon-served result is byte-identical to a single-shot run of the
same spec, and a job interrupted by ``kill -9`` resumes mid-assembly
from its last journaled chromosome-pair unit.

Shared warmth across jobs:

* one :class:`~repro.parallel.engine.ExecutionEngine` process pool is
  reused for the daemon's whole lifetime (no per-job pool spin-up);
* parsed genomes are cached content-addressed (path + SHA-256 of the
  file bytes), so N jobs over the same assemblies parse them once —
  and a file silently replaced between jobs misses the cache instead
  of serving stale sequences;
* the persistent seed-index cache directory is shared, so a target's
  index is built once across all jobs that align against it.

Outputs are written to a temp file and ``os.replace``\\ d into place:
a crash mid-write can never leave a torn MAF where a final output
should be.
"""

# repro: allow-file[DET003] job latency accounting for /status and the
# serve benchmarks; alignment output never depends on these readings.

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..chain import GapCosts, build_chains, total_matches
from ..core import align_assemblies
from ..genome import read_fasta
from ..io import read_maf, write_assembly_maf, write_chains
from .jobs import Job

__all__ = ["JobRunner"]


def _file_digest(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class JobRunner:
    """Executes jobs serially over the daemon's shared engine.

    Jobs run one at a time: engine workers parallelise *within* a job
    (chromosome-pair fan-out), which keeps every job's dispatch/replay
    order — and therefore its bytes — identical to a single-shot run.
    Cross-job concurrency comes from the queue, not from interleaving
    two alignments over one pool.
    """

    def __init__(
        self,
        state_dir: Path,
        engine=None,
        workers: int = 1,
        index_cache: Optional[Path] = None,
        resilience=None,
        telemetry=None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.engine = engine
        self.workers = workers
        self.index_cache = index_cache
        self.resilience = resilience
        self.telemetry = telemetry
        self._genomes: Dict[Tuple[str, str], List] = {}

    # -- caches ------------------------------------------------------
    def records(self, path_text: str) -> List:
        """Parsed FASTA records, warm across jobs, content-addressed."""
        path = Path(path_text)
        key = (str(path), _file_digest(path))
        cached = self._genomes.get(key)
        if cached is None:
            cached = read_fasta(path)
            if not cached:
                raise ValueError(f"{path}: no FASTA records")
            self._genomes[key] = cached
        return cached

    def job_dir(self, job: Job) -> Path:
        directory = self.state_dir / "jobs" / job.id
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def output_path(self, job: Job) -> Path:
        out = job.spec.get("out")
        if out:
            return Path(out)
        suffix = "maf" if job.kind == "align" else "chain"
        return self.job_dir(job) / f"out.{suffix}"

    # -- execution ---------------------------------------------------
    def run(self, job: Job) -> Dict:
        """Execute one job to completion; returns its summary dict."""
        started = time.monotonic()
        if job.kind == "align":
            summary = self._run_align(job)
        else:
            summary = self._run_chain(job)
        summary["run_seconds"] = time.monotonic() - started
        return summary

    def _run_align(self, job: Job) -> Dict:
        spec = job.spec
        targets = self.records(spec["target"])
        queries = self.records(spec["query"])
        if spec.get("aligner", "darwin") == "lastz":
            from ..lastz import LastzAligner, LastzConfig

            config = LastzConfig(both_strands=not spec.get("plus_only"))
            aligner_class = LastzAligner
        else:
            from ..core import DarwinWGA, DarwinWGAConfig

            config = DarwinWGAConfig(both_strands=not spec.get("plus_only"))
            aligner_class = DarwinWGA
        checkpoint = self.job_dir(job) / "checkpoint.jsonl"
        result = align_assemblies(
            targets,
            queries,
            config=config,
            aligner_class=aligner_class,
            workers=self.workers,
            engine=self.engine,
            index_cache=self.index_cache,
            checkpoint=checkpoint,
            resume=True,
            resilience=self.resilience,
            telemetry=self.telemetry,
        )
        out = self.output_path(job)
        self._atomic_write(
            out, lambda handle: write_assembly_maf(
                result.alignments, targets, queries, handle
            )
        )
        workload = result.workload
        return {
            "alignments": len(result.alignments),
            "matched_bp": result.total_matches,
            "seed_hits": workload.seed_hits,
            "extension_tiles": workload.extension_tiles,
            "output": str(out),
            "output_sha256": _file_digest(out),
        }

    def _run_chain(self, job: Job) -> Dict:
        spec = job.spec
        alignments = read_maf(Path(spec["maf"]))
        targets = self.records(spec["target"])
        queries = self.records(spec["query"])
        gap_costs = (
            GapCosts.medium()
            if spec.get("linear_gap") == "medium"
            else GapCosts.loose()
        )
        chains = build_chains(alignments, gap_costs)
        out = self.output_path(job)
        target, query = targets[0], queries[0]
        self._atomic_write(
            out, lambda handle: write_chains(
                chains,
                target.name or "target",
                len(target),
                query.name or "query",
                len(query),
                handle,
            )
        )
        return {
            "chains": len(chains),
            "matched_bp": total_matches(chains),
            "output": str(out),
            "output_sha256": _file_digest(out),
        }

    @staticmethod
    def _atomic_write(path: Path, write) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
