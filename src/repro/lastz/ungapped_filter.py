"""Ungapped X-drop filtering — LASTZ's HSP stage.

Every seed hit is extended along its diagonal with no indels (section
III-C).  Hits whose ungapped score reaches the threshold become extension
anchors; hits falling inside an already-found HSP on the same diagonal are
deduplicated (LASTZ's anchor absorption within the ungapped stage).

Extensions are batched and fully vectorised; the cell count (scored
diagonal positions) is the stage's workload unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..align.alignment import AnchorHit
from ..align.scoring import ScoringScheme
from ..align.ungapped import ungapped_extend_batch
from ..genome.sequence import Sequence

#: LASTZ's default HSP X-drop, ten times the strongest match score.
DEFAULT_XDROP = 910


@dataclass(frozen=True)
class UngappedFilterParams:
    """Ungapped filter knobs (LASTZ ``--hspthresh`` and ``--xdrop``)."""

    threshold: int = 3000
    xdrop: int = DEFAULT_XDROP
    max_extension: int = 512

    def __post_init__(self) -> None:
        if self.xdrop < 0 or self.max_extension <= 0:
            raise ValueError("xdrop/max_extension must be non-negative")


@dataclass(frozen=True)
class UngappedFilterResult:
    """Qualifying anchors plus stage workload."""

    anchors: List[AnchorHit]
    hits: int
    cells: int


def ungapped_filter(
    target: Sequence,
    query: Sequence,
    target_positions: np.ndarray,
    query_positions: np.ndarray,
    scoring: ScoringScheme,
    params: UngappedFilterParams,
    strand: int = 1,
    batch_size: int = 8192,
) -> UngappedFilterResult:
    """Filter seed hits by ungapped X-drop extension.

    Anchors are placed at the seed-hit position; duplicates (hits whose
    extended segment coincides with an earlier hit's segment on the same
    diagonal) are merged, keeping the highest-scoring representative.
    """
    k = int(target_positions.size)
    if k == 0:
        return UngappedFilterResult(anchors=[], hits=0, cells=0)

    scores = np.empty(k, dtype=np.int64)
    left_spans = np.empty(k, dtype=np.int64)
    right_spans = np.empty(k, dtype=np.int64)
    cells = 0
    for start in range(0, k, batch_size):
        stop = min(start + batch_size, k)
        batch_scores, lspans, rspans = ungapped_extend_batch(
            target,
            query,
            target_positions[start:stop],
            query_positions[start:stop],
            scoring,
            params.xdrop,
            max_length=params.max_extension,
        )
        scores[start:stop] = batch_scores
        left_spans[start:stop] = lspans
        right_spans[start:stop] = rspans
        # Actual work: scored positions until X-drop termination (spans
        # plus the short overshoot the X-drop rule needs to detect death).
        overshoot = 2 * (params.xdrop // 91 + 1)
        cells += int(lspans.sum() + rspans.sum()) + overshoot * (
            stop - start
        )

    passing = np.flatnonzero(scores >= params.threshold)
    if passing.size == 0:
        return UngappedFilterResult(anchors=[], hits=k, cells=cells)

    # Deduplicate: hits on the same diagonal whose extended segments
    # coincide describe the same HSP; keep the best-scoring one.
    diagonals = target_positions[passing] - query_positions[passing]
    segment_starts = target_positions[passing] - left_spans[passing]
    keys = np.stack([diagonals, segment_starts], axis=1)
    order = np.lexsort((-scores[passing], keys[:, 1], keys[:, 0]))
    anchors: List[AnchorHit] = []
    previous_key = None
    for idx in order:
        key = (int(keys[idx, 0]), int(keys[idx, 1]))
        if key == previous_key:
            continue
        previous_key = key
        hit = int(passing[idx])
        anchors.append(
            AnchorHit(
                target_pos=int(target_positions[hit]),
                query_pos=int(query_positions[hit]),
                filter_score=int(scores[hit]),
                strand=strand,
            )
        )
    return UngappedFilterResult(anchors=anchors, hits=k, cells=cells)
