"""LASTZ-like baseline: all-hits seeding + ungapped filter + extension."""

from .pipeline import LastzAligner, LastzConfig, align_pair_lastz
from .ungapped_filter import (
    DEFAULT_XDROP,
    UngappedFilterParams,
    UngappedFilterResult,
    ungapped_filter,
)

__all__ = [
    "LastzAligner",
    "LastzConfig",
    "align_pair_lastz",
    "DEFAULT_XDROP",
    "UngappedFilterParams",
    "UngappedFilterResult",
    "ungapped_filter",
]
