"""A LASTZ-like whole genome aligner — the paper's software baseline.

The pipeline mirrors LASTZ's default mode: the same 12of19
transition-tolerant seeding as Darwin-WGA but with *every* seed hit
examined individually (no D-SOFT banding), an **ungapped** X-drop filter
at ``hspthresh = 3000``, and gapped extension of qualifying anchors.

Extension reuses the GACT-X tiled engine with LASTZ's Y-drop parameter:
the paper attributes the entire sensitivity difference to the filtering
stage, so keeping extension identical between the two pipelines isolates
exactly that variable (and full-memory Y-drop extension over megabase
spans would be equivalent anyway — GACT-X's tiling exists to bound
*hardware* memory, producing the same empirically-optimal alignments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..align.alignment import Alignment
from ..core.anchors import CoverageGrid
from ..core.config import ExtensionParams
from ..core.gact_x import gact_x_extend
from ..core.pipeline import WGAResult, Workload
from ..align.matrices import lastz_default
from ..align.scoring import ScoringScheme
from ..genome.sequence import Sequence
from ..seed.dsoft import all_seed_hits
from ..seed.index import SeedIndex
from ..seed.patterns import SpacedSeed
from .ungapped_filter import UngappedFilterParams, ungapped_filter


@dataclass(frozen=True)
class LastzConfig:
    """LASTZ-default configuration (scoring identical to Darwin-WGA)."""

    scoring: ScoringScheme = field(default_factory=lastz_default)
    seed: SpacedSeed = field(default_factory=SpacedSeed)
    filtering: UngappedFilterParams = field(
        default_factory=UngappedFilterParams
    )
    extension: ExtensionParams = field(
        default_factory=lambda: ExtensionParams(threshold=3000)
    )
    both_strands: bool = True
    seed_limit: int = 0
    absorb_granularity: int = 64


class LastzAligner:
    """Seed / ungapped-filter / extend aligner in LASTZ's default mode."""

    def __init__(self, config: LastzConfig = None) -> None:
        self.config = config or LastzConfig()

    def align(self, target: Sequence, query: Sequence) -> WGAResult:
        """Align ``query`` against ``target`` on both strands."""
        config = self.config
        index = SeedIndex.build(target, config.seed)
        strands = (1, -1) if config.both_strands else (1,)
        alignments: List[Alignment] = []
        workload = Workload()
        for strand in strands:
            oriented = query if strand == 1 else query.reverse_complement()
            result = self._align_strand(target, oriented, index, strand)
            alignments.extend(result.alignments)
            workload.merge(result.workload)
        alignments.sort(key=lambda a: -a.score)
        return WGAResult(alignments=alignments, workload=workload)

    def _align_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
    ) -> WGAResult:
        config = self.config
        seeding = all_seed_hits(index, query, seed_limit=config.seed_limit)
        filter_result = ungapped_filter(
            target,
            query,
            seeding.target_positions,
            seeding.query_positions,
            config.scoring,
            config.filtering,
            strand=strand,
        )
        workload = Workload(
            seed_hits=seeding.raw_hit_count,
            filter_tiles=filter_result.hits,
            filter_cells=filter_result.cells,
            anchors=len(filter_result.anchors),
        )

        grid = CoverageGrid(config.absorb_granularity)
        alignments: List[Alignment] = []
        seen_spans = set()
        ordered = sorted(
            filter_result.anchors, key=lambda a: -a.filter_score
        )
        for anchor in ordered:
            if grid.absorbs(anchor):
                workload.absorbed_anchors += 1
                continue
            extension = gact_x_extend(
                target, query, anchor, config.scoring, config.extension
            )
            workload.extension_tiles += extension.tile_count
            workload.extension_cells += extension.cells
            alignment = extension.alignment
            if alignment is not None:
                span = (
                    alignment.target_start,
                    alignment.target_end,
                    alignment.query_start,
                    alignment.query_end,
                )
                grid.add_alignment(alignment)
                if span not in seen_spans:
                    seen_spans.add(span)
                    alignments.append(alignment)
        return WGAResult(alignments=alignments, workload=workload)


def align_pair_lastz(
    target: Sequence, query: Sequence, config: LastzConfig = None
) -> WGAResult:
    """One-call convenience wrapper around :class:`LastzAligner`."""
    return LastzAligner(config).align(target, query)
