"""A LASTZ-like whole genome aligner — the paper's software baseline.

The pipeline mirrors LASTZ's default mode: the same 12of19
transition-tolerant seeding as Darwin-WGA but with *every* seed hit
examined individually (no D-SOFT banding), an **ungapped** X-drop filter
at ``hspthresh = 3000``, and gapped extension of qualifying anchors.

Extension reuses the GACT-X tiled engine with LASTZ's Y-drop parameter:
the paper attributes the entire sensitivity difference to the filtering
stage, so keeping extension identical between the two pipelines isolates
exactly that variable (and full-memory Y-drop extension over megabase
spans would be equivalent anyway — GACT-X's tiling exists to bound
*hardware* memory, producing the same empirically-optimal alignments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from ..align.alignment import Alignment
from ..core.anchors import CoverageGrid
from ..core.config import ExtensionParams
from ..core.extension import extend_anchors
from ..core.pipeline import (
    WGAResult,
    Workload,
    _bind_telemetry,
    _make_engine,
    _resolve_cache,
)
from ..core.stream import StreamParams, streamed_strand_align
from ..obs.occupancy import StreamStats
from ..align.matrices import lastz_default
from ..align.scoring import ScoringScheme
from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from ..seed.cache import SeedIndexCache
from ..seed.dsoft import all_seed_hits
from ..seed.index import SeedIndex
from ..seed.patterns import SpacedSeed
from .ungapped_filter import UngappedFilterParams, ungapped_filter

if TYPE_CHECKING:  # repro.parallel sits above lastz in the layer DAG
    from ..parallel.engine import ExecutionEngine


@dataclass(frozen=True)
class LastzConfig:
    """LASTZ-default configuration (scoring identical to Darwin-WGA)."""

    scoring: ScoringScheme = field(default_factory=lastz_default)
    seed: SpacedSeed = field(default_factory=SpacedSeed)
    filtering: UngappedFilterParams = field(
        default_factory=UngappedFilterParams
    )
    extension: ExtensionParams = field(
        default_factory=lambda: ExtensionParams(threshold=3000)
    )
    both_strands: bool = True
    seed_limit: int = 0
    absorb_granularity: int = 64


class LastzAligner:
    """Seed / ungapped-filter / extend aligner in LASTZ's default mode.

    ``workers``/``engine``/``index_cache`` behave exactly as on
    :class:`repro.core.pipeline.DarwinWGA`: the extension stage fans out
    deterministically over a process pool, and seed indexes persist in a
    content-addressed on-disk cache.
    """

    def __init__(
        self,
        config: Optional[LastzConfig] = None,
        tracer=None,
        workers: int = 1,
        engine: Optional[ExecutionEngine] = None,
        index_cache: Union[SeedIndexCache, str, Path, None] = None,
        resilience=None,
        telemetry=None,
        streaming: Optional[bool] = None,
        stream_params: Optional[StreamParams] = None,
    ) -> None:
        self.config = config or LastzConfig()
        self.streaming = streaming
        self.stream_params = stream_params
        self.last_stream = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.workers = engine.workers if engine is not None else workers
        if resilience is None and engine is not None:
            resilience = engine.resilience
        self.resilience = resilience
        self.index_cache = _resolve_cache(index_cache, resilience)
        if engine is not None and telemetry is not None:
            engine.adopt_telemetry(telemetry)
        self.telemetry = telemetry
        self._engine = engine
        self._owns_engine = False

    @property
    def engine(self) -> Optional[ExecutionEngine]:
        """The execution engine, created lazily when ``workers > 1``."""
        if self._engine is None and self.workers > 1:
            _bind_telemetry(self.telemetry, self.tracer)
            self._engine = _make_engine(
                self.workers, self.resilience, self.telemetry
            )
            self._owns_engine = True
        return self._engine

    def close(self) -> None:
        """Release the engine if this aligner created it."""
        if self._owns_engine and self._engine is not None:
            self._engine.close()
            self._engine = None
            self._owns_engine = False

    def __enter__(self) -> "LastzAligner":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _build_index(self, target: Sequence) -> SeedIndex:
        """Build (or load from the cache) the target's seed index."""
        if self.index_cache is not None:
            return self.index_cache.get_or_build(
                target, self.config.seed, tracer=self.tracer
            )
        with self.tracer.span(
            "build_index", target=target.name or "target"
        ):
            return SeedIndex.build(target, self.config.seed)

    def align(
        self,
        target: Sequence,
        query: Sequence,
        index: Optional[SeedIndex] = None,
    ) -> WGAResult:
        """Align ``query`` against ``target`` on both strands.

        ``index`` is an optional prebuilt :class:`SeedIndex` of
        ``target``, reusable across queries exactly as in
        :meth:`repro.core.pipeline.DarwinWGA.align`.
        """
        config = self.config
        tracer = self.tracer
        with tracer.span(
            "align",
            aligner="lastz",
            target=target.name or "target",
            query=query.name or "query",
            target_bp=len(target),
            query_bp=len(query),
        ) as span:
            if index is None:
                index = self._build_index(target)
            strands = (1, -1) if config.both_strands else (1,)
            engine = self.engine
            parallel = engine is not None and engine.active
            if parallel and self.streaming is not False:
                # LASTZ runs never feed the hardware model, so tile
                # traces are not accumulated (matching serial).
                alignments, workload, stats = streamed_strand_align(
                    self, target, query, index, strands,
                    keep_tile_traces=False,
                )
                self.last_stream = stats.summary()
            else:
                observer = (
                    StreamStats(slots=engine.workers) if parallel else None
                )
                alignments = []
                workload = Workload()
                for strand in strands:
                    oriented = (
                        query if strand == 1 else query.reverse_complement()
                    )
                    with tracer.span(
                        "strand", strand="+" if strand == 1 else "-"
                    ):
                        result = self._align_strand(
                            target, oriented, index, strand,
                            observer=observer,
                        )
                    alignments.extend(result.alignments)
                    workload.merge(result.workload)
                if observer is not None:
                    observer.close()
                self.last_stream = (
                    observer.summary() if observer is not None else None
                )
            alignments.sort(key=lambda a: -a.score)
            span.inc("seed_hits", workload.seed_hits)
            span.inc("filter_tiles", workload.filter_tiles)
            span.inc("filter_cells", workload.filter_cells)
            span.inc("extension_tiles", workload.extension_tiles)
            span.inc("extension_cells", workload.extension_cells)
            span.inc("anchors", workload.anchors)
            span.inc("absorbed_anchors", workload.absorbed_anchors)
            span.inc("alignments", len(alignments))
            return WGAResult(alignments=alignments, workload=workload)

    def _seed_filter_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
    ):
        """One strand's producer stage: seed, filter, order anchors."""
        config = self.config
        tracer = self.tracer
        seeding = all_seed_hits(
            index, query, seed_limit=config.seed_limit, tracer=tracer
        )
        with tracer.span("ungapped_filter") as filter_span:
            filter_result = ungapped_filter(
                target,
                query,
                seeding.target_positions,
                seeding.query_positions,
                config.scoring,
                config.filtering,
                strand=strand,
            )
            filter_span.inc("filter_tiles", filter_result.hits)
            filter_span.inc("filter_cells", filter_result.cells)
            filter_span.inc("anchors", len(filter_result.anchors))
        workload = Workload(
            seed_hits=seeding.raw_hit_count,
            filter_tiles=filter_result.hits,
            filter_cells=filter_result.cells,
            anchors=len(filter_result.anchors),
        )
        grid = CoverageGrid(config.absorb_granularity)
        ordered = sorted(
            filter_result.anchors, key=lambda a: -a.filter_score
        )
        return ordered, workload, grid

    def _align_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
        observer: Optional[StreamStats] = None,
    ) -> WGAResult:
        ordered, workload, grid = self._seed_filter_strand(
            target, query, index, strand
        )
        # LASTZ runs never feed the hardware model, so tile traces are
        # not accumulated (matching the previous serial behaviour).
        alignments = extend_anchors(
            target,
            query,
            ordered,
            self.config.scoring,
            self.config.extension,
            grid,
            workload,
            tracer=self.tracer,
            engine=self.engine,
            keep_tile_traces=False,
            observer=observer,
        )
        return WGAResult(alignments=alignments, workload=workload)


def align_pair_lastz(
    target: Sequence,
    query: Sequence,
    config: Optional[LastzConfig] = None,
    tracer=None,
    workers: int = 1,
    index_cache=None,
) -> WGAResult:
    """One-call convenience wrapper around :class:`LastzAligner`."""
    with LastzAligner(
        config, tracer=tracer, workers=workers, index_cache=index_cache
    ) as aligner:
        return aligner.align(target, query)
