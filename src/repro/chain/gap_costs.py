"""Piecewise-linear chain gap costs (axtChain's ``linearGap`` tables).

The paper post-processes all alignments with Kent's AXTCHAIN utility using
``-linearGap=loose``.  axtChain charges a gap between consecutive chained
blocks according to a piecewise-linear table over the gap size, with
separate curves for query-only gaps, target-only gaps, and double-sided
gaps; costs extrapolate with the final slope beyond the last knot.  Both
stock tables (``loose``, for distant species like chicken/human, and
``medium``, the default) are reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TypingSequence

import numpy as np

_POSITIONS = (1, 2, 3, 11, 111, 2111, 12111, 32111, 72111, 152111, 252111)

_LOOSE_Q = (325, 360, 400, 450, 600, 1100, 3600, 7600, 15600, 31600, 56600)
_LOOSE_T = _LOOSE_Q
_LOOSE_BOTH = (
    625,
    660,
    700,
    750,
    900,
    1400,
    4000,
    8000,
    16000,
    32000,
    57000,
)

_MEDIUM_Q = (
    350,
    425,
    450,
    600,
    900,
    2900,
    22900,
    57900,
    117900,
    217900,
    317900,
)
_MEDIUM_T = _MEDIUM_Q
_MEDIUM_BOTH = (
    750,
    825,
    850,
    1000,
    1300,
    3300,
    23300,
    58300,
    118300,
    218300,
    318300,
)


class _Curve:
    """One piecewise-linear cost curve with final-slope extrapolation."""

    def __init__(
        self,
        positions: TypingSequence[int],
        costs: TypingSequence[int],
    ) -> None:
        self._x = np.asarray(positions, dtype=np.float64)
        self._y = np.asarray(costs, dtype=np.float64)
        if self._x.size != self._y.size or self._x.size < 2:
            raise ValueError("curve needs matching positions and costs")
        self._tail_slope = (self._y[-1] - self._y[-2]) / (
            self._x[-1] - self._x[-2]
        )

    def __call__(self, size) -> np.ndarray:
        size = np.asarray(size, dtype=np.float64)
        inside = np.interp(size, self._x, self._y)
        beyond = self._y[-1] + (size - self._x[-1]) * self._tail_slope
        cost = np.where(size > self._x[-1], beyond, inside)
        return np.where(size <= 0, 0.0, cost)


@dataclass(frozen=True)
class GapCosts:
    """Chain gap-cost model: query-gap, target-gap and both-gap curves."""

    q_curve: _Curve
    t_curve: _Curve
    both_curve: _Curve

    @classmethod
    def loose(cls) -> "GapCosts":
        """The ``-linearGap=loose`` table used in the paper."""
        return cls(
            _Curve(_POSITIONS, _LOOSE_Q),
            _Curve(_POSITIONS, _LOOSE_T),
            _Curve(_POSITIONS, _LOOSE_BOTH),
        )

    @classmethod
    def medium(cls) -> "GapCosts":
        """axtChain's default ``-linearGap=medium`` table."""
        return cls(
            _Curve(_POSITIONS, _MEDIUM_Q),
            _Curve(_POSITIONS, _MEDIUM_T),
            _Curve(_POSITIONS, _MEDIUM_BOTH),
        )

    def cost(self, target_gap, query_gap) -> np.ndarray:
        """Cost of a gap of ``target_gap`` target and ``query_gap`` query
        bases between consecutive chain blocks (vectorised)."""
        target_gap = np.asarray(target_gap, dtype=np.float64)
        query_gap = np.asarray(query_gap, dtype=np.float64)
        both = target_gap + query_gap
        double_sided = (target_gap > 0) & (query_gap > 0)
        return np.where(
            double_sided,
            self.both_curve(both),
            np.where(
                target_gap > 0,
                self.t_curve(target_gap),
                self.q_curve(query_gap),
            ),
        )
