"""Chaining: axtChain-like chain construction and sensitivity metrics."""

from .chainer import Chain, build_chains
from .gap_costs import GapCosts
from .liftover import LiftOver, LiftSegment, best_lift
from .nets import Net, NetEntry, build_net
from .metrics import (
    ChainComparison,
    block_length_histogram,
    compare,
    fraction_below,
    mean_top_score,
    top_chain_scores,
    total_matches,
    ungapped_block_lengths,
)

__all__ = [
    "Chain",
    "build_chains",
    "GapCosts",
    "LiftOver",
    "LiftSegment",
    "best_lift",
    "Net",
    "NetEntry",
    "build_net",
    "ChainComparison",
    "block_length_histogram",
    "compare",
    "fraction_below",
    "mean_top_score",
    "top_chain_scores",
    "total_matches",
    "ungapped_block_lengths",
]
