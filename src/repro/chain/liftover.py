"""Coordinate liftover through alignment chains (UCSC liftOver-like).

Chains are the standard coordinate-mapping artifact between assemblies
(the reason the UCSC browser hosts them, paper section II).  This module
maps positions and intervals from the target genome to the query genome
through a chain's aligned blocks: positions inside aligned columns map
exactly; positions inside chain gaps do not map (or snap to the nearest
aligned column when requested).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence as TypingSequence, Tuple

from .chainer import Chain


@dataclass(frozen=True)
class LiftSegment:
    """One gap-free aligned run: target [t, t+len) <-> query [q, q+len)."""

    target_start: int
    query_start: int
    length: int

    @property
    def target_end(self) -> int:
        return self.target_start + self.length

    @property
    def query_end(self) -> int:
        return self.query_start + self.length


class LiftOver:
    """Position mapping built from one chain.

    >>> # doctest-style sketch; see tests for runnable examples
    >>> # lift = LiftOver(chain); lift.map_position(12345)
    """

    def __init__(self, chain: Chain) -> None:
        self.chain = chain
        self.segments = _chain_segments(chain)
        self._starts = [seg.target_start for seg in self.segments]

    @property
    def strand(self) -> int:
        return self.chain.strand

    def map_position(
        self, target_position: int, snap: bool = False
    ) -> Optional[int]:
        """Query coordinate of a target position.

        Returns ``None`` for positions outside aligned columns unless
        ``snap`` is set, in which case the nearest aligned column's image
        is returned.
        """
        idx = bisect.bisect_right(self._starts, target_position) - 1
        if idx >= 0:
            seg = self.segments[idx]
            if seg.target_start <= target_position < seg.target_end:
                return seg.query_start + (
                    target_position - seg.target_start
                )
        if not snap or not self.segments:
            return None
        # nearest aligned column
        candidates = []
        if idx >= 0:
            seg = self.segments[idx]
            candidates.append((target_position - (seg.target_end - 1), seg.query_end - 1))
        if idx + 1 < len(self.segments):
            seg = self.segments[idx + 1]
            candidates.append((seg.target_start - target_position, seg.query_start))
        distance, query = min(candidates)
        return query if distance >= 0 else None

    def map_interval(
        self, start: int, end: int, min_fraction: float = 0.0
    ) -> Optional[Tuple[int, int]]:
        """Query interval spanned by the aligned part of ``[start, end)``.

        Returns the (min, max+1) of the images of aligned positions, or
        ``None`` when fewer than ``min_fraction`` of the bases map.
        """
        if end <= start:
            raise ValueError("empty interval")
        mapped: List[int] = []
        aligned = 0
        for seg in self.segments:
            lo = max(start, seg.target_start)
            hi = min(end, seg.target_end)
            if hi > lo:
                aligned += hi - lo
                offset = lo - seg.target_start
                mapped.append(seg.query_start + offset)
                mapped.append(seg.query_start + offset + (hi - lo) - 1)
        if not mapped:
            return None
        if aligned < min_fraction * (end - start):
            return None
        return min(mapped), max(mapped) + 1

    def coverage(self, start: int, end: int) -> float:
        """Fraction of ``[start, end)`` inside aligned columns."""
        if end <= start:
            return 0.0
        aligned = 0
        for seg in self.segments:
            lo = max(start, seg.target_start)
            hi = min(end, seg.target_end)
            aligned += max(0, hi - lo)
        return aligned / (end - start)


def _chain_segments(chain: Chain) -> List[LiftSegment]:
    """Flatten a chain into gap-free aligned runs."""
    segments: List[LiftSegment] = []
    for block in chain.blocks:
        t = block.target_start
        q = block.query_start
        for op, length in block.cigar:
            if op in ("=", "X"):
                if (
                    segments
                    and segments[-1].target_end == t
                    and segments[-1].query_end == q
                ):
                    last = segments.pop()
                    segments.append(
                        LiftSegment(
                            last.target_start,
                            last.query_start,
                            last.length + length,
                        )
                    )
                else:
                    segments.append(LiftSegment(t, q, length))
                t += length
                q += length
            elif op == "D":
                t += length
            else:
                q += length
    return segments


def best_lift(
    chains: TypingSequence[Chain], target_position: int
) -> Optional[int]:
    """Map a position through the highest-scoring chain that covers it."""
    for chain in sorted(chains, key=lambda c: -c.score):
        lifted = LiftOver(chain).map_position(target_position)
        if lifted is not None:
            return lifted
    return None
