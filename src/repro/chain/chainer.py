"""AXTCHAIN-like chaining of local alignments.

Chains are maximally-scoring ordered sequences of alignment blocks that may
be separated by large (including double-sided) gaps (paper section II).
The chainer runs a sparse dynamic program: blocks sorted by target start,
each block linked to the predecessor maximising ``chain_score(pred) -
gap_cost`` under strict colinearity, then chains extracted greedily from
the highest-scoring endpoints with each block used at most once — the same
output model as Kent's axtChain.

The paper's sensitivity metrics are all computed over these chains: top-10
chain scores, matching base-pairs in all chains, and exon coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence as TypingSequence, Tuple

import numpy as np

from ..align.alignment import Alignment
from ..obs.progress import NO_PROGRESS
from ..obs.tracer import NULL_TRACER
from .gap_costs import GapCosts


@dataclass(frozen=True)
class Chain:
    """An ordered, colinear sequence of alignment blocks."""

    blocks: Tuple[Alignment, ...]
    score: float
    strand: int = 1

    @property
    def target_start(self) -> int:
        return self.blocks[0].target_start

    @property
    def target_end(self) -> int:
        return self.blocks[-1].target_end

    @property
    def query_start(self) -> int:
        return self.blocks[0].query_start

    @property
    def query_end(self) -> int:
        return self.blocks[-1].query_end

    @property
    def matches(self) -> int:
        """Matching base pairs summed over all blocks."""
        return sum(block.matches for block in self.blocks)

    @property
    def aligned_pairs(self) -> int:
        return sum(block.cigar.aligned_pairs for block in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


def _chain_strand(
    blocks: List[Alignment],
    gap_costs: GapCosts,
    min_score: float,
    presorted: bool = False,
) -> List[Chain]:
    """Chain colinear blocks of a single strand.

    ``presorted=True`` promises the blocks already arrive ordered by
    ``(target_start, query_start)`` and skips the re-sort.
    """
    if not blocks:
        return []
    if not presorted:
        blocks = sorted(
            blocks, key=lambda a: (a.target_start, a.query_start)
        )
    n = len(blocks)
    t_start = np.array([b.target_start for b in blocks], dtype=np.int64)
    t_end = np.array([b.target_end for b in blocks], dtype=np.int64)
    q_start = np.array([b.query_start for b in blocks], dtype=np.int64)
    q_end = np.array([b.query_end for b in blocks], dtype=np.int64)
    own = np.array([float(b.score) for b in blocks])

    best = own.copy()
    back = np.full(n, -1, dtype=np.int64)
    for i in range(1, n):
        feasible = np.flatnonzero(
            (t_end[:i] <= t_start[i]) & (q_end[:i] <= q_start[i])
        )
        if feasible.size == 0:
            continue
        gaps = gap_costs.cost(
            t_start[i] - t_end[feasible], q_start[i] - q_end[feasible]
        )
        candidate = best[feasible] - gaps
        k = int(np.argmax(candidate))
        if candidate[k] > 0:
            best[i] = own[i] + candidate[k]
            back[i] = feasible[k]

    chains: List[Chain] = []
    used = np.zeros(n, dtype=bool)
    for i in np.argsort(-best):
        if used[i]:
            continue
        path = []
        node = int(i)
        while node != -1 and not used[node]:
            path.append(node)
            used[node] = True
            node = int(back[node])
        path.reverse()
        # Truncated walks (hit an already-used block) keep their own
        # blocks; rescore the surviving path.
        score = float(own[path[0]])
        for prev, cur in zip(path, path[1:]):
            score += float(own[cur]) - float(
                gap_costs.cost(
                    t_start[cur] - t_end[prev], q_start[cur] - q_end[prev]
                )
            )
        if score >= min_score:
            chains.append(
                Chain(
                    blocks=tuple(blocks[k] for k in path),
                    score=score,
                    strand=blocks[path[0]].strand,
                )
            )
    chains.sort(key=lambda chain: -chain.score)
    return chains


def build_chains(
    alignments: TypingSequence[Alignment],
    gap_costs: Optional[GapCosts] = None,
    min_score: float = 0.0,
    tracer=NULL_TRACER,
    presorted: bool = False,
    progress=NO_PROGRESS,
) -> List[Chain]:
    """Chain alignments into maximally scoring colinear sequences.

    Alignments are partitioned by (target, query, strand) and chained per
    partition; the result is sorted by descending chain score.  A
    supplied tracer records one ``chain`` span with a
    ``chain_partition`` child per (target, query, strand) partition.

    ``presorted=True`` is a fast path for pipeline callers whose
    alignments are already ordered by ``(target_start, query_start)``
    within each (target, query, strand) partition (partitioning preserves
    relative order, so a globally sorted input qualifies); the per
    partition re-sort is skipped.

    ``progress`` (a :class:`repro.obs.progress.ProgressRenderer`, or
    the default no-op sink) advances one unit per chained partition.
    """
    if gap_costs is None:
        gap_costs = GapCosts.loose()
    with tracer.span("chain") as span:
        partitions: Dict[Tuple[str, str, int], List[Alignment]] = {}
        for alignment in alignments:
            key = (
                alignment.target_name,
                alignment.query_name,
                alignment.strand,
            )
            partitions.setdefault(key, []).append(alignment)
        chains: List[Chain] = []
        for key, blocks in partitions.items():
            with tracer.span(
                "chain_partition",
                target=key[0],
                query=key[1],
                strand="+" if key[2] == 1 else "-",
            ) as part_span:
                part_chains = _chain_strand(
                    blocks, gap_costs, min_score, presorted=presorted
                )
                part_span.inc("blocks", len(blocks))
                part_span.inc("chains", len(part_chains))
            chains.extend(part_chains)
            progress.advance(units=1)
        chains.sort(key=lambda chain: -chain.score)
        span.inc("blocks", len(alignments))
        span.inc("partitions", len(partitions))
        span.inc("chains", len(chains))
        return chains
