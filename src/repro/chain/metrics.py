"""Sensitivity metrics over alignment chains (paper section V-E).

The paper measures whole-genome-alignment sensitivity three ways, all
reproduced here:

1. top-10 chain scores (proxy for orthologous base pairs),
2. matching base-pairs over all chains (orthologs + paralogs),
3. exon coverage (see :mod:`repro.annotate.exons`).

It also derives the Figure 2 statistic: the distribution of ungapped block
lengths within the top-scoring chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence as TypingSequence, Tuple

import numpy as np

from .chainer import Chain


@dataclass(frozen=True)
class ChainComparison:
    """Side-by-side sensitivity numbers for two aligners' chains."""

    baseline_top_score: float
    improved_top_score: float
    baseline_matches: int
    improved_matches: int

    @property
    def top_score_gain(self) -> float:
        """Fractional top-chain score improvement (paper: up to +5.73%)."""
        if self.baseline_top_score == 0:
            return 0.0
        return (
            self.improved_top_score - self.baseline_top_score
        ) / self.baseline_top_score

    @property
    def match_ratio(self) -> float:
        """Matched-bp ratio improved/baseline (paper: up to 3.12x)."""
        if self.baseline_matches == 0:
            return float("inf") if self.improved_matches else 1.0
        return self.improved_matches / self.baseline_matches


def top_chain_scores(chains: TypingSequence[Chain], k: int = 10) -> List[float]:
    """Scores of the ``k`` highest-scoring chains (descending)."""
    return sorted((chain.score for chain in chains), reverse=True)[:k]


def total_matches(chains: TypingSequence[Chain]) -> int:
    """Matching base pairs summed over every chain."""
    return sum(chain.matches for chain in chains)


def mean_top_score(chains: TypingSequence[Chain], k: int = 10) -> float:
    scores = top_chain_scores(chains, k)
    return float(np.mean(scores)) if scores else 0.0


def compare(
    baseline: TypingSequence[Chain],
    improved: TypingSequence[Chain],
    k: int = 10,
) -> ChainComparison:
    """Build the Table III-style comparison of two chain sets."""
    return ChainComparison(
        baseline_top_score=float(np.sum(top_chain_scores(baseline, k))),
        improved_top_score=float(np.sum(top_chain_scores(improved, k))),
        baseline_matches=total_matches(baseline),
        improved_matches=total_matches(improved),
    )


def ungapped_block_lengths(
    chains: TypingSequence[Chain], top_k: int = 10
) -> np.ndarray:
    """Ungapped block lengths in the ``top_k`` highest-scoring chains.

    This is the paper's Figure 2 statistic: lengths of gap-free alignment
    runs before an indel interrupts them.  The mean of this distribution
    shrinks with phylogenetic distance (~641 bp for human-chimp, ~31 bp
    for human-mouse), which is why a 30-match ungapped filter loses
    distant alignments.
    """
    lengths: List[int] = []
    for chain in sorted(chains, key=lambda c: -c.score)[:top_k]:
        for block in chain.blocks:
            lengths.extend(block.cigar.ungapped_block_lengths())
    return np.asarray(lengths, dtype=np.int64)


def block_length_histogram(
    lengths: np.ndarray, bin_edges: TypingSequence[int] = ()
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of block lengths over log-spaced bins (Figure 2 axes)."""
    if len(bin_edges) == 0:
        top = max(int(lengths.max()), 2) if lengths.size else 2
        bin_edges = np.unique(
            np.round(np.logspace(0, np.log10(top), 24)).astype(np.int64)
        )
    counts, edges = np.histogram(lengths, bins=bin_edges)
    return counts, edges


def fraction_below(lengths: np.ndarray, cutoff: int) -> float:
    """Fraction of ungapped blocks shorter than ``cutoff`` bases.

    With ``cutoff`` near LASTZ's 30-match ungapped requirement, this is
    the fraction of alignment blocks an ungapped filter cannot anchor —
    the red-line argument of Figure 2.
    """
    if lengths.size == 0:
        return 0.0
    return float(np.count_nonzero(lengths < cutoff)) / lengths.size
