"""Chain netting (UCSC chainNet-like).

After chaining, the UCSC pipeline *nets* the chains: the best chain
claims the target intervals it covers; lower-scoring chains may only fill
the gaps the better chains left (recursively), producing a hierarchy that
resolves which alignment "owns" each region — the structure behind the
browser's net tracks and the orthology calls of section II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence as TypingSequence, Tuple

from .chainer import Chain


@dataclass
class NetEntry:
    """One chain placed in the net, with its children filling its gaps."""

    chain: Chain
    target_start: int
    target_end: int
    level: int
    children: List["NetEntry"] = field(default_factory=list)

    @property
    def span(self) -> int:
        return self.target_end - self.target_start

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


@dataclass
class Net:
    """The full net of one target sequence."""

    entries: List[NetEntry]
    target_length: int

    def top_level(self) -> List[NetEntry]:
        return self.entries

    def all_entries(self) -> List[NetEntry]:
        collected: List[NetEntry] = []

        def walk(entries: List[NetEntry]) -> None:
            for entry in entries:
                collected.append(entry)
                walk(entry.children)

        walk(self.entries)
        return collected

    def covered_bases(self) -> int:
        """Target bases claimed by any net entry (levels never overlap
        within a lineage, so summation over top-level spans suffices for
        level-1 coverage; deeper levels refill gaps)."""
        return sum(entry.span for entry in self.entries)

    def fill_fraction(self) -> float:
        return (
            self.covered_bases() / self.target_length
            if self.target_length
            else 0.0
        )


def _free_intervals(
    span: Tuple[int, int], used: TypingSequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Sub-intervals of ``span`` not covered by ``used`` intervals."""
    start, end = span
    free: List[Tuple[int, int]] = []
    cursor = start
    for u_start, u_end in sorted(used):
        if u_end <= start or u_start >= end:
            continue
        if u_start > cursor:
            free.append((cursor, min(u_start, end)))
        cursor = max(cursor, u_end)
        if cursor >= end:
            break
    if cursor < end:
        free.append((cursor, end))
    return free


def build_net(
    chains: TypingSequence[Chain],
    target_length: int,
    min_span: int = 25,
    max_level: int = 8,
) -> Net:
    """Net chains over one target sequence.

    Chains are considered in score order; each claims the part of its
    target span still free at its level.  A chain whose free span is
    shorter than ``min_span`` is dropped (chainNet's minSpace).
    """
    ordered = sorted(chains, key=lambda c: -c.score)

    def place(
        available: Tuple[int, int],
        candidates: List[Chain],
        level: int,
    ) -> List[NetEntry]:
        if level > max_level:
            return []
        entries: List[NetEntry] = []
        used: List[Tuple[int, int]] = []
        for chain in candidates:
            lo = max(chain.target_start, available[0])
            hi = min(chain.target_end, available[1])
            if hi - lo < min_span:
                continue
            free = _free_intervals((lo, hi), used)
            if not free:
                continue
            # claim the largest free piece
            piece = max(free, key=lambda iv: iv[1] - iv[0])
            if piece[1] - piece[0] < min_span:
                continue
            entry = NetEntry(
                chain=chain,
                target_start=piece[0],
                target_end=piece[1],
                level=level,
            )
            used.append(piece)
            entries.append(entry)
        # children: fill each entry's gaps with the remaining chains
        for entry in entries:
            rest = [c for c in candidates if c is not entry.chain]
            gap_intervals = _gap_intervals_of_chain(
                entry.chain, entry.target_start, entry.target_end
            )
            for gap in gap_intervals:
                if gap[1] - gap[0] < min_span:
                    continue
                entry.children.extend(place(gap, rest, level + 1))
        return entries

    entries = place((0, target_length), list(ordered), 1)
    return Net(entries=entries, target_length=target_length)


def _gap_intervals_of_chain(
    chain: Chain, start: int, end: int
) -> List[Tuple[int, int]]:
    """Target intervals between the chain's blocks, clipped to a span."""
    gaps: List[Tuple[int, int]] = []
    for prev_block, next_block in zip(chain.blocks, chain.blocks[1:]):
        lo = max(prev_block.target_end, start)
        hi = min(next_block.target_start, end)
        if hi > lo:
            gaps.append((lo, hi))
    return gaps
