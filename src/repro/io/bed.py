"""BED interval format (annotations such as exons).

BED is the lingua franca for genome annotations (the Ensembl exon sets
of the paper's Table III analysis travel as BED-like interval lists).
Rows are ``chrom  start  end  [name  [score  [strand]]]`` with half-open
0-based coordinates — the same convention as
:class:`repro.genome.evolution.Interval`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Tuple, Union

from ..genome.evolution import Interval

_PathOrFile = Union[str, Path, TextIO]


def _opened(source: _PathOrFile, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def write_bed(
    intervals: Iterable[Interval],
    chrom: str,
    destination: _PathOrFile,
) -> None:
    """Write intervals of one sequence as BED rows."""
    handle, needs_close = _opened(destination, "w")
    try:
        for interval in intervals:
            strand = "+" if interval.strand == 1 else "-"
            handle.write(
                f"{chrom}\t{interval.start}\t{interval.end}\t"
                f"{interval.name or '.'}\t0\t{strand}\n"
            )
    finally:
        if needs_close:
            handle.close()


def bed_string(intervals: Iterable[Interval], chrom: str) -> str:
    buffer = io.StringIO()
    write_bed(intervals, chrom, buffer)
    return buffer.getvalue()


def read_bed(source: _PathOrFile) -> List[Tuple[str, Interval]]:
    """Parse BED rows into ``(chrom, Interval)`` pairs.

    Track lines, comments and blank lines are skipped; missing optional
    columns default to an unnamed forward-strand interval.
    """
    handle, needs_close = _opened(source, "r")
    try:
        rows: List[Tuple[str, Interval]] = []
        for line in handle:
            line = line.strip()
            if (
                not line
                or line.startswith("#")
                or line.startswith("track")
                or line.startswith("browser")
            ):
                continue
            fields = line.split("\t") if "\t" in line else line.split()
            if len(fields) < 3:
                raise ValueError(f"malformed BED row: {line!r}")
            name = fields[3] if len(fields) > 3 and fields[3] != "." else ""
            strand = (
                -1 if len(fields) > 5 and fields[5] == "-" else 1
            )
            rows.append(
                (
                    fields[0],
                    Interval(
                        start=int(fields[1]),
                        end=int(fields[2]),
                        name=name,
                        strand=strand,
                    ),
                )
            )
        return rows
    finally:
        if needs_close:
            handle.close()
