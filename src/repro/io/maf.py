"""MAF (Multiple Alignment Format) writer/reader.

Both LASTZ and Darwin-WGA emit MAF (paper section V-E); AXTCHAIN consumes
it.  Each alignment becomes an ``a``-block with two ``s`` lines; reading a
MAF reconstructs :class:`~repro.align.alignment.Alignment` objects (the
CIGAR is rebuilt from the gapped texts).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..align.alignment import Alignment
from ..align.cigar import Cigar
from ..genome.sequence import Sequence

_PathOrFile = Union[str, Path, TextIO]


def _opened(source: _PathOrFile, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def _gapped_texts(
    alignment: Alignment, target: Sequence, query: Sequence
) -> (str, str):
    q_seq = (
        query.reverse_complement() if alignment.strand == -1 else query
    )
    t_text: List[str] = []
    q_text: List[str] = []
    ti = alignment.target_start
    qi = alignment.query_start
    for op, length in alignment.cigar:
        if op in ("=", "X"):
            t_text.append(str(target.slice(ti, ti + length)))
            q_text.append(str(q_seq.slice(qi, qi + length)))
            ti += length
            qi += length
        elif op == "D":
            t_text.append(str(target.slice(ti, ti + length)))
            q_text.append("-" * length)
            ti += length
        else:
            t_text.append("-" * length)
            q_text.append(str(q_seq.slice(qi, qi + length)))
            qi += length
    return "".join(t_text), "".join(q_text)


def _write_block(
    handle: TextIO, alignment: Alignment, target: Sequence, query: Sequence
) -> None:
    t_text, q_text = _gapped_texts(alignment, target, query)
    handle.write(f"a score={alignment.score}\n")
    handle.write(
        f"s {alignment.target_name or 'target'} "
        f"{alignment.target_start} {alignment.target_span} + "
        f"{len(target)} {t_text}\n"
    )
    strand = "+" if alignment.strand == 1 else "-"
    handle.write(
        f"s {alignment.query_name or 'query'} "
        f"{alignment.query_start} {alignment.query_span} {strand} "
        f"{len(query)} {q_text}\n"
    )
    handle.write("\n")


def write_maf(
    alignments: Iterable[Alignment],
    target: Sequence,
    query: Sequence,
    destination: _PathOrFile,
) -> None:
    """Write alignments as MAF blocks."""
    handle, needs_close = _opened(destination, "w")
    try:
        handle.write("##maf version=1 scoring=lastz-default\n")
        for alignment in alignments:
            _write_block(handle, alignment, target, query)
    finally:
        if needs_close:
            handle.close()


def write_assembly_maf(
    alignments: Iterable[Alignment],
    target_assembly,
    query_assembly,
    destination: _PathOrFile,
) -> None:
    """Write whole-assembly alignments as MAF blocks.

    Unlike :func:`write_maf`, the alignments may span many chromosome
    pairs; each block's sequences are looked up by the alignment's
    recorded chromosome names in the two assemblies (any iterable of
    uniquely named :class:`Sequence` objects).
    """
    targets = {seq.name: seq for seq in target_assembly}
    queries = {seq.name: seq for seq in query_assembly}
    handle, needs_close = _opened(destination, "w")
    try:
        handle.write("##maf version=1 scoring=lastz-default\n")
        for alignment in alignments:
            _write_block(
                handle,
                alignment,
                targets[alignment.target_name],
                queries[alignment.query_name],
            )
    finally:
        if needs_close:
            handle.close()


def maf_string(
    alignments: Iterable[Alignment], target: Sequence, query: Sequence
) -> str:
    buffer = io.StringIO()
    write_maf(alignments, target, query, buffer)
    return buffer.getvalue()


def _cigar_from_texts(t_text: str, q_text: str) -> Cigar:
    ops: List[str] = []
    for t_char, q_char in zip(t_text, q_text):
        if t_char == "-" and q_char == "-":
            raise ValueError("MAF column with gaps in both rows")
        if t_char == "-":
            ops.append("I")
        elif q_char == "-":
            ops.append("D")
        elif t_char.upper() == q_char.upper() and t_char.upper() != "N":
            ops.append("=")
        else:
            ops.append("X")
    return Cigar.from_ops(ops)


def read_maf(source: _PathOrFile) -> List[Alignment]:
    """Parse a two-species MAF back into alignments."""
    handle, needs_close = _opened(source, "r")
    try:
        alignments: List[Alignment] = []
        score = 0
        rows: List[tuple] = []
        for line in list(handle) + [""]:
            line = line.strip()
            if line.startswith("a"):
                score_field = [
                    part for part in line.split() if part.startswith("score=")
                ]
                score = int(float(score_field[0][6:])) if score_field else 0
                rows = []
            elif line.startswith("s"):
                parts = line.split()
                rows.append(
                    (
                        parts[1],
                        int(parts[2]),
                        int(parts[3]),
                        parts[4],
                        int(parts[5]),
                        parts[6],
                    )
                )
            elif not line and len(rows) == 2:
                (t_name, t_start, t_size, _, _, t_text) = rows[0]
                (q_name, q_start, q_size, q_strand, _, q_text) = rows[1]
                alignments.append(
                    Alignment(
                        target_name=t_name,
                        query_name=q_name,
                        target_start=t_start,
                        target_end=t_start + t_size,
                        query_start=q_start,
                        query_end=q_start + q_size,
                        score=score,
                        cigar=_cigar_from_texts(t_text, q_text),
                        strand=1 if q_strand == "+" else -1,
                    )
                )
                rows = []
        return alignments
    finally:
        if needs_close:
            handle.close()
