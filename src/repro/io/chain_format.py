"""UCSC chain format writer.

Chains are the paper's unit of evaluation and visualisation (uploaded to
the UCSC genome browser).  The format is a header line::

    chain score tName tSize tStrand tStart tEnd qName qSize qStrand qStart qEnd id

followed by one ``size dt dq`` triple per ungapped block, where ``dt`` /
``dq`` are the gaps to the next block (absent on the last line).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Tuple, Union

from ..chain.chainer import Chain

_PathOrFile = Union[str, Path, TextIO]


def _opened(destination: _PathOrFile, mode: str):
    if isinstance(destination, (str, Path)):
        return open(destination, mode), True
    return destination, False


def chain_triples(chain: Chain) -> List[Tuple[int, int, int]]:
    """Flatten a chain into UCSC ``(size, dt, dq)`` triples.

    Walks every block's CIGAR plus the inter-block gaps; adjacent
    ungapped runs merge, and the final triple carries ``dt = dq = 0``.
    """
    triples: List[Tuple[int, int, int]] = []
    size = 0
    pending_dt = 0
    pending_dq = 0

    def flush() -> None:
        nonlocal size, pending_dt, pending_dq
        if size:
            triples.append((size, pending_dt, pending_dq))
            size = 0
        elif triples and (pending_dt or pending_dq):
            last_size, last_dt, last_dq = triples[-1]
            triples[-1] = (
                last_size,
                last_dt + pending_dt,
                last_dq + pending_dq,
            )
        pending_dt = 0
        pending_dq = 0

    previous_block = None
    for block in chain.blocks:
        if previous_block is not None:
            pending_dt += block.target_start - previous_block.target_end
            pending_dq += block.query_start - previous_block.query_end
        for op, length in block.cigar:
            if op in ("=", "X"):
                if pending_dt or pending_dq:
                    flush()
                size += length
            elif op == "D":
                flush()
                pending_dt += length
            else:
                flush()
                pending_dq += length
        previous_block = block
    flush()
    if triples:
        last_size, _, _ = triples[-1]
        triples[-1] = (last_size, 0, 0)
    return triples


def write_chains(
    chains: Iterable[Chain],
    target_name: str,
    target_size: int,
    query_name: str,
    query_size: int,
    destination: _PathOrFile,
) -> None:
    """Write chains in UCSC chain format."""
    handle, needs_close = _opened(destination, "w")
    try:
        for chain_id, chain in enumerate(chains, start=1):
            strand = "+" if chain.strand == 1 else "-"
            handle.write(
                f"chain {int(chain.score)} "
                f"{target_name} {target_size} + "
                f"{chain.target_start} {chain.target_end} "
                f"{query_name} {query_size} {strand} "
                f"{chain.query_start} {chain.query_end} {chain_id}\n"
            )
            for size, dt, dq in chain_triples(chain):
                if dt == 0 and dq == 0:
                    handle.write(f"{size}\n")
                else:
                    handle.write(f"{size} {dt} {dq}\n")
            handle.write("\n")
    finally:
        if needs_close:
            handle.close()


def chains_string(
    chains: Iterable[Chain],
    target_name: str,
    target_size: int,
    query_name: str,
    query_size: int,
) -> str:
    buffer = io.StringIO()
    write_chains(
        chains, target_name, target_size, query_name, query_size, buffer
    )
    return buffer.getvalue()
