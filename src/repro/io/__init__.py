"""Output formats: MAF/AXT alignments, UCSC chains, BED intervals."""

from .axt import axt_string, read_axt, write_axt
from .bed import bed_string, read_bed, write_bed
from .chain_format import chain_triples, chains_string, write_chains
from .maf import maf_string, read_maf, write_assembly_maf, write_maf

__all__ = [
    "axt_string",
    "read_axt",
    "write_axt",
    "bed_string",
    "read_bed",
    "write_bed",
    "chain_triples",
    "chains_string",
    "write_chains",
    "maf_string",
    "read_maf",
    "write_assembly_maf",
    "write_maf",
]
