"""AXT pairwise alignment format.

AXT is the format Kent's original chaining tools consume (axtChain's
native input; the paper's AXTCHAIN post-processing step).  Each block is
a header line::

    index tName tStart tEnd qName qStart qEnd strand score

(1-based, end-inclusive coordinates; query coordinates on the query
strand) followed by the two gapped sequence lines and a blank line.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..align.alignment import Alignment
from ..genome.sequence import Sequence
from .maf import _cigar_from_texts, _gapped_texts

_PathOrFile = Union[str, Path, TextIO]


def _opened(source: _PathOrFile, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def write_axt(
    alignments: Iterable[Alignment],
    target: Sequence,
    query: Sequence,
    destination: _PathOrFile,
) -> None:
    """Write alignments as AXT blocks."""
    handle, needs_close = _opened(destination, "w")
    try:
        for index, alignment in enumerate(alignments):
            t_text, q_text = _gapped_texts(alignment, target, query)
            strand = "+" if alignment.strand == 1 else "-"
            handle.write(
                f"{index} "
                f"{alignment.target_name or 'target'} "
                f"{alignment.target_start + 1} {alignment.target_end} "
                f"{alignment.query_name or 'query'} "
                f"{alignment.query_start + 1} {alignment.query_end} "
                f"{strand} {alignment.score}\n"
            )
            handle.write(t_text + "\n")
            handle.write(q_text + "\n")
            handle.write("\n")
    finally:
        if needs_close:
            handle.close()


def axt_string(
    alignments: Iterable[Alignment], target: Sequence, query: Sequence
) -> str:
    buffer = io.StringIO()
    write_axt(alignments, target, query, buffer)
    return buffer.getvalue()


def read_axt(source: _PathOrFile) -> List[Alignment]:
    """Parse an AXT file back into alignments."""
    handle, needs_close = _opened(source, "r")
    try:
        alignments: List[Alignment] = []
        lines = [line.rstrip("\n") for line in handle]
        i = 0
        while i < len(lines):
            line = lines[i].strip()
            if not line or line.startswith("#"):
                i += 1
                continue
            fields = line.split()
            if len(fields) != 9:
                raise ValueError(f"malformed AXT header: {line!r}")
            if i + 2 >= len(lines):
                raise ValueError("truncated AXT block")
            t_text = lines[i + 1].strip()
            q_text = lines[i + 2].strip()
            alignments.append(
                Alignment(
                    target_name=fields[1],
                    query_name=fields[4],
                    target_start=int(fields[2]) - 1,
                    target_end=int(fields[3]),
                    query_start=int(fields[5]) - 1,
                    query_end=int(fields[6]),
                    score=int(fields[8]),
                    cigar=_cigar_from_texts(t_text, q_text),
                    strand=1 if fields[7] == "+" else -1,
                )
            )
            i += 3
        return alignments
    finally:
        if needs_close:
            handle.close()
