"""Append-only run manifests: checkpoint/resume for long alignments.

A whole-assembly alignment decomposes into independent (target
chromosome, query chromosome) units — the explicit dataflow that makes
seed-filter-extend pipelines restartable.  :class:`RunManifest`
journals each completed unit to a JSON-lines file as it finishes
(flushed and fsynced, so a crash loses at most the unit in flight), and
``--resume`` replays the journal instead of recomputing.

Safety properties:

* the header pins digests of the aligner, its configuration and both
  input assemblies; :meth:`verify` refuses to resume against different
  inputs or parameters;
* every unit record carries a SHA-256 over its payload — torn or
  corrupted lines (including a partially written final line from the
  crash itself) are skipped, never trusted;
* records are pure values keyed by unit, so resuming interleaves
  journaled and freshly computed units in the original serial order and
  the final output is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "MANIFEST_VERSION",
    "ManifestError",
    "ManifestMismatch",
    "RunManifest",
    "config_digest",
    "sequences_digest",
]

#: Bump when the journal format changes; old manifests are refused.
MANIFEST_VERSION = 1


class ManifestError(RuntimeError):
    """The manifest file is unusable (bad header, wrong version)."""


class ManifestMismatch(ManifestError):
    """The manifest was written by a different run configuration."""


def config_digest(config) -> str:
    """Digest of an aligner configuration object.

    Configurations are (nested) frozen dataclasses; their pickled form
    is stable for identical parameter values within a Python version,
    and a spurious mismatch merely refuses to resume — the safe
    direction.
    """
    return hashlib.sha256(
        pickle.dumps(config, protocol=4)
    ).hexdigest()


def sequences_digest(sequences) -> str:
    """Digest of an ordered collection of named sequences.

    Works on any iterable of objects with ``name`` and ``codes``
    (an :class:`~repro.genome.assembly.Assembly`, a list of
    :class:`~repro.genome.sequence.Sequence`), hashing names and code
    arrays in order.
    """
    digest = hashlib.sha256()
    for seq in sequences:
        digest.update((seq.name or "").encode())
        digest.update(b"\0")
        digest.update(seq.codes.tobytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _payload_checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class RunManifest:
    """Journal of completed work units for one configured run.

    Construction goes through :meth:`create` (start a fresh journal) or
    :meth:`load` (parse an existing one); :meth:`attach` picks between
    them for the resume workflow.
    """

    def __init__(self, path: Union[str, Path], header: Dict) -> None:
        self.path = Path(path)
        self.header = header
        self._units: Dict[str, bytes] = {}
        self.skipped_records = 0

    # -- construction ------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        aligner: str,
        config: str,
        target: str,
        query: str,
    ) -> "RunManifest":
        """Start a fresh journal at ``path`` (truncating any old one)."""
        header = {
            "kind": "header",
            "version": MANIFEST_VERSION,
            "aligner": aligner,
            "config": config,
            "target": target,
            "query": query,
        }
        manifest = cls(path, header)
        manifest.path.parent.mkdir(parents=True, exist_ok=True)
        with open(manifest.path, "w") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return manifest

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Parse an existing journal, skipping torn/corrupt records."""
        path = Path(path)
        raw = path.read_bytes()
        torn_tail = 0
        if raw and not raw.endswith(b"\n"):
            # The crash interrupted the final write mid-line.  Chop the
            # torn bytes now: they can never parse, and leaving them in
            # place would make the next `record()` append continue the
            # partial line — merging a good record into garbage that a
            # second crash-and-resume would then skip.
            keep = raw.rfind(b"\n") + 1
            with open(path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
            raw = raw[:keep]
            torn_tail = 1
        lines = raw.decode("utf-8").splitlines()
        if not lines:
            raise ManifestError(f"{path}: empty manifest")
        try:
            header = json.loads(lines[0])
        except ValueError:
            raise ManifestError(f"{path}: unreadable manifest header")
        if header.get("kind") != "header":
            raise ManifestError(f"{path}: first record is not a header")
        if header.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"{path}: unsupported manifest version "
                f"{header.get('version')!r}"
            )
        manifest = cls(path, header)
        manifest.skipped_records = torn_tail
        for line in lines[1:]:
            try:
                record = json.loads(line)
                if record.get("kind") != "unit":
                    raise ValueError("not a unit record")
                payload = base64.b64decode(record["payload"])
                if _payload_checksum(payload) != record["sha256"]:
                    raise ValueError("checksum mismatch")
                unit = record["unit"]
            except (ValueError, KeyError, TypeError):
                # A torn tail (the crash interrupted the final write) or
                # a corrupted record: the unit is simply recomputed.
                manifest.skipped_records += 1
                continue
            manifest._units[unit] = payload
        return manifest

    @classmethod
    def attach(
        cls,
        path: Union[str, Path],
        *,
        aligner: str,
        config: str,
        target: str,
        query: str,
        resume: bool,
    ) -> "RunManifest":
        """Open for a run: load-and-verify when resuming, else create.

        Resuming against a missing manifest starts a fresh journal (the
        first attempt of a run that plans to be resumable later).
        """
        path = Path(path)
        if resume and path.exists():
            manifest = cls.load(path)
            manifest.verify(
                aligner=aligner, config=config, target=target, query=query
            )
            return manifest
        return cls.create(
            path, aligner=aligner, config=config, target=target, query=query
        )

    # -- integrity ---------------------------------------------------
    def verify(
        self, *, aligner: str, config: str, target: str, query: str
    ) -> None:
        """Refuse to resume a journal from a different run setup."""
        expected = {
            "aligner": aligner,
            "config": config,
            "target": target,
            "query": query,
        }
        for field_name, value in expected.items():
            recorded = self.header.get(field_name)
            if recorded != value:
                raise ManifestMismatch(
                    f"{self.path}: manifest {field_name} digest "
                    f"{recorded!r} does not match this run ({value!r}) — "
                    "inputs or configuration changed; refusing to resume"
                )

    # -- journal access ----------------------------------------------
    def __contains__(self, unit: str) -> bool:
        return unit in self._units

    def __len__(self) -> int:
        return len(self._units)

    @property
    def units(self):
        """Completed unit keys, in journal order."""
        return list(self._units)

    def result_for(self, unit: str):
        """Unpickle the journaled result of a completed unit."""
        return pickle.loads(self._units[unit])

    def record(self, unit: str, result) -> None:
        """Append one completed unit (flushed + fsynced)."""
        payload = pickle.dumps(result, protocol=4)
        line = json.dumps(
            {
                "kind": "unit",
                "unit": unit,
                "sha256": _payload_checksum(payload),
                "payload": base64.b64encode(payload).decode("ascii"),
            },
            sort_keys=True,
        )
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._units[unit] = payload
