"""Fault tolerance for the parallel pipelines.

Darwin-WGA's throughput argument rests on fanning thousands of
independent work units across processing elements; at production scale
some of those units *will* hit a dying worker, a stalled batch or a
corrupted artifact.  This package holds the policy side of surviving
that without changing a single output byte:

* :class:`RetryPolicy` / :func:`backoff_delay` — bounded retries with
  deterministic (seeded, never wall-clock-driven) exponential backoff;
* :class:`FaultPlan` — a seeded schedule of injected faults (worker
  crashes, timeouts, task errors, cache corruption) so every recovery
  path is provable in tests and CI;
* :class:`RunManifest` — an append-only journal of completed
  chromosome-pair units with config/genome digests, powering
  ``--resume``;
* :class:`RecoveryStats` — counters proving which recovery paths
  actually executed during a run.

The mechanism side (the dispatcher that applies the policy to a live
process pool) lives up the DAG in :mod:`repro.parallel.supervise`; this
package stays importable by every layer and imports nothing above
:mod:`repro.obs`.
"""

from .checkpoint import (
    MANIFEST_VERSION,
    ManifestError,
    ManifestMismatch,
    RunManifest,
    config_digest,
    sequences_digest,
)
from .faults import (
    DEFAULT_RATES,
    FAULT_KINDS,
    FaultPlan,
    InjectedFault,
    corrupt_file,
    injected_task_error,
    injected_worker_crash,
    injected_worker_hang,
)
from .policy import (
    RecoveryStats,
    ResilienceOptions,
    RetryPolicy,
    backoff_delay,
    stable_fraction,
)

__all__ = [
    "DEFAULT_RATES",
    "FAULT_KINDS",
    "MANIFEST_VERSION",
    "FaultPlan",
    "InjectedFault",
    "ManifestError",
    "ManifestMismatch",
    "RecoveryStats",
    "ResilienceOptions",
    "RetryPolicy",
    "RunManifest",
    "backoff_delay",
    "config_digest",
    "corrupt_file",
    "injected_task_error",
    "injected_worker_crash",
    "injected_worker_hang",
    "sequences_digest",
    "stable_fraction",
]
