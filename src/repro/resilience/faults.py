"""Deterministic fault injection.

A :class:`FaultPlan` is a *seeded schedule* of faults: whether a fault
of a given kind fires for a given work-unit key at a given attempt is a
pure function of ``(seed, kind, key, attempt)``, so a chaos run is
exactly reproducible — the same plan kills the same workers, times out
the same batches and corrupts the same cache entries every time, on
every machine.  Tests and the CI ``chaos-smoke`` job use this to prove
every recovery path while asserting byte-identical output.

Fault kinds:

* ``crash``   — the dispatched batch is replaced by a task that kills
  its worker process (``os._exit``), breaking the pool exactly like an
  OOM-killed or segfaulted worker;
* ``error``   — the batch is replaced by a task raising
  :class:`InjectedFault`;
* ``timeout`` — the supervisor treats the batch's attempt as having
  exceeded its deadline without waiting for it;
* ``corrupt`` — the seed-index cache flips a byte of a freshly stored
  entry, exercising checksum quarantine-and-rebuild on the next load;
* ``stall``   — the streaming coordinator sleeps before collecting a
  unit, modelling a slow consumer so tests can prove the bounded
  queues hold producers back (backpressure) without changing output.
  Never part of :data:`DEFAULT_RATES`: stalls only slow a run down, so
  they fire only when a spec names them explicitly.
* ``hang``    — the dispatched batch is replaced by a task that
  silences its worker's heartbeat and sleeps forever, modelling a
  wedged (SIGSTOP'd, deadlocked) worker that neither crashes nor
  returns.  Only detectable by liveness supervision, which is the
  point: it proves the heartbeat sentinel and its escalation ladder.
  Never part of :data:`DEFAULT_RATES` — without a
  :class:`~repro.obs.bus.HeartbeatMonitor` (or a task timeout) on the
  run, a hang would block collection indefinitely.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .policy import stable_fraction

__all__ = [
    "DEFAULT_RATES",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "corrupt_file",
    "injected_task_error",
    "injected_worker_crash",
    "injected_worker_hang",
]

#: Every fault kind a plan may schedule.
FAULT_KINDS = ("crash", "error", "timeout", "corrupt", "stall", "hang")

#: Rates used when a spec names only a seed (``--inject-faults 7``).
DEFAULT_RATES: Dict[str, float] = {
    "crash": 0.2,
    "error": 0.2,
    "timeout": 0.2,
    "corrupt": 0.5,
}


class InjectedFault(RuntimeError):
    """Raised by an injected ``error`` task inside a worker."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, rate-based schedule of faults.

    ``rates`` maps fault kind to a probability in ``[0, 1]``; kinds not
    present never fire.  :meth:`decide` is deterministic, so the plan
    can be re-evaluated anywhere (parent, worker, cache) and produce
    one coherent schedule.
    """

    seed: int
    rates: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind in self.rates:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec.

        ``SEED`` alone uses :data:`DEFAULT_RATES`;
        ``SEED:kind=rate,kind=rate`` sets explicit rates, e.g.
        ``7:crash=0.5,corrupt=1.0``.
        """
        head, sep, tail = spec.partition(":")
        try:
            seed = int(head)
        except ValueError:
            raise ValueError(
                f"fault spec {spec!r}: seed must be an integer"
            ) from None
        if not sep:
            return cls(seed=seed, rates=dict(DEFAULT_RATES))
        rates: Dict[str, float] = {}
        for item in tail.split(","):
            if not item:
                continue
            kind, eq, value = item.partition("=")
            if not eq:
                raise ValueError(
                    f"fault spec {spec!r}: expected kind=rate, got {item!r}"
                )
            rates[kind.strip()] = float(value)
        return cls(seed=seed, rates=rates)

    def decide(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Whether a ``kind`` fault fires for ``key`` at ``attempt``."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return stable_fraction(self.seed, kind, key, attempt) < rate


def injected_worker_crash() -> None:
    """Kill the current process abruptly (no cleanup, like a segfault).

    Submitted *in place of* a real batch when the plan schedules a
    ``crash``: the pool breaks, and the supervisor must rebuild it and
    re-dispatch every in-flight batch.
    """
    os._exit(3)


def injected_worker_hang() -> None:
    """Wedge the current worker: stop beating, then sleep forever.

    Submitted *in place of* a real batch when the plan schedules a
    ``hang``.  The heartbeat must be silenced explicitly — the beat
    thread is a separate daemon thread that would otherwise keep
    beating right through this sleep, hiding the hang from the
    sentinel (a real SIGSTOP freezes every thread at once).
    """
    from ..obs.bus import suspend_heartbeat

    suspend_heartbeat()
    while True:  # pragma: no cover - only ever killed from outside
        time.sleep(3600)


def injected_task_error(key: str) -> None:
    """Raise inside the worker, as a buggy or flaky task would."""
    raise InjectedFault(f"injected task error for unit {key!r}")


def corrupt_file(path, seed: int = 0) -> Optional[int]:
    """Flip one byte of ``path`` in place; returns the offset flipped.

    The offset is chosen deterministically from ``seed`` and the file
    size.  Empty files are left alone (returns None).
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        return None
    offset = int(stable_fraction(seed, "corrupt-offset", size) * size)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ 0xFF]))
    return offset
