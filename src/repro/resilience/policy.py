"""Retry policy, deterministic backoff, and recovery accounting.

The resilience layer never consults a wall clock to make a decision:
backoff delays (including jitter) are pure functions of a seed, the
work-unit key and the attempt number, so two runs that hit the same
fault schedule recover through exactly the same sequence of actions.
The only wall-clock interaction is *sleeping* for the computed delay,
which cannot influence results — the dispatch layer replays results in
submission order regardless of when they arrive.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan

__all__ = [
    "RecoveryStats",
    "ResilienceOptions",
    "RetryPolicy",
    "backoff_delay",
    "stable_fraction",
]


def stable_fraction(*parts) -> float:
    """Deterministic hash of ``parts`` mapped into ``[0, 1)``.

    The basis for every seeded decision in the layer (jitter, fault
    schedules): identical inputs give identical fractions on every
    platform and run, unlike anything derived from ``id()``, dict order
    or a clock.
    """
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Budget and pacing for supervised dispatch.

    ``timeout`` is the per-attempt deadline in seconds (None disables
    deadlines).  ``max_retries`` bounds *re-dispatches*; once exhausted
    the batch is executed serially in-process, so a poisoned batch
    degrades throughput but never correctness.  ``jitter`` spreads the
    exponential backoff by a deterministic ±fraction derived from
    ``seed`` and the work-unit key (never from a clock).
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0


def backoff_delay(policy: RetryPolicy, attempt: int, key: str = "") -> float:
    """Seconds to pause before retry number ``attempt`` (1-based).

    Exponential in the attempt number with deterministic jitter: the
    same (policy, attempt, key) always yields the same delay.
    """
    if attempt <= 0 or policy.backoff_base <= 0:
        return 0.0
    delay = policy.backoff_base * policy.backoff_multiplier ** (attempt - 1)
    if policy.jitter > 0:
        swing = 2.0 * stable_fraction(policy.seed, key, attempt) - 1.0
        delay *= 1.0 + policy.jitter * swing
    return max(0.0, delay)


@dataclass
class RecoveryStats:
    """Counters proving which recovery paths executed during a run.

    Mutated by the dispatcher, the seed-index cache and the
    checkpointing assembly aligner; surfaced in CLI output and run
    reports so a chaos run can assert "the output is identical *and*
    the recovery machinery actually fired".
    """

    retries: int = 0
    timeouts: int = 0
    hangs: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    resumed_units: int = 0
    journaled_units: int = 0
    quarantined_entries: int = 0
    injected_faults: Dict[str, int] = field(default_factory=dict)

    def inject(self, kind: str) -> None:
        """Count one injected fault of ``kind``."""
        self.injected_faults[kind] = self.injected_faults.get(kind, 0) + 1

    @property
    def recovered(self) -> bool:
        """Whether any recovery path (not mere injection) executed."""
        return any(
            (
                self.retries,
                self.timeouts,
                self.hangs,
                self.pool_rebuilds,
                self.serial_fallbacks,
                self.resumed_units,
                self.quarantined_entries,
            )
        )

    def as_dict(self) -> Dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "hangs": self.hangs,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "resumed_units": self.resumed_units,
            "journaled_units": self.journaled_units,
            "quarantined_entries": self.quarantined_entries,
            "injected_faults": dict(self.injected_faults),
        }

    def merge(self, other: "RecoveryStats") -> None:
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.hangs += other.hangs
        self.pool_rebuilds += other.pool_rebuilds
        self.serial_fallbacks += other.serial_fallbacks
        self.resumed_units += other.resumed_units
        self.journaled_units += other.journaled_units
        self.quarantined_entries += other.quarantined_entries
        for kind, count in other.injected_faults.items():
            self.injected_faults[kind] = (
                self.injected_faults.get(kind, 0) + count
            )


@dataclass
class ResilienceOptions:
    """One bundle threaded from the CLI down to engine and cache.

    ``liveness`` optionally carries a heartbeat sentinel (duck-typed;
    concretely a :class:`~repro.obs.bus.HeartbeatMonitor`) exposing
    ``poll_interval``, ``overdue()`` and ``escalated()``.  When set,
    the dispatcher waits for results in slices and treats a silent
    worker past the deadline as a ``hang``, escalating through
    terminate-and-rebuild toward the serial fallback.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: Optional["FaultPlan"] = None
    stats: RecoveryStats = field(default_factory=RecoveryStats)
    liveness: Optional[object] = None
