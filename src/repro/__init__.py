"""Darwin-WGA reproduction: sensitive whole genome alignment.

A from-scratch Python implementation of the full Darwin-WGA system
(Turakhia, Goenka, Bejerano & Dally, HPCA 2019): D-SOFT seeding, gapped
filtering with banded Smith-Waterman, GACT-X tiled extension, a
LASTZ-like ungapped-filter baseline, axtChain-style chaining, and
cycle/area/power models of the FPGA and ASIC accelerators.

Quickstart::

    import numpy as np
    from repro import DarwinWGA, make_species_pair, build_chains

    pair = make_species_pair(30_000, 0.9, np.random.default_rng(0),
                             alignable_fraction=0.35)
    result = DarwinWGA().align(pair.target.genome, pair.query.genome)
    chains = build_chains(result.alignments)
"""

from .align import Alignment, Cigar, ScoringScheme, lastz_default
from .chain import Chain, GapCosts, build_chains
from .core import (
    DarwinWGA,
    DarwinWGAConfig,
    ExtensionParams,
    FilterParams,
    WGAResult,
    align_pair,
)
from .genome import Sequence, make_species_pair
from .hw import CostModel
from .lastz import LastzAligner, LastzConfig, align_pair_lastz

__version__ = "1.0.0"

__all__ = [
    "Alignment",
    "Cigar",
    "ScoringScheme",
    "lastz_default",
    "Chain",
    "GapCosts",
    "build_chains",
    "DarwinWGA",
    "DarwinWGAConfig",
    "ExtensionParams",
    "FilterParams",
    "WGAResult",
    "align_pair",
    "Sequence",
    "make_species_pair",
    "CostModel",
    "LastzAligner",
    "LastzConfig",
    "align_pair_lastz",
    "__version__",
]
