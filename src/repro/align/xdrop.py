"""X-drop extension alignment — the computation inside a GACT-X tile.

The kernel aligns a query tile against a target tile with Needleman-Wunsch
scoring (values may go negative; paper section III-D), anchored at the tile
origin: the path must start at cell (0, 0), with any leading gaps charged
against the origin boundary, and ends wherever the maximum score ``V_max``
is found.  Rows are pruned with the X-drop rule: a cell stays *live* while
its score is at least ``V_max - Y``; each row is computed from the first
live column of the previous row to just past its last live column plus the
maximal reach of a surviving horizontal gap run (``Y // gap_extend``).

The per-row ``(j_start, j_stop)`` windows are recorded: they are exactly
what the hardware's stripe sequencer computes, so the cycle model in
:mod:`repro.hw.gactx_array` replays them instead of re-running the DP.

Implementation notes (the row-at-a-time original is preserved as the
oracle ``xdrop_extend_reference`` in :mod:`repro.align._reference`):

* Because each row's window depends on the previous row's live set, the
  X-drop recurrence is row-sequential by construction; the speed comes
  from a *lane-lockstep* engine instead of an anti-diagonal sweep.  Every
  DP row of up to ``L`` concurrent tiles (the two extension directions of
  a GACT-X anchor run in lockstep) becomes one batch of vector ops over a
  ``(L, W)`` window slab, computed in the narrowest exact dtype
  (:func:`repro.align._dp.kernel_dtype`) on persistent, cache-resident
  workspace buffers.  ``H`` uses the prefix-scan identity from
  :mod:`repro.align._dp`.
* The row stores are *shifted*: ``v_store`` holds ``V - o`` and
  ``u_store`` holds ``U - e``, so the next row's gap candidate
  ``U(i,j) = max(V(i-1,j)-o, U(i-1,j)-e)`` is a single elementwise
  ``max`` of two stored rows — no subtractions in the hot loop — and
  the gap ``o``/``e`` charges are paid once, inside the store writes
  the recurrence needs anyway.  The diagonal term compensates with a
  ``+o``-baked substitution matrix: ``(V-o) + (W+o) = V + W``.
* Traceback stores no per-cell direction nibble.  The forward pass
  keeps ``V``, ``U`` (shifted, above) and the true ``H`` row; every
  traceback decision is then a constant-time value comparison —
  ``H == V`` for a horizontal move, ``H(i,j) == H(i,j-1) - e`` for its
  gap-extension flag (provably equal to the prefix-scan test
  ``running[j-1] == running[j-2]``), ``V == U`` for a vertical move and
  ``U(i,j) == U(i-1,j) - e`` for its flag; diagonal is the only
  possibility left.  The walk reproduces the reference pointer walk
  exactly without ever materialising pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from . import _dp
from .cigar import Cigar
from .scoring import ScoringScheme


@dataclass(frozen=True)
class XDropExtension:
    """Result of one X-drop tile extension.

    ``max_i``/``max_j`` locate ``V_max`` (1-based; 0,0 when nothing scored
    above zero).  ``cigar`` spans from the tile origin to the maximum and
    is ``None`` when traceback was not requested.  ``row_windows`` holds
    the inclusive computed column range per row; ``cells`` is their total
    size (the traceback-memory and cycle cost unit).
    """

    score: int
    max_i: int
    max_j: int
    cigar: Optional[Cigar]
    cells: int
    row_windows: Tuple[Tuple[int, int], ...]

    @property
    def rows_computed(self) -> int:
        return len(self.row_windows)


def _empty_extension(with_traceback: bool) -> XDropExtension:
    return XDropExtension(
        score=0,
        max_i=0,
        max_j=0,
        cigar=Cigar(()) if with_traceback else None,
        cells=0,
        row_windows=(),
    )


class _Lane:
    """Per-tile DP state of one lockstep lane."""

    __slots__ = (
        "stream",
        "slot",
        "target",
        "query",
        "q_codes",
        "m",
        "n",
        "i",
        "lo",
        "hi",
        "boundary",
        "best",
        "best_i",
        "best_j",
        "sub_cols",
        "v_store",
        "u_store",
        "h_store",
        "row_windows",
        "cells",
    )


class _LaneEngine:
    """Runs tile streams through the lockstep X-drop row pipeline.

    A *stream* yields tiles one at a time (``next_tile``) and receives
    each tile's :class:`XDropExtension` back (``consume``) before being
    asked for the next — which lets GACT-X's tile chaining decide the
    next tile from the previous tile's maximum while the other stream's
    lane keeps advancing.  Lanes at heterogeneous rows/windows are
    batched per row into shared ``(L, W)`` buffers.
    """

    def __init__(
        self,
        scoring: ScoringScheme,
        ydrop: int,
        max_tile_len: int,
        with_traceback: bool,
    ) -> None:
        self.scoring = scoring
        self.ydrop = ydrop
        self.with_traceback = with_traceback
        self.gap_slack = ydrop // max(1, scoring.gap_extend) + 1
        self.dtype = _dp.kernel_dtype(scoring, max_tile_len, slack=ydrop)
        self.negf = _dp.neg_inf(self.dtype)
        self.o = int(scoring.gap_open)
        self.e = int(scoring.gap_extend)
        self.matrix = _dp.matrix_for(scoring, self.dtype)
        # +o baked in: diagonal candidates read shifted V rows (V - o),
        # so (V - o) + (W + o) restores the true V + W.
        self.matrix_o = self.matrix + self.dtype.type(self.o)
        self.ke, self.oke = _dp.gap_ladders(
            scoring, max_tile_len + 2, self.dtype
        )
        self.max_tile_len = max_tile_len
        self.ws = _dp.acquire_workspace()
        self._next_slot = 0
        self._free_slots: List[int] = []

    def close(self) -> None:
        _dp.release_workspace(self.ws)

    # -- lane lifecycle ---------------------------------------------------

    def _alloc_slot(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _admit(self, stream, lanes: List[_Lane], slot: int) -> None:
        """Pull tiles from ``stream`` until one starts a lane (or none)."""
        while True:
            tile = stream.next_tile()
            if tile is None:
                self._free_slots.append(slot)
                return
            t_tile, q_tile = tile
            if len(t_tile) == 0 or len(q_tile) == 0:
                stream.consume(_empty_extension(self.with_traceback))
                continue
            lane = _Lane()
            lane.stream = stream
            lane.slot = slot
            self._start_tile(lane, t_tile, q_tile)
            lanes.append(lane)
            return

    def _start_tile(
        self, lane: _Lane, target: Sequence, query: Sequence
    ) -> None:
        m = len(target)
        n = len(query)
        lane.target = target
        lane.query = query
        lane.q_codes = query.codes
        lane.m = m
        lane.n = n
        lane.sub_cols = self.matrix_o[:, target.codes]
        key = str(lane.slot)
        lane.v_store = self.ws.array("xv" + key, (n + 1, m + 2), self.dtype)
        lane.u_store = self.ws.array("xu" + key, (n + 1, m + 2), self.dtype)
        if self.with_traceback:
            lane.h_store = self.ws.array(
                "xh" + key, (n + 1, m + 2), self.dtype
            )
        else:
            lane.h_store = None
        boundary = _dp.boundary_scores(m, self.scoring, free=False)
        lane.v_store[0, : m + 1] = boundary - self.o
        lane.u_store[0, : m + 1] = self.negf
        # Row 0 live set under the initial V_max = 0.
        live = np.flatnonzero(boundary >= -self.ydrop)
        last0 = int(live[-1]) if live.size else 0
        lane.i = 1
        lane.lo = 1
        lane.hi = min(m, last0 + 1 + self.gap_slack)
        lane.best = 0
        lane.best_i = 0
        lane.best_j = 0
        lane.row_windows = []
        lane.cells = 0

    def _finish_lane(self, lane: _Lane, lanes: List[_Lane]) -> None:
        best = lane.best
        cigar: Optional[Cigar] = None
        if self.with_traceback:
            cigar = self._walk(lane) if best > 0 else Cigar(())
        result = XDropExtension(
            score=best,
            max_i=lane.best_i if best > 0 else 0,
            max_j=lane.best_j if best > 0 else 0,
            cigar=cigar,
            cells=lane.cells,
            row_windows=tuple(lane.row_windows),
        )
        stream = lane.stream
        slot = lane.slot
        stream.consume(result)
        self._admit(stream, lanes, slot)

    # -- the row pipeline -------------------------------------------------

    def run(self, streams: Iterable) -> None:
        lanes: List[_Lane] = []
        for stream in streams:
            self._admit(stream, lanes, self._alloc_slot())
        if not lanes:
            return
        cap = len(lanes)
        wc = self.max_tile_len + 2
        ws = self.ws
        self.dg = ws.array("dg", (cap, wc), self.dtype)
        self.uu = ws.array("uu", (cap, wc), self.dtype)
        self.vb = ws.array("vb", (cap, wc), self.dtype)
        self.acc = ws.array("acc", (cap, wc), self.dtype)
        self.hh = ws.array("hh", (cap, wc), self.dtype)
        self.vv = ws.array("vv", (cap, wc), self.dtype)
        self.thr = ws.array("thr", (cap, 1), self.dtype)
        self.liveb = ws.array("liveb", (cap, wc), np.dtype(bool))
        while lanes:
            self._step(lanes)

    def _step(self, lanes: List[_Lane]) -> None:
        negf = self.negf
        o = self.o
        e = self.e
        n_lanes = len(lanes)
        width = 0
        for lane in lanes:
            w = lane.hi - lane.lo + 1
            if w > width:
                width = w

        # Per-lane gathers from the stored previous row into the batch
        # slabs.  The stores hold ``V - o`` and ``U - e``, so the whole
        # gap-candidate max ``U(i,j) = max(V(i-1,j)-o, U(i-1,j)-e)`` is
        # one elementwise max of two stored rows, and the diagonal term
        # uses the ``+o``-baked substitution volume; windows are
        # absolute column slices, so each gather is a contiguous 1-D
        # op.  Short lanes get a NEG-filled tail.
        for idx, lane in enumerate(lanes):
            lo = lane.lo
            hi = lane.hi
            row = lane.i
            w = hi - lo + 1
            vs_prev = lane.v_store[row - 1]
            np.maximum(
                vs_prev[lo : hi + 1],
                lane.u_store[row - 1][lo : hi + 1],
                out=self.uu[idx, :w],
            )
            np.add(
                vs_prev[lo - 1 : hi],
                lane.sub_cols[lane.q_codes[row - 1], lo - 1 : hi],
                out=self.dg[idx, :w],
            )
            if w < width:
                self.uu[idx, w:width] = negf
                self.dg[idx, w:width] = negf
            lane.boundary = (
                -self.scoring.gap_cost(row) if lo == 1 else negf
            )
            self.acc[idx, 0] = lane.boundary

        # One batched affine-gap row update for every lane (same op
        # sequence as the reference row_update, minus pointer assembly).
        uu = self.uu[:n_lanes, :width]
        dg = self.dg[:n_lanes, :width]
        vb = self.vb[:n_lanes, :width]
        hh = self.hh[:n_lanes, :width]
        vv = self.vv[:n_lanes, :width]
        acc = self.acc[:n_lanes, : width + 1]
        np.maximum(uu, dg, out=vb)
        np.add(vb, self.ke[1 : width + 1], out=acc[:, 1:])
        np.maximum.accumulate(acc, axis=1, out=acc)
        np.subtract(acc[:, :width], self.oke[:width], out=hh)
        np.maximum(vb, hh, out=vv)
        amax = vv.argmax(axis=1)

        # Best update must precede the live threshold (the row's own
        # maximum tightens it), so the threshold compare is a second
        # batched pass.
        for idx, lane in enumerate(lanes):
            j = int(amax[idx])
            row_max = int(vv[idx, j])
            if row_max > lane.best:
                lane.best = row_max
                lane.best_i = lane.i
                lane.best_j = lane.lo + j
            self.thr[idx, 0] = lane.best - self.ydrop

        live = self.liveb[:n_lanes, :width]
        np.greater_equal(vv, self.thr[:n_lanes], out=live)
        first = live.argmax(axis=1)
        last = width - 1 - live[:, ::-1].argmax(axis=1)

        finished: List[_Lane] = []
        for idx, lane in enumerate(lanes):
            lo = lane.lo
            hi = lane.hi
            row = lane.i
            w = hi - lo + 1
            lane.row_windows.append((lo, hi))
            lane.cells += w
            f = int(first[idx])
            if not live[idx, f]:
                # Whole row below threshold: the extension dies here; the
                # dead row still counts (window + cells) but stores
                # nothing, exactly like the reference's early break.
                finished.append(lane)
                continue
            vs = lane.v_store[row]
            us = lane.u_store[row]
            vs[lo - 1] = lane.boundary - o
            np.subtract(vv[idx, :w], o, out=vs[lo : hi + 1])
            np.subtract(uu[idx, :w], e, out=us[lo : hi + 1])
            if self.with_traceback:
                lane.h_store[row, lo : hi + 1] = hh[idx, :w]
            if row == lane.n:
                finished.append(lane)
                continue
            next_lo = lo + f
            next_hi = min(lane.m, lo + int(last[idx]) + 1 + self.gap_slack)
            if next_hi < next_lo:
                finished.append(lane)
                continue
            if next_hi > hi:
                # The next row reads past this row's written window where
                # the reference sees NEG_INF; seed that margin.
                vs[hi + 1 : next_hi + 1] = negf
                us[hi + 1 : next_hi + 1] = negf
            lane.lo = next_lo
            lane.hi = next_hi
            lane.i = row + 1

        for lane in finished:
            lanes.remove(lane)
            self._finish_lane(lane, lanes)

    # -- traceback --------------------------------------------------------

    def _walk(self, lane: _Lane) -> Cigar:
        """Reproduce the reference pointer walk from stored values.

        Directions are recovered per cell in O(1) from the stored
        (shifted) ``V``/``U`` rows and the true ``H`` rows: ``H == V``
        says "V came from H" (the tie priority puts horizontal first);
        otherwise ``V == U`` means a vertical move (``V == V0``
        whenever the H test fails, and ``V0`` is ``max(U, diag)``);
        diagonal is the only remaining case.  Gap-run extension flags
        are ``H(i,j) == H(i,j-1) - e`` (equal to the forward pass's
        prefix-scan test ``running[j-1] == running[j-2]``, since
        ``H[c] = running[c-1] - o - (c-1)e``) and
        ``U(i,j) == U(i-1,j) - e``; the shifted stores preserve both
        equalities unchanged, and ``V == H`` / ``V == U`` just pick up
        a constant ``o``/``o - e`` correction.
        """
        i = lane.best_i
        j = lane.best_j
        windows = lane.row_windows
        vs = lane.v_store
        us = lane.u_store
        hs = lane.h_store
        t_codes = lane.target.codes
        q_codes = lane.q_codes
        o = self.o
        e = self.e
        eo = e - o
        ops: List[str] = []
        state = "V"
        while i > 0 and j > 0:
            lo, hi = windows[i - 1]
            inside = lo <= j <= hi
            if state == "V":
                if not inside:
                    break
                if int(hs[i, j]) == int(vs[i, j]) + o:
                    state = "H"
                elif int(vs[i, j]) == int(us[i, j]) + eo:
                    state = "U"
                else:
                    same = (
                        t_codes[j - 1] == q_codes[i - 1]
                        and t_codes[j - 1] < 4
                    )
                    ops.append("=" if same else "X")
                    i -= 1
                    j -= 1
            elif state == "H":
                ops.append("D")
                extend = (
                    inside
                    and j > lo
                    and int(hs[i, j]) == int(hs[i, j - 1]) - e
                )
                state = "H" if extend else "V"
                j -= 1
            else:  # state == "U"
                ops.append("I")
                extend = inside and int(us[i, j]) == int(us[i - 1, j]) - e
                state = "U" if extend else "V"
                i -= 1
        # Extension mode: pad with gap columns back to the tile origin.
        ops.extend("D" * j)
        ops.extend("I" * i)
        return Cigar.from_ops(reversed(ops))


def run_tile_streams(
    streams: Iterable,
    scoring: ScoringScheme,
    ydrop: int,
    max_tile_len: int,
    with_traceback: bool = True,
) -> None:
    """Drive tile streams through one shared lockstep engine.

    Each stream must provide ``next_tile() -> (target, query) | None``
    and ``consume(XDropExtension)``; tiles longer than ``max_tile_len``
    are not allowed (the engine sizes its batch buffers from it).
    GACT-X uses this to run an anchor's left and right extensions in
    lockstep, halving the per-row Python overhead.
    """
    if ydrop < 0:
        raise ValueError("ydrop must be non-negative")
    engine = _LaneEngine(scoring, ydrop, max_tile_len, with_traceback)
    try:
        engine.run(streams)
    finally:
        engine.close()


class _SingleTile:
    """A one-tile stream backing the plain ``xdrop_extend`` API."""

    def __init__(self, target: Sequence, query: Sequence) -> None:
        self._tile: Optional[Tuple[Sequence, Sequence]] = (target, query)
        self.result: Optional[XDropExtension] = None

    def next_tile(self) -> Optional[Tuple[Sequence, Sequence]]:
        tile = self._tile
        self._tile = None
        return tile

    def consume(self, extension: XDropExtension) -> None:
        self.result = extension


def xdrop_extend(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    ydrop: int,
    with_traceback: bool = True,
) -> XDropExtension:
    """Extend from the tile origin under the X-drop rule.

    Args:
        target: target tile (columns).
        query: query tile (rows).
        scoring: substitution matrix and affine gaps.
        ydrop: the ``Y`` parameter; cells below ``V_max - Y`` die.
        with_traceback: record traceback state and reconstruct the path.

    Returns:
        An :class:`XDropExtension`; its CIGAR starts exactly at the tile
        origin (leading gaps included, paper section III-D).
    """
    if ydrop < 0:
        raise ValueError("ydrop must be non-negative")
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return _empty_extension(with_traceback)
    stream = _SingleTile(target, query)
    run_tile_streams((stream,), scoring, ydrop, max(m, n), with_traceback)
    return stream.result
