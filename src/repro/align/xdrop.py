"""X-drop extension alignment — the computation inside a GACT-X tile.

The kernel aligns a query tile against a target tile with Needleman-Wunsch
scoring (values may go negative; paper section III-D), anchored at the tile
origin: the path must start at cell (0, 0), with any leading gaps charged
against the origin boundary, and ends wherever the maximum score ``V_max``
is found.  Rows are pruned with the X-drop rule: a cell stays *live* while
its score is at least ``V_max - Y``; each row is computed from the first
live column of the previous row to just past its last live column plus the
maximal reach of a surviving horizontal gap run (``Y // gap_extend``).

The per-row ``(j_start, j_stop)`` windows are recorded: they are exactly
what the hardware's stripe sequencer computes, so the cycle model in
:mod:`repro.hw.gactx_array` replays them instead of re-running the DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from . import _dp
from .cigar import Cigar
from .scoring import ScoringScheme


@dataclass(frozen=True)
class XDropExtension:
    """Result of one X-drop tile extension.

    ``max_i``/``max_j`` locate ``V_max`` (1-based; 0,0 when nothing scored
    above zero).  ``cigar`` spans from the tile origin to the maximum and
    is ``None`` when traceback was not requested.  ``row_windows`` holds
    the inclusive computed column range per row; ``cells`` is their total
    size (the traceback-memory and cycle cost unit).
    """

    score: int
    max_i: int
    max_j: int
    cigar: Optional[Cigar]
    cells: int
    row_windows: Tuple[Tuple[int, int], ...]

    @property
    def rows_computed(self) -> int:
        return len(self.row_windows)


def xdrop_extend(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    ydrop: int,
    with_traceback: bool = True,
) -> XDropExtension:
    """Extend from the tile origin under the X-drop rule.

    Args:
        target: target tile (columns).
        query: query tile (rows).
        scoring: substitution matrix and affine gaps.
        ydrop: the ``Y`` parameter; cells below ``V_max - Y`` die.
        with_traceback: record pointers and reconstruct the path.

    Returns:
        An :class:`XDropExtension`; its CIGAR starts exactly at the tile
        origin (leading gaps included, paper section III-D).
    """
    if ydrop < 0:
        raise ValueError("ydrop must be non-negative")
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return XDropExtension(
            score=0,
            max_i=0,
            max_j=0,
            cigar=Cigar(()) if with_traceback else None,
            cells=0,
            row_windows=(),
        )

    gap_slack = ydrop // max(1, scoring.gap_extend) + 1
    sub_columns = _dp.substitution_columns(target, scoring)

    v_full = _dp.boundary_scores(m, scoring, free=False)
    u_full = np.full(m + 1, _dp.NEG_INF)
    best = np.int64(0)
    best_i, best_j = 0, 0

    # Row 0 live set under the initial V_max = 0.
    live = np.flatnonzero(v_full >= -ydrop)
    prev_first_live = 1
    prev_last_live = int(live.max()) if live.size else 0

    pointer_rows: List[np.ndarray] = []
    row_offsets: List[int] = []
    row_windows: List[Tuple[int, int]] = []
    cells = 0

    for i in range(1, n + 1):
        lo = max(1, prev_first_live)
        hi = min(m, prev_last_live + 1 + gap_slack)
        if hi < lo:
            break
        subs = sub_columns[query.codes[i - 1], lo - 1 : hi]
        left_boundary = (
            np.int64(-scoring.gap_cost(i)) if lo == 1 else _dp.NEG_INF
        )
        v_row, u_row, _, pointers = _dp.row_update(
            v_full[lo - 1 : hi + 1],
            u_full[lo - 1 : hi + 1],
            subs,
            scoring,
            left_boundary,
            local=False,
        )

        row_max_idx = int(np.argmax(v_row[1:]))
        row_max = v_row[1 + row_max_idx]
        if row_max > best:
            best = row_max
            best_i = i
            best_j = lo + row_max_idx

        threshold = best - ydrop
        live_rel = np.flatnonzero(v_row[1:] >= threshold)
        # Trim the stored window to the live extent so that traceback
        # memory accounting matches what the hardware would keep.
        if live_rel.size == 0:
            row_windows.append((lo, hi))
            cells += hi - lo + 1
            break
        first_live = lo + int(live_rel[0])
        last_live = lo + int(live_rel[-1])

        v_full.fill(_dp.NEG_INF)
        u_full.fill(_dp.NEG_INF)
        v_full[lo - 1 : hi + 1] = v_row
        u_full[lo - 1 : hi + 1] = u_row
        if lo == 1:
            v_full[0] = left_boundary

        if with_traceback:
            pointer_rows.append(pointers[1:])
            row_offsets.append(lo)
        row_windows.append((lo, hi))
        cells += hi - lo + 1
        prev_first_live = first_live
        prev_last_live = last_live

    cigar: Optional[Cigar] = None
    if with_traceback:
        if best > 0:
            cigar, end_i, end_j = _traceback_from(
                pointer_rows,
                row_offsets,
                target,
                query,
                best_i,
                best_j,
            )
        else:
            cigar = Cigar(())
    return XDropExtension(
        score=int(best),
        max_i=best_i if best > 0 else 0,
        max_j=best_j if best > 0 else 0,
        cigar=cigar,
        cells=cells,
        row_windows=tuple(row_windows),
    )


def _traceback_from(
    pointer_rows: List[np.ndarray],
    row_offsets: List[int],
    target: Sequence,
    query: Sequence,
    start_i: int,
    start_j: int,
) -> Tuple[Cigar, int, int]:
    """Trace from the maximum back to the tile origin (padding gaps)."""
    return (
        _dp.traceback(
            pointer_rows,
            row_offsets,
            target,
            query,
            start_i,
            start_j,
            pad_to_origin=True,
        )[0],
        0,
        0,
    )
