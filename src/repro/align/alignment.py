"""Alignment result objects shared across every pipeline stage."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..genome.sequence import Sequence
from .cigar import Cigar


@dataclass(frozen=True)
class Alignment:
    """A local alignment between a target and a query genome region.

    Coordinates are half-open ``[start, end)`` on the forward strand of
    each sequence.  ``strand`` is the query strand (+1/-1); for ``-1`` the
    query coordinates refer to the reverse-complemented query, matching
    MAF conventions.
    """

    target_name: str
    query_name: str
    target_start: int
    target_end: int
    query_start: int
    query_end: int
    score: int
    cigar: Cigar
    strand: int = 1

    def __post_init__(self) -> None:
        if self.strand not in (1, -1):
            raise ValueError("strand must be +1 or -1")
        if self.target_end - self.target_start != self.cigar.target_span:
            raise ValueError(
                "target span does not match CIGAR "
                f"({self.target_end - self.target_start} vs "
                f"{self.cigar.target_span})"
            )
        if self.query_end - self.query_start != self.cigar.query_span:
            raise ValueError(
                "query span does not match CIGAR "
                f"({self.query_end - self.query_start} vs "
                f"{self.cigar.query_span})"
            )

    @property
    def target_span(self) -> int:
        return self.target_end - self.target_start

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def matches(self) -> int:
        """Number of exactly matching base pairs."""
        return self.cigar.matches

    def identity(self) -> float:
        return self.cigar.identity()

    def with_score(self, score: int) -> "Alignment":
        return replace(self, score=score)

    def verify(self, target: Sequence, query: Sequence) -> None:
        """Check the CIGAR against the actual sequences.

        Walks the path and asserts every ``=`` column matches and every
        ``X`` column differs.  Raises ``ValueError`` on any inconsistency;
        used by tests and debug assertions, not in hot paths.
        """
        t = target.codes
        q = query.reverse_complement().codes if self.strand == -1 else query.codes
        ti, qi = self.target_start, self.query_start
        for op, length in self.cigar:
            if op in ("=", "X"):
                for _ in range(length):
                    same = t[ti] == q[qi] and t[ti] < 4
                    if op == "=" and not same:
                        raise ValueError(
                            f"CIGAR claims match at target {ti} query {qi}"
                        )
                    if op == "X" and same:
                        raise ValueError(
                            f"CIGAR claims mismatch at target {ti} query {qi}"
                        )
                    ti += 1
                    qi += 1
            elif op == "D":
                ti += length
            else:  # "I"
                qi += length
        if ti != self.target_end or qi != self.query_end:
            raise ValueError("CIGAR walk does not reach alignment end")


@dataclass(frozen=True)
class AnchorHit:
    """A filtered seed hit promoted to an extension anchor.

    ``filter_score`` is the banded-Smith-Waterman (or ungapped) filter
    score that promoted the hit; ``target_pos``/``query_pos`` locate the
    maximum-scoring cell ``x_max`` used as the extension starting point.
    """

    target_pos: int
    query_pos: int
    filter_score: int
    strand: int = 1

    @property
    def diagonal(self) -> int:
        return self.target_pos - self.query_pos
