"""Scoring schemes for DNA alignment.

Darwin-WGA and LASTZ share their default scoring (paper Table IIa): an
asymmetric-looking 4x4 substitution matrix that rewards matches with 91/100,
penalises transitions mildly (-25) and transversions heavily (-90/-100),
plus affine gap penalties with the recurrence of the paper's equations 1-3:
a gap of length ``L`` costs ``gap_open + (L - 1) * gap_extend``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..genome import alphabet


def _expand_matrix(matrix4: np.ndarray, ambiguous_score: int) -> np.ndarray:
    """Extend a 4x4 nucleotide matrix with an N row/column."""
    full = np.full(
        (alphabet.ALPHABET_SIZE, alphabet.ALPHABET_SIZE),
        ambiguous_score,
        dtype=np.int32,
    )
    full[:4, :4] = matrix4
    return full


@dataclass(frozen=True)
class ScoringScheme:
    """Substitution matrix plus affine gap penalties.

    ``matrix`` is a 5x5 ``int32`` array indexed by base codes (A, C, G, T,
    N); gap penalties are stored as positive magnitudes and subtracted in
    the recurrences, so ``gap_open=430, gap_extend=30`` reproduces the
    paper's Table IIa exactly.
    """

    matrix: np.ndarray
    gap_open: int
    gap_extend: int

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.int32)
        if matrix.shape == (4, 4):
            matrix = _expand_matrix(matrix, ambiguous_score=-100)
        if matrix.shape != (
            alphabet.ALPHABET_SIZE,
            alphabet.ALPHABET_SIZE,
        ):
            raise ValueError("substitution matrix must be 4x4 or 5x5")
        object.__setattr__(self, "matrix", matrix)
        if self.gap_open < 0 or self.gap_extend < 0:
            raise ValueError("gap penalties are positive magnitudes")
        if self.gap_open < self.gap_extend:
            raise ValueError(
                "affine scoring requires gap_open >= gap_extend"
            )

    def score(self, a: int, b: int) -> int:
        """Substitution score for aligning base codes ``a`` and ``b``."""
        return int(self.matrix[a, b])

    def gap_cost(self, length: int) -> int:
        """Positive cost of a gap of ``length`` bases."""
        if length <= 0:
            return 0
        return self.gap_open + (length - 1) * self.gap_extend

    def max_match_score(self) -> int:
        """The largest score on the matrix diagonal."""
        return int(np.max(np.diag(self.matrix[:4, :4])))

    @property
    def matrix64(self) -> np.ndarray:
        """The substitution matrix widened to ``int64``, memoised.

        Every DP kernel accumulates in ``int64``; widening the matrix once
        here (instead of ``astype`` per call or per row) keeps the hot
        loops allocation free.  The array is read-only so the cache can be
        shared safely.
        """
        cached = self.__dict__.get("_matrix64")
        if cached is None:
            cached = self.matrix.astype(np.int64)
            cached.setflags(write=False)
            self.__dict__["_matrix64"] = cached
        return cached

    def row_scores(self, base: int, codes: np.ndarray) -> np.ndarray:
        """Vector of substitution scores of ``base`` against ``codes``."""
        return self.matrix64[base, codes]

    def substitution_rows(self, codes: np.ndarray) -> np.ndarray:
        """Per-base substitution rows ``W[codes[i], :]`` as ``int64``.

        Precomputing the gather once per sequence lets row-wise DP loops
        slice ``rows[i][window]`` instead of re-indexing the matrix for
        every row (the per-cell lookup the hardware folds into its PE
        array).
        """
        return self.matrix64[codes]
