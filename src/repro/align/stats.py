"""Alignment score statistics: Karlin-Altschul parameters and E-values.

"High-scoring alignments are assumed to have biological significance"
(paper section II) — the quantitative form of that statement is
Karlin-Altschul theory: ungapped local alignment scores follow an extreme
value distribution with parameters ``lambda`` (the unique positive root
of ``sum_ij p_i p_j exp(lambda * s_ij) = 1``) and ``K``; the expected
number of alignments scoring at least S in an ``m x n`` comparison is
``E = K * m * n * exp(-lambda * S)``.  These routines compute ``lambda``
for a scoring scheme and background composition, estimate ``K``
empirically, and convert scores to E-values/bit scores — which is also
how the filter thresholds ``H_f``/``H_e`` can be interpreted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence as TypingSequence

import numpy as np

from ..genome.sequence import Sequence
from .scoring import ScoringScheme

#: Uniform background nucleotide composition.
UNIFORM_BACKGROUND = np.full(4, 0.25)


def expected_score(
    scoring: ScoringScheme, background: np.ndarray = None
) -> float:
    """Expected per-column substitution score under the background.

    Must be negative for local alignment statistics to exist.
    """
    p = UNIFORM_BACKGROUND if background is None else np.asarray(background)
    matrix = scoring.matrix[:4, :4].astype(float)
    return float(p @ matrix @ p)


def karlin_lambda(
    scoring: ScoringScheme,
    background: np.ndarray = None,
    tolerance: float = 1e-9,
) -> float:
    """The Karlin-Altschul ``lambda`` for an (ungapped) scoring scheme.

    Solves ``sum_ij p_i p_j exp(lambda s_ij) = 1`` by bisection.  Raises
    ``ValueError`` when the expected score is non-negative (no unique
    positive root exists).
    """
    p = UNIFORM_BACKGROUND if background is None else np.asarray(background)
    if not np.isclose(p.sum(), 1.0):
        raise ValueError("background must sum to 1")
    matrix = scoring.matrix[:4, :4].astype(float)
    if expected_score(scoring, p) >= 0:
        raise ValueError(
            "expected score must be negative for local statistics"
        )
    if matrix.max() <= 0:
        raise ValueError("matrix needs at least one positive score")
    weights = np.outer(p, p)

    def phi(lam: float) -> float:
        return float((weights * np.exp(lam * matrix)).sum()) - 1.0

    low, high = 0.0, 1.0
    while phi(high) < 0:
        high *= 2.0
        if high > 1e3:
            raise ValueError("failed to bracket lambda")
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if phi(mid) < 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def bit_score(raw_score: float, lam: float, k: float) -> float:
    """Normalised (bit) score: ``(lambda*S - ln K) / ln 2``."""
    return (lam * raw_score - math.log(k)) / math.log(2.0)


def evalue(
    raw_score: float, m: int, n: int, lam: float, k: float
) -> float:
    """Expected alignments scoring >= ``raw_score`` in an m x n search."""
    return k * m * n * math.exp(-lam * raw_score)


def score_for_evalue(
    target_evalue: float, m: int, n: int, lam: float, k: float
) -> float:
    """The raw score whose E-value equals ``target_evalue``."""
    if target_evalue <= 0 or m <= 0 or n <= 0:
        raise ValueError("evalue and search space must be positive")
    return math.log(k * m * n / target_evalue) / lam


def estimate_k(
    scoring: ScoringScheme,
    rng: np.random.Generator,
    sample_length: int = 400,
    samples: int = 60,
    background: np.ndarray = None,
) -> float:
    """Empirical ``K`` from random-sequence score samples.

    Fits the EVD location: for max scores ``S`` of random ``L x L``
    comparisons, ``E[S] ~ (ln(K L^2) + gamma) / lambda``; inverting the
    mean gives ``K``.  Coarse but adequate for threshold interpretation.
    """
    from .smith_waterman import best_score

    p = UNIFORM_BACKGROUND if background is None else np.asarray(background)
    lam = karlin_lambda(scoring, p)
    scores = []
    for _ in range(samples):
        a = Sequence(
            rng.choice(4, size=sample_length, p=p).astype(np.uint8)
        )
        b = Sequence(
            rng.choice(4, size=sample_length, p=p).astype(np.uint8)
        )
        scores.append(best_score(a, b, scoring))
    mean_score = float(np.mean(scores))
    gamma = 0.5772156649015329
    # E[S] = (ln(K m n) + gamma) / lambda  =>  K = exp(lambda E[S] - gamma)/(m n)
    k = math.exp(lam * mean_score - gamma) / (sample_length**2)
    return max(k, 1e-12)


@dataclass(frozen=True)
class ScoreStatistics:
    """Bundle of Karlin-Altschul parameters for one scoring scheme."""

    lam: float
    k: float

    def bit_score(self, raw_score: float) -> float:
        return bit_score(raw_score, self.lam, self.k)

    def evalue(self, raw_score: float, m: int, n: int) -> float:
        return evalue(raw_score, m, n, self.lam, self.k)

    def significance_threshold(
        self, m: int, n: int, target_evalue: float = 1e-6
    ) -> float:
        return score_for_evalue(target_evalue, m, n, self.lam, self.k)


def gap_length_distribution(
    alignments: TypingSequence,
) -> np.ndarray:
    """All gap-run lengths across a set of alignments (Figure 2's dual:
    the indel size spectrum)."""
    lengths = []
    for alignment in alignments:
        for _, length in alignment.cigar.gap_runs():
            lengths.append(length)
    return np.asarray(lengths, dtype=np.int64)
