"""Frozen row-at-a-time DP kernels — the differential-testing oracles.

These are the original, row-sequential implementations of every DP
kernel in :mod:`repro.align`, preserved verbatim when the production
kernels were rewritten as wavefront sweeps.  They exist so that
``tests/align/test_differential.py`` can fuzz the fast kernels against
an executable specification: for any input, the wavefront kernels must
produce *identical* scores, CIGARs, maxima, cell counts and per-row
windows.

**Freeze policy** (see CONTRIBUTING.md): this module only changes for
bugfixes, and any bugfix must be mirrored in the production kernel in
the same commit so the two implementations never diverge on purpose.
It is deliberately self-contained — it shares only leaf data types
(:class:`Sequence`, :class:`Cigar`, :class:`ScoringScheme` and the
result dataclasses) with the live kernels, never DP machinery.

The module is exempt from the KER001/KER002 kernel-hygiene lint rules:
its whole purpose is to stay the readable, loop-shaped specification
the fast kernels are measured against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from .alignment import Alignment
from .banded_sw import BswResult
from .cigar import Cigar
from .scoring import ScoringScheme
from .xdrop import XDropExtension

#: Effectively minus infinity, with headroom so ``NEG_INF + k*e`` cannot
#: overflow or accidentally win a maximum.
NEG_INF = np.int64(-(2**42))

#: Pointer encoding (low two bits): how V was obtained.
DIR_NONE = 0  # local zero / boundary: traceback stops
DIR_DIAG = 1
DIR_HORIZ = 2  # from H: gap consuming target ('D')
DIR_VERT = 3  # from U: gap consuming query ('I')

#: Pointer flags (high bits): whether the gap state extends a prior gap.
FLAG_H_EXTEND = 4
FLAG_U_EXTEND = 8

_DIR_MASK = 3


def substitution_columns(
    target: Sequence, scoring: ScoringScheme
) -> np.ndarray:
    """Precomputed substitution rows against a fixed target, ``int64``."""
    columns = scoring.matrix64[:, target.codes]
    columns.setflags(write=False)
    return columns


def boundary_scores(
    length: int, scoring: ScoringScheme, free: bool
) -> np.ndarray:
    """V values along a DP boundary (row 0 or column 0), index 0..length.

    ``free=True`` (local alignment) gives zeros; otherwise position ``k``
    costs an affine gap of length ``k`` from the origin.
    """
    values = np.zeros(length + 1, dtype=np.int64)
    if not free and length > 0:
        k = np.arange(1, length + 1, dtype=np.int64)
        values[1:] = -(scoring.gap_open + (k - 1) * scoring.gap_extend)
    return values


def row_update(
    v_prev: np.ndarray,
    u_prev: np.ndarray,
    substitution_row: np.ndarray,
    scoring: ScoringScheme,
    v_boundary: np.int64,
    local: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compute one DP row (the original shared kernel, kept verbatim).

    Args:
        v_prev: V of the previous row, length ``m + 1`` (index 0 is the
            left boundary of that row).
        u_prev: U of the previous row, same shape.
        substitution_row: substitution scores ``W(q_i, r_j)`` for
            ``j = 1..m`` (length ``m``).
        scoring: gap penalties.
        v_boundary: V value of this row's column-0 boundary cell.
        local: clamp scores at zero (Smith-Waterman) when True.

    Returns:
        ``(v_row, u_row, h_row, pointers)`` — value arrays of length
        ``m + 1`` and a ``uint8`` pointer array of the same length
        (index 0 is always ``DIR_NONE``).
    """
    o = np.int64(scoring.gap_open)
    e = np.int64(scoring.gap_extend)
    m = substitution_row.size

    u_row = np.empty(m + 1, dtype=np.int64)
    u_row[0] = NEG_INF
    np.maximum(v_prev[1:] - o, u_prev[1:] - e, out=u_row[1:])
    u_extends = u_row[1:] == u_prev[1:] - e

    diag = v_prev[:-1] + substitution_row
    v0 = np.empty(m + 1, dtype=np.int64)
    v0[0] = v_boundary
    np.maximum(u_row[1:], diag, out=v0[1:])
    from_vert = v0[1:] == u_row[1:]
    if local:
        np.maximum(v0[1:], 0, out=v0[1:])

    # Prefix-scan computation of H over the row: because ``o >= e``,
    # H(i,j) = max_{k<j} (V'(i,k) + k*e) - o - (j-1)*e.
    k = np.arange(m + 1, dtype=np.int64)
    running = np.maximum.accumulate(v0 + k * e)
    h_row = np.empty(m + 1, dtype=np.int64)
    h_row[0] = NEG_INF
    h_row[1:] = running[:-1] - o - (k[1:] - 1) * e
    h_extends = np.zeros(m + 1, dtype=bool)
    if m > 1:
        h_extends[2:] = h_row[2:] == h_row[1:-1] - e

    v_row = np.maximum(v0, h_row)
    v_row[0] = v_boundary
    if local:
        np.maximum(v_row, 0, out=v_row)

    pointers = np.zeros(m + 1, dtype=np.uint8)
    # Priority on ties: horizontal gap, then vertical gap, then diagonal —
    # any consistent order yields a valid optimal path.
    from_horiz = v_row[1:] == h_row[1:]
    took_vert = from_vert & ~from_horiz
    took_diag = ~from_horiz & ~took_vert & (v_row[1:] == diag)
    dirs = np.zeros(m, dtype=np.uint8)
    dirs[took_diag] = DIR_DIAG
    dirs[from_horiz] = DIR_HORIZ
    dirs[took_vert] = DIR_VERT
    if local:
        dirs[v_row[1:] == 0] = DIR_NONE
    pointers[1:] = (
        dirs
        | (h_extends[1:].astype(np.uint8) * FLAG_H_EXTEND)
        | (u_extends.astype(np.uint8) * FLAG_U_EXTEND)
    )
    return v_row, u_row, h_row, pointers


def traceback(
    pointers: List[np.ndarray],
    row_offsets: List[int],
    target: Sequence,
    query: Sequence,
    start_i: int,
    start_j: int,
    pad_to_origin: bool,
) -> Tuple[Cigar, int, int]:
    """Walk pointer rows from cell ``(start_i, start_j)`` back to a stop.

    Args:
        pointers: per-row pointer arrays; ``pointers[i - 1]`` covers row
            ``i`` and its index 0 corresponds to column ``row_offsets[i-1]``.
        row_offsets: the column index of pointer slot 0 for each row.
        target, query: the tile sequences (0-indexed; cell ``(i, j)``
            aligns ``query[i-1]`` with ``target[j-1]``).
        start_i, start_j: 1-based cell to start from.
        pad_to_origin: extension mode — when the walk reaches row 0 or
            column 0 away from the origin, pad with gap columns so the
            path starts exactly at ``(0, 0)``.

    Returns:
        ``(cigar, end_i, end_j)`` where the CIGAR reads forward (from the
        path start to ``(start_i, start_j)``) and ``(end_i, end_j)`` is the
        1-based cell *after* which the path begins (``(0, 0)`` when padded).
    """
    ops: List[str] = []
    i, j = start_i, start_j
    state = "V"
    t_codes = target.codes
    q_codes = query.codes

    def pointer_at(row: int, col: int) -> int:
        base = row_offsets[row - 1]
        idx = col - base
        row_ptrs = pointers[row - 1]
        if idx < 0 or idx >= row_ptrs.size:
            return DIR_NONE
        return int(row_ptrs[idx])

    while i > 0 and j > 0:
        ptr = pointer_at(i, j)
        if state == "V":
            direction = ptr & _DIR_MASK
            if direction == DIR_NONE:
                break
            if direction == DIR_DIAG:
                same = t_codes[j - 1] == q_codes[i - 1] and t_codes[j - 1] < 4
                ops.append("=" if same else "X")
                i -= 1
                j -= 1
            elif direction == DIR_HORIZ:
                state = "H"
            else:
                state = "U"
        elif state == "H":
            ops.append("D")
            state = "H" if ptr & FLAG_H_EXTEND else "V"
            j -= 1
        else:  # state == "U"
            ops.append("I")
            state = "U" if ptr & FLAG_U_EXTEND else "V"
            i -= 1

    if pad_to_origin:
        ops.extend("D" * j)
        ops.extend("I" * i)
        i = 0
        j = 0

    return Cigar.from_ops(reversed(ops)), i, j


def xdrop_extend_reference(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    ydrop: int,
    with_traceback: bool = True,
) -> XDropExtension:
    """The original row-at-a-time X-drop tile extension (oracle)."""
    if ydrop < 0:
        raise ValueError("ydrop must be non-negative")
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return XDropExtension(
            score=0,
            max_i=0,
            max_j=0,
            cigar=Cigar(()) if with_traceback else None,
            cells=0,
            row_windows=(),
        )

    gap_slack = ydrop // max(1, scoring.gap_extend) + 1
    sub_columns = substitution_columns(target, scoring)

    v_full = boundary_scores(m, scoring, free=False)
    u_full = np.full(m + 1, NEG_INF)
    best = np.int64(0)
    best_i, best_j = 0, 0

    # Row 0 live set under the initial V_max = 0.
    live = np.flatnonzero(v_full >= -ydrop)
    prev_first_live = 1
    prev_last_live = int(live.max()) if live.size else 0

    pointer_rows: List[np.ndarray] = []
    row_offsets: List[int] = []
    row_windows: List[Tuple[int, int]] = []
    cells = 0

    for i in range(1, n + 1):
        lo = max(1, prev_first_live)
        hi = min(m, prev_last_live + 1 + gap_slack)
        if hi < lo:
            break
        subs = sub_columns[query.codes[i - 1], lo - 1 : hi]
        left_boundary = (
            np.int64(-scoring.gap_cost(i)) if lo == 1 else NEG_INF
        )
        v_row, u_row, _, pointers = row_update(
            v_full[lo - 1 : hi + 1],
            u_full[lo - 1 : hi + 1],
            subs,
            scoring,
            left_boundary,
            local=False,
        )

        row_max_idx = int(np.argmax(v_row[1:]))
        row_max = v_row[1 + row_max_idx]
        if row_max > best:
            best = row_max
            best_i = i
            best_j = lo + row_max_idx

        threshold = best - ydrop
        live_rel = np.flatnonzero(v_row[1:] >= threshold)
        # Trim the stored window to the live extent so that traceback
        # memory accounting matches what the hardware would keep.
        if live_rel.size == 0:
            row_windows.append((lo, hi))
            cells += hi - lo + 1
            break
        first_live = lo + int(live_rel[0])
        last_live = lo + int(live_rel[-1])

        v_full.fill(NEG_INF)
        u_full.fill(NEG_INF)
        v_full[lo - 1 : hi + 1] = v_row
        u_full[lo - 1 : hi + 1] = u_row
        if lo == 1:
            v_full[0] = left_boundary

        if with_traceback:
            pointer_rows.append(pointers[1:])
            row_offsets.append(lo)
        row_windows.append((lo, hi))
        cells += hi - lo + 1
        prev_first_live = first_live
        prev_last_live = last_live

    cigar: Optional[Cigar] = None
    if with_traceback:
        if best > 0:
            cigar, _, _ = traceback(
                pointer_rows,
                row_offsets,
                target,
                query,
                best_i,
                best_j,
                pad_to_origin=True,
            )
        else:
            cigar = Cigar(())
    return XDropExtension(
        score=int(best),
        max_i=best_i if best > 0 else 0,
        max_j=best_j if best > 0 else 0,
        cigar=cigar,
        cells=cells,
        row_windows=tuple(row_windows),
    )


def _band_cells(rows: int, cols: int, band: int) -> int:
    """Number of in-band cells of a ``rows x cols`` tile with band ``B``."""
    total = 0
    for i in range(1, rows + 1):
        lo = max(1, i - band)
        hi = min(cols, i + band)
        if hi >= lo:
            total += hi - lo + 1
    return total


def bsw_batch_reference(
    target_tiles: np.ndarray,
    query_tiles: np.ndarray,
    scoring: ScoringScheme,
    band: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The original row-at-a-time batched banded Smith-Waterman (oracle)."""
    if target_tiles.ndim != 2 or query_tiles.ndim != 2:
        raise ValueError("tile stacks must be 2-D (K, length)")
    if target_tiles.shape[0] != query_tiles.shape[0]:
        raise ValueError("target and query stacks disagree on tile count")
    if band < 0:
        raise ValueError("band must be non-negative")
    k, m = target_tiles.shape
    n = query_tiles.shape[1]
    o = np.int64(scoring.gap_open)
    e = np.int64(scoring.gap_extend)
    matrix = scoring.matrix64

    v_prev = np.zeros((k, m + 1), dtype=np.int64)
    u_prev = np.full((k, m + 1), NEG_INF, dtype=np.int64)
    best = np.zeros(k, dtype=np.int64)
    best_i = np.zeros(k, dtype=np.int64)
    best_j = np.zeros(k, dtype=np.int64)

    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(m, i + band)
        if hi < lo:
            continue
        width = hi - lo + 1
        subs = matrix[
            query_tiles[:, i - 1][:, None], target_tiles[:, lo - 1 : hi]
        ]

        u_row = np.maximum(
            v_prev[:, lo : hi + 1] - o, u_prev[:, lo : hi + 1] - e
        )
        diag = v_prev[:, lo - 1 : hi] + subs
        v0 = np.maximum(np.maximum(u_row, diag), 0)

        # H via prefix scan over the row window; a zero boundary on the
        # left models the local-alignment restart outside the band.
        offsets = np.arange(width, dtype=np.int64) * e
        running = np.maximum.accumulate(v0 + offsets, axis=1)
        h_row = np.empty_like(v0)
        h_row[:, 0] = NEG_INF
        h_row[:, 1:] = running[:, :-1] - o - offsets[:-1][None, :]
        v_row = np.maximum(np.maximum(v0, h_row), 0)

        v_prev[:, lo : hi + 1] = v_row
        u_prev[:, lo : hi + 1] = u_row

        row_best_idx = np.argmax(v_row, axis=1)
        row_best = v_row[np.arange(k), row_best_idx]
        improved = row_best > best
        best[improved] = row_best[improved]
        best_i[improved] = i
        best_j[improved] = row_best_idx[improved] + lo
    return best, best_i, best_j


def bsw_tile_reference(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    band: int,
) -> BswResult:
    """Banded Smith-Waterman over a single tile (oracle)."""
    if len(target) == 0 or len(query) == 0:
        return BswResult(score=0, max_i=0, max_j=0, cells=0)
    scores, max_i, max_j = bsw_batch_reference(
        target.codes[np.newaxis, :],
        query.codes[np.newaxis, :],
        scoring,
        band,
    )
    return BswResult(
        score=int(scores[0]),
        max_i=int(max_i[0]),
        max_j=int(max_j[0]),
        cells=_band_cells(len(query), len(target), band),
    )


def score_matrix_reference(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> np.ndarray:
    """The full (qlen+1, rlen+1) Smith-Waterman V matrix (oracle)."""
    m = len(target)
    n = len(query)
    v = np.zeros((n + 1, m + 1), dtype=np.int64)
    u_prev = np.full(m + 1, NEG_INF)
    sub_columns = substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v[i], u_prev, _, _ = row_update(
            v[i - 1], u_prev, subs, scoring, np.int64(0), local=True
        )
    return v


def align_local_reference(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> Optional[Alignment]:
    """Best local alignment of ``query`` against ``target`` (oracle)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return None

    v_prev = boundary_scores(m, scoring, free=True)
    u_prev = np.full(m + 1, NEG_INF)
    pointer_rows = []
    best = (np.int64(0), 0, 0)  # score, i, j
    sub_columns = substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v_prev, u_prev, _, pointers = row_update(
            v_prev, u_prev, subs, scoring, np.int64(0), local=True
        )
        pointer_rows.append(pointers)
        j = int(np.argmax(v_prev))
        if v_prev[j] > best[0]:
            best = (v_prev[j], i, j)

    score, end_i, end_j = best
    if score <= 0:
        return None
    cigar, start_i, start_j = traceback(
        pointer_rows,
        [0] * n,
        target,
        query,
        end_i,
        end_j,
        pad_to_origin=False,
    )
    return Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=start_j,
        target_end=end_j,
        query_start=start_i,
        query_end=end_i,
        score=int(score),
        cigar=cigar,
    )


def best_score_reference(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> int:
    """Maximum local alignment score (oracle, no traceback)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return 0
    v_prev = boundary_scores(m, scoring, free=True)
    u_prev = np.full(m + 1, NEG_INF)
    best = np.int64(0)
    sub_columns = substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v_prev, u_prev, _, _ = row_update(
            v_prev, u_prev, subs, scoring, np.int64(0), local=True
        )
        best = max(best, v_prev.max())
    return int(best)


def align_global_reference(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> Alignment:
    """Optimal global alignment of the two full sequences (oracle)."""
    m = len(target)
    n = len(query)
    if m == 0 and n == 0:
        return Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=0,
            target_end=0,
            query_start=0,
            query_end=0,
            score=0,
            cigar=Cigar(()),
        )
    if m == 0 or n == 0:
        length = max(m, n)
        op = "I" if m == 0 else "D"
        return Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=0,
            target_end=m,
            query_start=0,
            query_end=n,
            score=-scoring.gap_cost(length),
            cigar=Cigar.from_runs([(op, length)]),
        )

    v_prev = boundary_scores(m, scoring, free=False)
    u_prev = np.full(m + 1, NEG_INF)
    pointer_rows = []
    sub_columns = substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        boundary = np.int64(-scoring.gap_cost(i))
        v_prev, u_prev, _, pointers = row_update(
            v_prev, u_prev, subs, scoring, boundary, local=False
        )
        pointer_rows.append(pointers)

    score = int(v_prev[m])
    cigar, _, _ = traceback(
        pointer_rows, [0] * n, target, query, n, m, pad_to_origin=True
    )
    return Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=0,
        target_end=m,
        query_start=0,
        query_end=n,
        score=score,
        cigar=cigar,
    )


def global_score_reference(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> int:
    """Optimal global alignment score (oracle, no traceback)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return -scoring.gap_cost(max(m, n))
    v_prev = boundary_scores(m, scoring, free=False)
    u_prev = np.full(m + 1, NEG_INF)
    sub_columns = substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v_prev, u_prev, _, _ = row_update(
            v_prev,
            u_prev,
            subs,
            scoring,
            np.int64(-scoring.gap_cost(i)),
            local=False,
        )
    return int(v_prev[m])
