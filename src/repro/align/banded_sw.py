"""Banded Smith-Waterman (BSW) — the gapped filtering kernel.

Darwin-WGA replaces LASTZ's ungapped filter with a banded Smith-Waterman
pass (paper section III-C): a tile of size ``T_f`` is placed with the seed
hit at its centre, scores are computed only within a band of ``B`` cells on
either side of the tile diagonal, and the tile's maximum score ``V_max``
and its position ``x_max`` are reported.  Hits with ``V_max >= H_f``
proceed to extension, anchored at ``x_max``.

Because every filter tile has the same geometry, the kernel is also
provided in *batched* form: ``K`` tiles are stacked and each DP row is one
vectorised update over a ``(K, band_width)`` slab.  This mirrors how the
hardware processes many independent tiles across its 50-64 BSW arrays and
is what makes genome-scale runs feasible in Python.

The batched sweep runs in the narrowest exact dtype and in a transposed
``(width, K)`` layout: every elementwise row op then streams contiguous
``K``-wide vectors (SIMD-friendly) instead of strided ``width``-slices of
``(K, width)`` slabs, the within-row H prefix scan becomes a log-step
shifted-maximum ladder over full lanes, and the per-row best is tracked
with a cheap lane-wise ``max`` plus a first-index recovery that runs only
on rows where some tile actually improves.  The original row kernel is
preserved as ``bsw_batch_reference`` in :mod:`repro.align._reference`
and fuzzed against this one by ``tests/align/test_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..genome.sequence import Sequence
from . import _dp
from .scoring import ScoringScheme


@dataclass(frozen=True)
class BswResult:
    """Outcome of one banded-Smith-Waterman filter tile.

    ``max_i``/``max_j`` are 1-based row/column indices of ``x_max`` within
    the tile (0 when the tile scored nowhere above zero); ``cells`` is the
    number of DP cells evaluated, which the hardware model converts into
    cycles.
    """

    score: int
    max_i: int
    max_j: int
    cells: int


def band_cells(rows: int, cols: int, band: int) -> int:
    """Number of in-band cells of a ``rows x cols`` tile with band ``B``."""
    total = 0
    for i in range(1, rows + 1):
        lo = max(1, i - band)
        hi = min(cols, i + band)
        if hi >= lo:
            total += hi - lo + 1
    return total


def bsw_batch(
    target_tiles: np.ndarray,
    query_tiles: np.ndarray,
    scoring: ScoringScheme,
    band: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run banded Smith-Waterman over a stack of equally sized tiles.

    Args:
        target_tiles: ``(K, m)`` uint8 code array (pad with N at edges).
        query_tiles: ``(K, n)`` uint8 code array.
        scoring: substitution matrix and affine gap penalties.
        band: band half-width ``B``; cells with ``|i - j| > band`` are
            never computed.

    Returns:
        ``(scores, max_i, max_j)`` arrays of length ``K``.  Positions are
        1-based within the tile; tiles whose best score is 0 report
        position ``(0, 0)``.
    """
    if target_tiles.ndim != 2 or query_tiles.ndim != 2:
        raise ValueError("tile stacks must be 2-D (K, length)")
    if target_tiles.shape[0] != query_tiles.shape[0]:
        raise ValueError("target and query stacks disagree on tile count")
    if band < 0:
        raise ValueError("band must be non-negative")
    k, m = target_tiles.shape
    n = query_tiles.shape[1]
    dtype = _dp.kernel_dtype(scoring, max(m, n))
    negf = _dp.neg_inf(dtype)
    o = int(scoring.gap_open)
    e = int(scoring.gap_extend)
    matrix = _dp.matrix_for(scoring, dtype)
    alphabet = matrix.shape[0]
    ke, oke = _dp.gap_ladders(scoring, m + 1, dtype)

    # Substitution planes, column-major: planes[j, b, :] is
    # W[b, target[:, j]].  Each DP row then gathers its (width, K) slab
    # with one fancy index whose leading axis is a plain slice.
    target_cols = np.ascontiguousarray(target_tiles.T)
    planes = np.empty((m, alphabet, k), dtype=dtype)
    for base in range(alphabet):
        np.take(matrix[base], target_cols, out=planes[:, base, :])
    query_cols = query_tiles.T.astype(np.intp)
    lanes = np.arange(k)

    ws = _dp.acquire_workspace()
    try:
        width_cap = min(m, 2 * band + 1)
        v_prev = ws.array("bsw_v", (m + 1, k), dtype)
        u_prev = ws.array("bsw_u", (m + 1, k), dtype)
        ua = ws.array("bsw_ua", (width_cap, k), dtype)
        ub = ws.array("bsw_ub", (width_cap, k), dtype)
        v0 = ws.array("bsw_v0", (width_cap, k), dtype)
        hh = ws.array("bsw_h", (width_cap, k), dtype)
        acc = ws.array("bsw_acc", (width_cap, k), dtype)
        scan = ws.array("bsw_scan", (width_cap, k), dtype)
        rowmax = ws.array("bsw_rowmax", (k,), dtype)
        improved = ws.array("bsw_imp", (k,), np.dtype(bool))
        atmax = ws.array("bsw_atmax", (width_cap, k), np.dtype(bool))
        jbuf = ws.array("bsw_jbuf", (k,), np.dtype(np.int64))
        v_prev[:] = 0
        u_prev[:] = negf
        best = np.zeros(k, dtype=dtype)
        best_i = np.zeros(k, dtype=np.int64)
        best_j = np.zeros(k, dtype=np.int64)
        kec = ke[:, np.newaxis]
        okec = oke[:, np.newaxis]

        for i in range(1, n + 1):
            lo = max(1, i - band)
            hi = min(m, i + band)
            if hi < lo:
                continue
            w = hi - lo + 1
            subs = planes[lo - 1 : hi, query_cols[i - 1], lanes]

            np.subtract(v_prev[lo : hi + 1], o, out=ua[:w])
            np.subtract(u_prev[lo : hi + 1], e, out=ub[:w])
            np.maximum(ua[:w], ub[:w], out=ua[:w])
            np.add(v_prev[lo - 1 : hi], subs, out=subs)
            np.maximum(ua[:w], subs, out=v0[:w])
            np.maximum(v0[:w], 0, out=v0[:w])

            # H via a prefix max over the row window (a zero boundary on
            # the left models the local-alignment restart outside the
            # band), computed as a log-step shifted-maximum ladder: a
            # max-scan is idempotent, so each doubling pass may read
            # already-updated entries without changing the result.
            np.add(v0[:w], kec[:w], out=acc[:w])
            shift = 1
            while shift < w:
                np.maximum(
                    acc[shift:w], acc[: w - shift], out=scan[: w - shift]
                )
                acc[shift:w] = scan[: w - shift]
                shift *= 2
            hh[0] = negf
            np.subtract(acc[: w - 1], okec[: w - 1], out=hh[1:w])
            np.maximum(v0[:w], hh[:w], out=v0[:w])

            v_prev[lo : hi + 1] = v0[:w]
            u_prev[lo : hi + 1] = ua[:w]

            # Track the batch-wide best lazily: a lane-wise max is cheap;
            # the first-index recovery (the oracle's argmax tie rule)
            # runs only when some tile actually improved this row.
            np.max(v0[:w], axis=0, out=rowmax)
            np.greater(rowmax, best, out=improved)
            hits = np.flatnonzero(improved)
            if hits.size:
                if hits.size * 4 < k:
                    # Few improving tiles: recover first-max indices on
                    # just their columns.
                    sub = v0[:w, hits]
                    first = np.argmax(sub == rowmax[hits], axis=0)
                    best[hits] = rowmax[hits]
                    best_i[hits] = i
                    best_j[hits] = first + lo
                else:
                    np.equal(v0[:w], rowmax, out=atmax[:w])
                    first = np.argmax(atmax[:w], axis=0)
                    np.copyto(best, rowmax, where=improved)
                    np.copyto(best_i, i, where=improved)
                    np.add(first, lo, out=jbuf)
                    np.copyto(best_j, jbuf, where=improved)
    finally:
        _dp.release_workspace(ws)
    return best.astype(np.int64), best_i, best_j


def bsw_tile(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    band: int,
) -> BswResult:
    """Banded Smith-Waterman over a single tile."""
    if len(target) == 0 or len(query) == 0:
        return BswResult(score=0, max_i=0, max_j=0, cells=0)
    scores, max_i, max_j = bsw_batch(
        target.codes[np.newaxis, :],
        query.codes[np.newaxis, :],
        scoring,
        band,
    )
    return BswResult(
        score=int(scores[0]),
        max_i=int(max_i[0]),
        max_j=int(max_j[0]),
        cells=band_cells(len(query), len(target), band),
    )
