"""Banded Smith-Waterman (BSW) — the gapped filtering kernel.

Darwin-WGA replaces LASTZ's ungapped filter with a banded Smith-Waterman
pass (paper section III-C): a tile of size ``T_f`` is placed with the seed
hit at its centre, scores are computed only within a band of ``B`` cells on
either side of the tile diagonal, and the tile's maximum score ``V_max``
and its position ``x_max`` are reported.  Hits with ``V_max >= H_f``
proceed to extension, anchored at ``x_max``.

Because every filter tile has the same geometry, the kernel is also
provided in *batched* form: ``K`` tiles are stacked and each DP row is one
vectorised update over a ``(K, band_width)`` slab.  This mirrors how the
hardware processes many independent tiles across its 50-64 BSW arrays and
is what makes genome-scale runs feasible in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..genome.sequence import Sequence
from ._dp import NEG_INF
from .scoring import ScoringScheme


@dataclass(frozen=True)
class BswResult:
    """Outcome of one banded-Smith-Waterman filter tile.

    ``max_i``/``max_j`` are 1-based row/column indices of ``x_max`` within
    the tile (0 when the tile scored nowhere above zero); ``cells`` is the
    number of DP cells evaluated, which the hardware model converts into
    cycles.
    """

    score: int
    max_i: int
    max_j: int
    cells: int


def band_cells(rows: int, cols: int, band: int) -> int:
    """Number of in-band cells of a ``rows x cols`` tile with band ``B``."""
    total = 0
    for i in range(1, rows + 1):
        lo = max(1, i - band)
        hi = min(cols, i + band)
        if hi >= lo:
            total += hi - lo + 1
    return total


def bsw_batch(
    target_tiles: np.ndarray,
    query_tiles: np.ndarray,
    scoring: ScoringScheme,
    band: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run banded Smith-Waterman over a stack of equally sized tiles.

    Args:
        target_tiles: ``(K, m)`` uint8 code array (pad with N at edges).
        query_tiles: ``(K, n)`` uint8 code array.
        scoring: substitution matrix and affine gap penalties.
        band: band half-width ``B``; cells with ``|i - j| > band`` are
            never computed.

    Returns:
        ``(scores, max_i, max_j)`` arrays of length ``K``.  Positions are
        1-based within the tile; tiles whose best score is 0 report
        position ``(0, 0)``.
    """
    if target_tiles.ndim != 2 or query_tiles.ndim != 2:
        raise ValueError("tile stacks must be 2-D (K, length)")
    if target_tiles.shape[0] != query_tiles.shape[0]:
        raise ValueError("target and query stacks disagree on tile count")
    if band < 0:
        raise ValueError("band must be non-negative")
    k, m = target_tiles.shape
    n = query_tiles.shape[1]
    o = np.int64(scoring.gap_open)
    e = np.int64(scoring.gap_extend)
    matrix = scoring.matrix64

    v_prev = np.zeros((k, m + 1), dtype=np.int64)
    u_prev = np.full((k, m + 1), NEG_INF, dtype=np.int64)
    best = np.zeros(k, dtype=np.int64)
    best_i = np.zeros(k, dtype=np.int64)
    best_j = np.zeros(k, dtype=np.int64)

    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(m, i + band)
        if hi < lo:
            continue
        width = hi - lo + 1
        subs = matrix[query_tiles[:, i - 1][:, None], target_tiles[:, lo - 1 : hi]]

        u_row = np.maximum(
            v_prev[:, lo : hi + 1] - o, u_prev[:, lo : hi + 1] - e
        )
        diag = v_prev[:, lo - 1 : hi] + subs
        v0 = np.maximum(np.maximum(u_row, diag), 0)

        # H via prefix scan over the row window; a zero boundary on the
        # left models the local-alignment restart outside the band.
        offsets = np.arange(width, dtype=np.int64) * e
        running = np.maximum.accumulate(v0 + offsets, axis=1)
        h_row = np.empty_like(v0)
        h_row[:, 0] = NEG_INF
        h_row[:, 1:] = running[:, :-1] - o - offsets[:-1][None, :]
        v_row = np.maximum(np.maximum(v0, h_row), 0)

        v_prev[:, lo : hi + 1] = v_row
        u_prev[:, lo : hi + 1] = u_row

        row_best_idx = np.argmax(v_row, axis=1)
        row_best = v_row[np.arange(k), row_best_idx]
        improved = row_best > best
        best[improved] = row_best[improved]
        best_i[improved] = i
        best_j[improved] = row_best_idx[improved] + lo
    return best, best_i, best_j


def bsw_tile(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    band: int,
) -> BswResult:
    """Banded Smith-Waterman over a single tile."""
    if len(target) == 0 or len(query) == 0:
        return BswResult(score=0, max_i=0, max_j=0, cells=0)
    scores, max_i, max_j = bsw_batch(
        target.codes[np.newaxis, :],
        query.codes[np.newaxis, :],
        scoring,
        band,
    )
    return BswResult(
        score=int(scores[0]),
        max_i=int(max_i[0]),
        max_j=int(max_j[0]),
        cells=band_cells(len(query), len(target), band),
    )
