"""CIGAR strings describing alignment paths.

Operations follow the extended SAM convention: ``=`` match, ``X`` mismatch,
``I`` insertion (extra bases in the query), ``D`` deletion (extra bases in
the target).  All pipeline stages that trace back emit CIGARs, and every
downstream consumer (chaining, MAF output, metrics) walks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

#: Valid CIGAR operation characters.
OPS = ("=", "X", "I", "D")

#: Operations that consume a target base.
CONSUMES_TARGET = {"=": True, "X": True, "I": False, "D": True}

#: Operations that consume a query base.
CONSUMES_QUERY = {"=": True, "X": True, "I": True, "D": False}


@dataclass(frozen=True)
class Cigar:
    """An immutable run-length encoded alignment path."""

    runs: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        for op, length in self.runs:
            if op not in OPS:
                raise ValueError(f"unknown CIGAR op {op!r}")
            if length <= 0:
                raise ValueError("CIGAR run lengths must be positive")

    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[str, int]]) -> "Cigar":
        """Build a CIGAR, merging adjacent runs with the same operation."""
        merged: List[Tuple[str, int]] = []
        for op, length in runs:
            if length == 0:
                continue
            if merged and merged[-1][0] == op:
                merged[-1] = (op, merged[-1][1] + length)
            else:
                merged.append((op, length))
        return cls(tuple(merged))

    @classmethod
    def from_ops(cls, ops: Iterable[str]) -> "Cigar":
        """Build a CIGAR from a per-base operation sequence."""
        return cls.from_runs((op, 1) for op in ops)

    @classmethod
    def parse(cls, text: str) -> "Cigar":
        """Parse a CIGAR string such as ``'12=1X3D8='``."""
        runs: List[Tuple[str, int]] = []
        number = ""
        for char in text:
            if char.isdigit():
                number += char
            else:
                if not number:
                    raise ValueError(f"malformed CIGAR {text!r}")
                runs.append((char, int(number)))
                number = ""
        if number:
            raise ValueError(f"trailing count in CIGAR {text!r}")
        return cls.from_runs(runs)

    def __str__(self) -> str:
        return "".join(f"{length}{op}" for op, length in self.runs)

    def __len__(self) -> int:
        """Total number of alignment columns."""
        return sum(length for _, length in self.runs)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.runs)

    def __add__(self, other: "Cigar") -> "Cigar":
        return Cigar.from_runs(list(self.runs) + list(other.runs))

    def reversed(self) -> "Cigar":
        """The path read in the opposite direction."""
        return Cigar(tuple(reversed(self.runs)))

    def count(self, op: str) -> int:
        """Total bases covered by runs of ``op``."""
        return sum(length for run_op, length in self.runs if run_op == op)

    @property
    def matches(self) -> int:
        """Number of exactly matching base pairs."""
        return self.count("=")

    @property
    def mismatches(self) -> int:
        return self.count("X")

    @property
    def target_span(self) -> int:
        """Number of target bases the path consumes."""
        return sum(
            length for op, length in self.runs if CONSUMES_TARGET[op]
        )

    @property
    def query_span(self) -> int:
        """Number of query bases the path consumes."""
        return sum(length for op, length in self.runs if CONSUMES_QUERY[op])

    @property
    def aligned_pairs(self) -> int:
        """Columns aligning a target base to a query base (match+mismatch)."""
        return self.matches + self.mismatches

    def identity(self) -> float:
        """Fraction of aligned columns that are exact matches."""
        pairs = self.aligned_pairs
        return self.matches / pairs if pairs else 0.0

    def gap_runs(self) -> List[Tuple[str, int]]:
        """All insertion/deletion runs in order."""
        return [(op, length) for op, length in self.runs if op in ("I", "D")]

    def ungapped_block_lengths(self) -> List[int]:
        """Lengths of maximal gap-free (match/mismatch) blocks.

        This is the statistic behind the paper's Figure 2: the distribution
        of ungapped alignment block sizes before an indel interrupts them.
        """
        blocks: List[int] = []
        current = 0
        for op, length in self.runs:
            if op in ("=", "X"):
                current += length
            elif current:
                blocks.append(current)
                current = 0
        if current:
            blocks.append(current)
        return blocks
