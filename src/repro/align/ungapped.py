"""Ungapped X-drop extension — LASTZ's filtering stage.

LASTZ filters seed hits by extending them along the diagonal, with no
indels allowed, until the running score drops ``xdrop`` below the running
maximum (Zhang et al.'s X-drop criterion).  The paper's Figure 2 argument
is exactly about this stage: between indels, diverged genomes only offer
short ungapped blocks, so requiring a ~30-match-equivalent ungapped score
discards many true alignments.  Darwin-WGA replaces this stage with banded
Smith-Waterman; both are implemented so the pipelines can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from ..genome.sequence import Sequence
from .scoring import ScoringScheme


@lru_cache(maxsize=8)
def _direction_offsets(max_length: int) -> Tuple[np.ndarray, np.ndarray]:
    """Read-only ``(right, left)`` offset arrays for one window size.

    These are identical for every batch with the same ``max_length``, so
    they are built once and reused instead of calling ``np.arange`` inside
    the hot filtering loop.
    """
    right = np.arange(max_length, dtype=np.int64)
    left = -np.arange(1, max_length + 1, dtype=np.int64)
    right.setflags(write=False)
    left.setflags(write=False)
    return right, left


_LANES = np.empty(0, dtype=np.int64)


def _lane_indices(k: int) -> np.ndarray:
    """First ``k`` lane indices from a grow-only cached ``arange``."""
    global _LANES
    if _LANES.size < k:
        lanes = np.arange(max(k, 2 * _LANES.size), dtype=np.int64)
        lanes.setflags(write=False)
        _LANES = lanes
    return _LANES[:k]


@dataclass(frozen=True)
class UngappedResult:
    """An ungapped extension around a seed hit.

    Coordinates are half-open on the target; the query interval has the
    same length on the hit diagonal.  ``cells`` counts scored positions
    (the software-cost unit for this stage).
    """

    score: int
    target_start: int
    target_end: int
    query_start: int
    query_end: int
    cells: int


def _extend_scores(scores: np.ndarray, xdrop: int) -> Tuple[int, int]:
    """Best prefix sum of ``scores`` under the X-drop termination rule.

    Returns ``(best_score, length_of_best_prefix)``.  Scanning stops at the
    first position where the running score falls more than ``xdrop`` below
    the running maximum; the best prefix is taken among positions up to and
    including the stopping point.
    """
    if scores.size == 0:
        return 0, 0
    cumulative = np.cumsum(scores)
    running_max = np.maximum.accumulate(np.maximum(cumulative, 0))
    dropped = np.flatnonzero(running_max - cumulative > xdrop)
    limit = int(dropped[0]) if dropped.size else scores.size
    if limit == 0:
        return 0, 0
    window = cumulative[:limit]
    best_idx = int(np.argmax(window))
    best = int(window[best_idx])
    if best <= 0:
        return 0, 0
    return best, best_idx + 1


def ungapped_extend(
    target: Sequence,
    query: Sequence,
    target_pos: int,
    query_pos: int,
    scoring: ScoringScheme,
    xdrop: int,
    max_length: int = 4096,
) -> UngappedResult:
    """Extend a seed hit along its diagonal in both directions.

    ``(target_pos, query_pos)`` is any position on the hit diagonal
    (conventionally the seed start).  Extension proceeds rightwards from
    that position inclusive and leftwards from the previous position, each
    direction independently under the X-drop rule, and the two best scores
    are summed.
    """
    t = target.codes
    q = query.codes
    matrix = scoring.matrix64

    right_len = min(len(target) - target_pos, len(query) - query_pos, max_length)
    left_len = min(target_pos, query_pos, max_length)

    right_scores = (
        matrix[
            t[target_pos : target_pos + right_len],
            q[query_pos : query_pos + right_len],
        ]
        if right_len > 0
        else np.empty(0, dtype=np.int64)
    )
    left_scores = (
        matrix[
            t[target_pos - left_len : target_pos][::-1],
            q[query_pos - left_len : query_pos][::-1],
        ]
        if left_len > 0
        else np.empty(0, dtype=np.int64)
    )

    right_best, right_span = _extend_scores(right_scores, xdrop)
    left_best, left_span = _extend_scores(left_scores, xdrop)
    return UngappedResult(
        score=right_best + left_best,
        target_start=target_pos - left_span,
        target_end=target_pos + right_span,
        query_start=query_pos - left_span,
        query_end=query_pos + right_span,
        cells=right_len + left_len,
    )


def ungapped_extend_batch(
    target: Sequence,
    query: Sequence,
    target_positions: np.ndarray,
    query_positions: np.ndarray,
    scoring: ScoringScheme,
    xdrop: int,
    max_length: int = 4096,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised ungapped extension of many seed hits at once.

    Returns ``(scores, left_spans, right_spans)`` arrays.  Positions past
    either sequence end contribute N-vs-N substitution scores against the
    clamped final base... they are excluded by masking to a large negative
    score, which terminates extension at the boundary under X-drop.
    """
    k = target_positions.size
    if k == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    t = target.codes
    q = query.codes
    matrix = scoring.matrix64
    boundary_penalty = np.int64(-(xdrop + 1))
    lanes = _lane_indices(k)
    # Clamp each direction's window to the longest extension any hit can
    # actually make (sequence ends bound it) rather than ``max_length``:
    # hits near the ends of short sequences would otherwise pay for a
    # (k, max_length) slab that is almost entirely boundary padding.
    # Truncated columns are out of range for every lane, where the
    # boundary penalty already kills extension under X-drop, so scores
    # and spans are unchanged.
    right_cap = max(
        0,
        int(
            min(
                np.minimum(
                    len(target) - target_positions,
                    len(query) - query_positions,
                ).max(),
                max_length,
            )
        ),
    )
    left_cap = max(
        0,
        int(
            min(
                np.minimum(target_positions, query_positions).max(),
                max_length,
            )
        ),
    )
    width = max(right_cap, left_cap)
    # One padded (k, width) slab serves both directions: every downstream
    # array (cumsum, running max, masks) is a fresh allocation, so the
    # left pass may overwrite the right pass's window in place.
    score_slab = np.empty((k, width), dtype=np.int64)

    def direction_scores(offsets: np.ndarray, cap: int) -> np.ndarray:
        slab = score_slab[:, :cap]
        t_idx = target_positions[:, None] + offsets[None, :cap]
        q_idx = query_positions[:, None] + offsets[None, :cap]
        valid = (
            (t_idx >= 0)
            & (t_idx < len(target))
            & (q_idx >= 0)
            & (q_idx < len(query))
        )
        slab.fill(boundary_penalty)
        slab[valid] = matrix[t[t_idx[valid]], q[q_idx[valid]]]
        return slab

    def best_under_xdrop(scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if scores.shape[1] == 0:
            zeros = np.zeros(k, dtype=np.int64)
            return zeros, zeros.copy()
        cumulative = np.cumsum(scores, axis=1)
        running_max = np.maximum.accumulate(
            np.maximum(cumulative, 0), axis=1
        )
        alive = np.cumprod(running_max - cumulative <= xdrop, axis=1).astype(
            bool
        )
        masked = np.where(alive, cumulative, np.int64(-(2**42)))
        spans = np.argmax(masked, axis=1) + 1
        best = np.maximum(masked[lanes, spans - 1], 0)
        spans = np.where(best > 0, spans, 0)
        return best, spans

    offsets_right, offsets_left = _direction_offsets(max_length)
    right_best, right_spans = best_under_xdrop(
        direction_scores(offsets_right, right_cap)
    )
    left_best, left_spans = best_under_xdrop(
        direction_scores(offsets_left, left_cap)
    )
    return right_best + left_best, left_spans, right_spans
