"""Full-matrix Smith-Waterman local alignment.

This is the reference implementation the whole library is tested against:
banded, X-dropped, and tiled kernels must agree with it whenever their
restrictions are inactive.  It is O(n*m) in time and pointer memory, so it
is meant for tiles and tests, not genomes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..genome.sequence import Sequence
from . import _dp
from .alignment import Alignment
from .scoring import ScoringScheme


def score_matrix(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> np.ndarray:
    """The full (qlen+1, rlen+1) Smith-Waterman V matrix (scores only)."""
    m = len(target)
    n = len(query)
    v = np.zeros((n + 1, m + 1), dtype=np.int64)
    u_prev = np.full(m + 1, _dp.NEG_INF)
    sub_columns = _dp.substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v[i], u_prev, _, _ = _dp.row_update(
            v[i - 1], u_prev, subs, scoring, np.int64(0), local=True
        )
    return v


def align_local(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> Optional[Alignment]:
    """Best local alignment of ``query`` against ``target``.

    Returns ``None`` when no cell scores above zero (e.g. empty inputs or
    all-mismatch sequences under a matrix with no positive off-diagonal).
    """
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return None

    v_prev = _dp.boundary_scores(m, scoring, free=True)
    u_prev = np.full(m + 1, _dp.NEG_INF)
    pointer_rows = []
    best = (np.int64(0), 0, 0)  # score, i, j
    sub_columns = _dp.substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v_prev, u_prev, _, pointers = _dp.row_update(
            v_prev, u_prev, subs, scoring, np.int64(0), local=True
        )
        pointer_rows.append(pointers)
        j = int(np.argmax(v_prev))
        if v_prev[j] > best[0]:
            best = (v_prev[j], i, j)

    score, end_i, end_j = best
    if score <= 0:
        return None
    cigar, start_i, start_j = _dp.traceback(
        pointer_rows,
        [0] * n,
        target,
        query,
        end_i,
        end_j,
        pad_to_origin=False,
    )
    return Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=start_j,
        target_end=end_j,
        query_start=start_i,
        query_end=end_i,
        score=int(score),
        cigar=cigar,
    )


def best_score(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> int:
    """Maximum local alignment score (no traceback, O(m) memory)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return 0
    v_prev = _dp.boundary_scores(m, scoring, free=True)
    u_prev = np.full(m + 1, _dp.NEG_INF)
    best = np.int64(0)
    sub_columns = _dp.substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v_prev, u_prev, _, _ = _dp.row_update(
            v_prev, u_prev, subs, scoring, np.int64(0), local=True
        )
        best = max(best, v_prev.max())
    return int(best)
