"""Full-matrix Smith-Waterman local alignment.

This is the reference implementation the whole library is tested against:
banded, X-dropped, and tiled kernels must agree with it whenever their
restrictions are inactive.  It is O(n*m) in time, so it is meant for
tiles and tests, not genomes.

The kernel runs on the vectorised sweep in :mod:`repro.align._dp`
(narrow exact dtype, prefix-scan H, packed 4-bit traceback nibbles at
two cells per byte); the original row-at-a-time code is the oracle
``align_local_reference`` et al. in :mod:`repro.align._reference`, and
``tests/align/test_differential.py`` holds the two equal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..genome.sequence import Sequence
from . import _dp
from .alignment import Alignment
from .scoring import ScoringScheme


def score_matrix(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> np.ndarray:
    """The full (qlen+1, rlen+1) Smith-Waterman V matrix (scores only)."""
    m = len(target)
    n = len(query)
    v = np.zeros((n + 1, m + 1), dtype=np.int64)
    if m == 0 or n == 0:
        return v
    ws = _dp.acquire_workspace()
    try:
        _dp.affine_sweep(
            target,
            query,
            scoring,
            local=True,
            track_best=False,
            keep_pointers=False,
            ws=ws,
            matrix_out=v,
        )
    finally:
        _dp.release_workspace(ws)
    return v


def align_local(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> Optional[Alignment]:
    """Best local alignment of ``query`` against ``target``.

    Returns ``None`` when no cell scores above zero (e.g. empty inputs or
    all-mismatch sequences under a matrix with no positive off-diagonal).
    """
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return None

    ws = _dp.acquire_workspace()
    try:
        score, end_i, end_j, _, packed = _dp.affine_sweep(
            target,
            query,
            scoring,
            local=True,
            track_best=True,
            keep_pointers=True,
            ws=ws,
        )
        if score <= 0:
            return None
        cigar, start_i, start_j = _dp.packed_traceback(
            packed,
            target,
            query,
            end_i,
            end_j,
            pad_to_origin=False,
        )
    finally:
        _dp.release_workspace(ws)
    return Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=start_j,
        target_end=end_j,
        query_start=start_i,
        query_end=end_i,
        score=score,
        cigar=cigar,
    )


def best_score(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> int:
    """Maximum local alignment score (no traceback, O(m) memory)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return 0
    ws = _dp.acquire_workspace()
    try:
        score, _, _, _, _ = _dp.affine_sweep(
            target,
            query,
            scoring,
            local=True,
            track_best=True,
            keep_pointers=False,
            ws=ws,
        )
    finally:
        _dp.release_workspace(ws)
    return score
