"""Shared dynamic-programming machinery for the alignment kernels.

All kernels use the affine-gap recurrences of the paper (equations 1-3)::

    H(i,j) = max(V(i,j-1) - o, H(i,j-1) - e)      # gap along the target
    U(i,j) = max(V(i-1,j) - o, U(i-1,j) - e)      # gap along the query
    V(i,j) = max(H(i,j), U(i,j), V(i-1,j-1) + W(q_i, r_j))

with rows ``i`` over the query and columns ``j`` over the target.  The
paper calls ``H`` "insertion" and ``U`` "deletion"; CIGAR emission maps a
horizontal move (consuming a target base) to ``D`` and a vertical move
(consuming a query base) to ``I``, the SAM query-centric convention.

The production kernels are vectorised sweeps (anti-diagonal wavefronts
for the full-matrix and banded kernels, a lane-lockstep row pipeline for
X-drop — see the kernel modules); the row-at-a-time originals live on as
oracles in :mod:`repro.align._reference`.  This module holds what they
share:

* the pointer/flag bit encoding (mirroring the 4-bit hardware pointers:
  2 bits of direction, 2 bits of affine-gap origin), plus helpers to
  pack two such nibbles per byte (Scrooge-style packed traceback state);
* the within-row prefix-scan identity for ``H``: because ``o >= e``,
  ``H(i,j) = max_{k<j} (V'(i,k) + k*e) - o - (j-1)*e``, so one
  ``np.maximum.accumulate`` replaces the column-sequential chain;
* narrow-dtype selection: kernels run in ``int32`` when every reachable
  DP value (plus the minus-infinity sentinel's headroom) provably fits,
  falling back to ``int64`` otherwise — scores are exact either way;
* grow-only scratch workspaces so hot kernels never touch fresh pages
  (first-touch page faults dominate fresh-slab allocation costs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from .cigar import Cigar
from .scoring import ScoringScheme

#: Effectively minus infinity for ``int64`` state, with headroom so
#: ``NEG_INF + k*e`` cannot overflow or accidentally win a maximum.
NEG_INF = np.int64(-(2**42))

#: The ``int32`` sentinel.  Chosen so that sentinel-derived garbage stays
#: strictly below every reachable real value *and* every live threshold
#: whenever :func:`kernel_dtype` selects ``int32`` (see REAL_VALUE_CAP).
NEG_INF32 = np.int32(-(2**28))

#: ``int32`` kernels are only selected while every reachable DP value and
#: X-drop threshold is provably below this bound; sentinel arithmetic
#: then stays in ``[NEG_INF32 - CAP, NEG_INF32 + CAP]`` — disjoint from
#: the real-value range, so comparisons agree with the ``int64`` oracle.
REAL_VALUE_CAP = 2**26

#: Pointer encoding (low two bits): how V was obtained.
DIR_NONE = 0  # local zero / boundary: traceback stops
DIR_DIAG = 1
DIR_HORIZ = 2  # from H: gap consuming target ('D')
DIR_VERT = 3  # from U: gap consuming query ('I')

#: Pointer flags (high bits): whether the gap state extends a prior gap.
FLAG_H_EXTEND = 4
FLAG_U_EXTEND = 8

_DIR_MASK = 3


def substitution_columns(
    target: Sequence, scoring: ScoringScheme
) -> np.ndarray:
    """Precomputed substitution rows against a fixed target, ``int64``.

    Returns a read-only ``(ALPHABET_SIZE, m)`` array where row ``b`` is
    ``W[b, target]``.  Kernels then fetch the whole row for query base
    ``q_i`` with a plain index (``columns[q_i]``, a view) — the
    fancy-index gather over the target codes runs once per kernel call
    instead of once per DP row.
    """
    columns = scoring.matrix64[:, target.codes]
    columns.setflags(write=False)
    return columns


def boundary_scores(
    length: int, scoring: ScoringScheme, free: bool
) -> np.ndarray:
    """V values along a DP boundary (row 0 or column 0), index 0..length.

    ``free=True`` (local alignment) gives zeros; otherwise position ``k``
    costs an affine gap of length ``k`` from the origin.
    """
    values = np.zeros(length + 1, dtype=np.int64)
    if not free and length > 0:
        k = np.arange(1, length + 1, dtype=np.int64)
        values[1:] = -(scoring.gap_open + (k - 1) * scoring.gap_extend)
    return values


# ---------------------------------------------------------------------------
# Narrow-dtype selection


def scoring_peak(scoring: ScoringScheme) -> int:
    """Largest per-step score magnitude under ``scoring``."""
    return int(
        max(
            np.abs(scoring.matrix64).max(),
            scoring.gap_open + scoring.gap_extend,
            1,
        )
    )


def kernel_dtype(
    scoring: ScoringScheme, max_len: int, slack: int = 0
) -> np.dtype:
    """The narrowest exact dtype for a DP over tiles up to ``max_len``.

    ``slack`` covers kernel-specific extra headroom (the X-drop ``Y``
    enters live-threshold comparisons).  ``int32`` is returned only when
    every reachable value — bounded by ``(rows + cols + 4) * peak`` — and
    threshold stays under :data:`REAL_VALUE_CAP`, which keeps
    sentinel-derived garbage values in a range disjoint from real ones;
    all comparisons then agree bit-for-bit with ``int64`` arithmetic.
    """
    bound = (2 * max_len + 4) * scoring_peak(scoring) + slack
    return np.dtype(np.int32) if bound < REAL_VALUE_CAP else np.dtype(
        np.int64
    )


def neg_inf(dtype: np.dtype) -> int:
    """The minus-infinity sentinel for a kernel dtype."""
    return int(NEG_INF32) if np.dtype(dtype) == np.int32 else int(NEG_INF)


_MATRIX_CACHE: Dict[Tuple[int, str], Tuple[ScoringScheme, np.ndarray]] = {}


def matrix_for(scoring: ScoringScheme, dtype: np.dtype) -> np.ndarray:
    """The substitution matrix cast to the kernel dtype (memoised).

    The cache also pins the scoring object so a recycled ``id()`` can
    never alias a different scheme.
    """
    key = (id(scoring), np.dtype(dtype).str)
    hit = _MATRIX_CACHE.get(key)
    if hit is not None and hit[0] is scoring:
        return hit[1]
    matrix = scoring.matrix64.astype(dtype)
    matrix.setflags(write=False)
    if len(_MATRIX_CACHE) > 16:
        _MATRIX_CACHE.clear()
    _MATRIX_CACHE[key] = (scoring, matrix)
    return matrix


_LADDER_CACHE: Dict[Tuple[int, int, str], Tuple[np.ndarray, np.ndarray]] = {}


def gap_ladders(
    scoring: ScoringScheme, length: int, dtype: np.dtype
) -> Tuple[np.ndarray, np.ndarray]:
    """Read-only ``(ke, oke)`` ladders of at least ``length + 1`` slots.

    ``ke[c] = c * e`` biases the prefix-scan input; ``oke[c] = o + c * e``
    unbiases the resulting H row (``H(slot s) = running[s-1] - oke[s-1]``).
    Grow-only and shared across calls, keyed by the gap penalties.
    """
    key = (scoring.gap_open, scoring.gap_extend, np.dtype(dtype).str)
    hit = _LADDER_CACHE.get(key)
    if hit is not None and hit[0].size >= length + 1:
        return hit
    size = max(length + 1, 2048)
    c = np.arange(size, dtype=dtype)
    ke = c * dtype.type(scoring.gap_extend)
    oke = ke + dtype.type(scoring.gap_open)
    ke.setflags(write=False)
    oke.setflags(write=False)
    _LADDER_CACHE[key] = (ke, oke)
    return ke, oke


# ---------------------------------------------------------------------------
# Grow-only workspaces


class KernelWorkspace:
    """A bundle of named, grow-only scratch arrays.

    Hot kernels must not allocate fresh multi-megabyte slabs per call:
    on this container class of machine the first touch of every new page
    costs more than the arithmetic on it.  A workspace hands out views
    of persistent slabs that only ever grow, so steady-state kernel
    calls run entirely on already-mapped memory.
    """

    def __init__(self) -> None:
        self._slabs: Dict[Tuple[str, str], np.ndarray] = {}

    def array(
        self, name: str, shape: Tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """An uninitialised ``shape`` view of the named slab."""
        key = (name, np.dtype(dtype).str)
        slab = self._slabs.get(key)
        if slab is None or any(
            have < want for have, want in zip(slab.shape, shape)
        ):
            grown = tuple(
                max(want, have if slab is not None else 0, 1)
                for want, have in zip(
                    shape,
                    slab.shape if slab is not None else (0,) * len(shape),
                )
            )
            slab = np.empty(grown, dtype=dtype)
            self._slabs[key] = slab
        return slab[tuple(slice(0, want) for want in shape)]


_WORKSPACES: List[KernelWorkspace] = []


def acquire_workspace() -> KernelWorkspace:
    """Borrow a workspace from the module pool (reentrancy-safe)."""
    if _WORKSPACES:
        return _WORKSPACES.pop()
    return KernelWorkspace()


def release_workspace(workspace: KernelWorkspace) -> None:
    """Return a borrowed workspace so later calls reuse its pages."""
    if len(_WORKSPACES) < 8:
        _WORKSPACES.append(workspace)


# ---------------------------------------------------------------------------
# Packed-nibble traceback state (Scrooge-style)


def pack_nibbles(codes: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Pack 4-bit pointer codes two-per-byte along the last axis.

    ``codes`` is a ``uint8`` array of nibble values (< 16); ``out`` must
    have at least ``ceil(len / 2)`` slots.  Even indices land in the low
    nibble, odd indices in the high nibble.
    """
    n = codes.shape[-1]
    half = (n + 1) // 2
    view = out[..., :half]
    np.copyto(view, codes[..., 0::2])
    odd = codes[..., 1::2]
    view[..., : odd.shape[-1]] |= odd << np.uint8(4)
    return view


def nibble_at(packed: np.ndarray, index: int) -> int:
    """Read one 4-bit pointer code back out of a packed row."""
    byte = int(packed[index >> 1])
    return (byte >> ((index & 1) * 4)) & 0xF


# ---------------------------------------------------------------------------
# Full-matrix affine sweep (Smith-Waterman / Needleman-Wunsch)


def affine_sweep(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    local: bool,
    track_best: bool,
    keep_pointers: bool,
    ws: KernelWorkspace,
    matrix_out: Optional[np.ndarray] = None,
) -> Tuple[int, int, int, int, Optional[np.ndarray]]:
    """Vectorised full-matrix affine-gap sweep, exact vs the oracle.

    One batch of vector ops per DP row, in the narrowest exact dtype; the
    intra-row H dependency is resolved with the prefix-scan identity (the
    CPU analogue of a wavefront's diagonal reordering — see the module
    docstring).  Traceback state is assembled as 4-bit nibbles (2-bit
    direction + the two gap-extension flags) packed two cells per byte,
    and every tie is broken exactly as the reference ``row_update`` does:
    horizontal gap first, then vertical, then diagonal, with gap
    "extends" flags resolved in favour of extension on equality.

    Returns ``(best, best_i, best_j, final, packed)`` where ``best*``
    track the argmax-first row maxima (meaningful when ``track_best``),
    ``final`` is ``V(n, m)``, and ``packed`` is the ``(n, ceil((m+1)/2))``
    packed pointer slab (a workspace view — consume before the workspace
    is released) or ``None``.  ``matrix_out``, when given, receives every
    V row (shape ``(n+1, m+1)``, any integer dtype).
    """
    m = len(target)
    n = len(query)
    dtype = kernel_dtype(scoring, max(m, n))
    negf = neg_inf(dtype)
    o = int(scoring.gap_open)
    e = int(scoring.gap_extend)
    sub_cols = matrix_for(scoring, dtype)[:, target.codes]
    ke, oke = gap_ladders(scoring, m + 1, dtype)
    q_codes = query.codes

    v_prev = ws.array("fs_v", (m + 1,), dtype)
    u_prev = ws.array("fs_u", (m + 1,), dtype)
    a = ws.array("fs_a", (m,), dtype)  # v_prev - o, then the U row
    b = ws.array("fs_b", (m,), dtype)  # u_prev - e
    c = ws.array("fs_c", (m,), dtype)  # diagonal candidates
    g = ws.array("fs_g", (m,), dtype)  # V0 = max(U, diag)
    h = ws.array("fs_h", (m,), dtype)  # the H row
    acc = ws.array("fs_acc", (m + 1,), dtype)  # prefix-scan state
    if local:
        v_prev[:] = 0
    else:
        v_prev[:] = boundary_scores(m, scoring, free=False)
    u_prev[0] = negf
    u_prev[1:] = negf
    if matrix_out is not None:
        matrix_out[0] = v_prev

    packed: Optional[np.ndarray] = None
    if keep_pointers:
        half = (m + 2) // 2
        packed = ws.array("fs_pk", (max(n, 1), half), np.uint8)
        boolmap = np.dtype(bool)
        ue = ws.array("fs_ue", (m,), boolmap)
        fv = ws.array("fs_fv", (m,), boolmap)
        fh = ws.array("fs_fh", (m,), boolmap)
        vd = ws.array("fs_vd", (m,), boolmap)
        tv = ws.array("fs_tv", (m,), boolmap)
        tb = ws.array("fs_tb", (m,), boolmap)
        hx = ws.array("fs_hx", (m,), boolmap)
        nz = ws.array("fs_nz", (m,), boolmap)
        codes = ws.array("fs_codes", (m + 1,), np.uint8)
        t8 = ws.array("fs_t8", (m,), np.uint8)
        codes[0] = DIR_NONE
        dirs = codes[1:]

    best = 0
    best_i = 0
    best_j = 0
    for i in range(1, n + 1):
        boundary = 0 if local else -scoring.gap_cost(i)
        np.subtract(v_prev[1:], o, out=a)
        np.subtract(u_prev[1:], e, out=b)
        if keep_pointers:
            # U extends a vertical gap iff the extension side wins the
            # max (ties side with extension, as in the oracle).
            np.greater_equal(b, a, out=ue)
        np.maximum(a, b, out=a)
        np.add(v_prev[:-1], sub_cols[q_codes[i - 1]], out=c)
        if keep_pointers:
            # V0 == U (pre-clamp), i.e. the vertical candidate wins.
            np.greater_equal(a, c, out=fv)
        np.maximum(a, c, out=g)
        if local:
            np.maximum(g, 0, out=g)
        acc[0] = boundary
        np.add(g, ke[1 : m + 1], out=acc[1:])
        np.maximum.accumulate(acc, out=acc)
        np.subtract(acc[:m], oke[:m], out=h)
        if keep_pointers:
            hx[0] = False
            if m > 1:
                # H(j) == H(j-1) - e collapses to equal prefix maxima.
                np.equal(acc[1:m], acc[: m - 1], out=hx[1:])
        # All reads of the previous row are done: write V in place.
        np.maximum(g, h, out=v_prev[1:])
        v_prev[0] = boundary
        u_prev[1:] = a
        if keep_pointers:
            np.equal(v_prev[1:], h, out=fh)
            np.equal(v_prev[1:], c, out=vd)
            np.greater(fv, fh, out=tv)  # vertical, unless horizontal won
            np.bitwise_or(fh, tv, out=tb)
            np.greater(vd, tb, out=tb)  # diagonal is what's left
            fh8 = fh.view(np.uint8)
            tv8 = tv.view(np.uint8)
            td8 = tb.view(np.uint8)
            np.left_shift(fh8, 1, out=dirs)  # DIR_HORIZ
            np.add(dirs, td8, out=dirs)  # DIR_DIAG
            np.multiply(tv8, 3, out=t8)  # DIR_VERT
            np.add(dirs, t8, out=dirs)
            if local:
                np.not_equal(v_prev[1:], 0, out=nz)
                np.multiply(dirs, nz.view(np.uint8), out=dirs)
            np.left_shift(hx.view(np.uint8), 2, out=t8)  # FLAG_H_EXTEND
            np.bitwise_or(dirs, t8, out=dirs)
            np.left_shift(ue.view(np.uint8), 3, out=t8)  # FLAG_U_EXTEND
            np.bitwise_or(dirs, t8, out=dirs)
            pack_nibbles(codes, packed[i - 1])
        if matrix_out is not None:
            matrix_out[i] = v_prev
        if track_best:
            j = int(np.argmax(v_prev))
            vj = int(v_prev[j])
            if vj > best:
                best = vj
                best_i = i
                best_j = j
    return best, best_i, best_j, int(v_prev[m]), packed


def packed_traceback(
    packed: np.ndarray,
    target: Sequence,
    query: Sequence,
    start_i: int,
    start_j: int,
    pad_to_origin: bool,
) -> Tuple[Cigar, int, int]:
    """Walk packed-nibble pointer rows (same contract as the oracle walk).

    ``packed[i - 1]`` holds row ``i`` as 4-bit codes for columns 0..m.
    Returns ``(cigar, end_i, end_j)`` exactly like the reference
    ``traceback`` with zero row offsets.
    """
    ops: List[str] = []
    i, j = start_i, start_j
    state = "V"
    t_codes = target.codes
    q_codes = query.codes
    while i > 0 and j > 0:
        ptr = nibble_at(packed[i - 1], j)
        if state == "V":
            direction = ptr & _DIR_MASK
            if direction == DIR_NONE:
                break
            if direction == DIR_DIAG:
                same = (
                    t_codes[j - 1] == q_codes[i - 1] and t_codes[j - 1] < 4
                )
                ops.append("=" if same else "X")
                i -= 1
                j -= 1
            elif direction == DIR_HORIZ:
                state = "H"
            else:
                state = "U"
        elif state == "H":
            ops.append("D")
            state = "H" if ptr & FLAG_H_EXTEND else "V"
            j -= 1
        else:  # state == "U"
            ops.append("I")
            state = "U" if ptr & FLAG_U_EXTEND else "V"
            i -= 1

    if pad_to_origin:
        ops.extend("D" * j)
        ops.extend("I" * i)
        i = 0
        j = 0

    return Cigar.from_ops(reversed(ops)), i, j
