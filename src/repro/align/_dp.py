"""Shared dynamic-programming machinery for the alignment kernels.

All kernels use the affine-gap recurrences of the paper (equations 1-3)::

    H(i,j) = max(V(i,j-1) - o, H(i,j-1) - e)      # gap along the target
    U(i,j) = max(V(i-1,j) - o, U(i-1,j) - e)      # gap along the query
    V(i,j) = max(H(i,j), U(i,j), V(i-1,j-1) + W(q_i, r_j))

with rows ``i`` over the query and columns ``j`` over the target.  The
paper calls ``H`` "insertion" and ``U`` "deletion"; CIGAR emission maps a
horizontal move (consuming a target base) to ``D`` and a vertical move
(consuming a query base) to ``I``, the SAM query-centric convention.

Rows are computed with numpy.  The only within-row dependency is ``H``,
which (because ``o >= e``) unrolls to a prefix maximum::

    H(i,j) = max_{0 <= k < j} (V'(i,k) + k*e) - o - (j-1)*e

where ``V'`` is the row value *before* considering ``H`` — so a single
``np.maximum.accumulate`` computes the whole row.

Traceback pointers are one byte per cell, mirroring the 4-bit hardware
pointers (2 bits of direction, 2 bits of affine-gap origin).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..genome.sequence import Sequence
from .cigar import Cigar
from .scoring import ScoringScheme

#: Effectively minus infinity, with headroom so ``NEG_INF + k*e`` cannot
#: overflow or accidentally win a maximum.
NEG_INF = np.int64(-(2**42))

#: Pointer encoding (low two bits): how V was obtained.
DIR_NONE = 0  # local zero / boundary: traceback stops
DIR_DIAG = 1
DIR_HORIZ = 2  # from H: gap consuming target ('D')
DIR_VERT = 3  # from U: gap consuming query ('I')

#: Pointer flags (high bits): whether the gap state extends a prior gap.
FLAG_H_EXTEND = 4
FLAG_U_EXTEND = 8

_DIR_MASK = 3


def substitution_columns(
    target: Sequence, scoring: ScoringScheme
) -> np.ndarray:
    """Precomputed substitution rows against a fixed target, ``int64``.

    Returns a read-only ``(ALPHABET_SIZE, m)`` array where row ``b`` is
    ``W[b, target]``.  Row-wise kernels then fetch the whole row for query
    base ``q_i`` with a plain index (``columns[q_i]``, a view) — the
    fancy-index gather over the target codes runs once per kernel call
    instead of once per DP row.
    """
    columns = scoring.matrix64[:, target.codes]
    columns.setflags(write=False)
    return columns


def boundary_scores(
    length: int, scoring: ScoringScheme, free: bool
) -> np.ndarray:
    """V values along a DP boundary (row 0 or column 0), index 0..length.

    ``free=True`` (local alignment) gives zeros; otherwise position ``k``
    costs an affine gap of length ``k`` from the origin.
    """
    values = np.zeros(length + 1, dtype=np.int64)
    if not free and length > 0:
        k = np.arange(1, length + 1, dtype=np.int64)
        values[1:] = -(scoring.gap_open + (k - 1) * scoring.gap_extend)
    return values


def row_update(
    v_prev: np.ndarray,
    u_prev: np.ndarray,
    substitution_row: np.ndarray,
    scoring: ScoringScheme,
    v_boundary: np.int64,
    local: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compute one DP row.

    Args:
        v_prev: V of the previous row, length ``m + 1`` (index 0 is the
            left boundary of that row).
        u_prev: U of the previous row, same shape.
        substitution_row: substitution scores ``W(q_i, r_j)`` for
            ``j = 1..m`` (length ``m``).
        scoring: gap penalties.
        v_boundary: V value of this row's column-0 boundary cell.
        local: clamp scores at zero (Smith-Waterman) when True.

    Returns:
        ``(v_row, u_row, h_row, pointers)`` — value arrays of length
        ``m + 1`` and a ``uint8`` pointer array of the same length
        (index 0 is always ``DIR_NONE``).
    """
    o = np.int64(scoring.gap_open)
    e = np.int64(scoring.gap_extend)
    m = substitution_row.size

    u_row = np.empty(m + 1, dtype=np.int64)
    u_row[0] = NEG_INF
    np.maximum(v_prev[1:] - o, u_prev[1:] - e, out=u_row[1:])
    u_extends = u_row[1:] == u_prev[1:] - e

    diag = v_prev[:-1] + substitution_row
    v0 = np.empty(m + 1, dtype=np.int64)
    v0[0] = v_boundary
    np.maximum(u_row[1:], diag, out=v0[1:])
    from_vert = v0[1:] == u_row[1:]
    if local:
        np.maximum(v0[1:], 0, out=v0[1:])

    # Prefix-scan computation of H over the row (see module docstring).
    k = np.arange(m + 1, dtype=np.int64)
    running = np.maximum.accumulate(v0 + k * e)
    h_row = np.empty(m + 1, dtype=np.int64)
    h_row[0] = NEG_INF
    h_row[1:] = running[:-1] - o - (k[1:] - 1) * e
    h_extends = np.zeros(m + 1, dtype=bool)
    if m > 1:
        h_extends[2:] = h_row[2:] == h_row[1:-1] - e

    v_row = np.maximum(v0, h_row)
    v_row[0] = v_boundary
    if local:
        np.maximum(v_row, 0, out=v_row)

    pointers = np.zeros(m + 1, dtype=np.uint8)
    # Priority on ties: horizontal gap, then vertical gap, then diagonal —
    # any consistent order yields a valid optimal path.
    from_horiz = v_row[1:] == h_row[1:]
    took_vert = from_vert & ~from_horiz
    took_diag = ~from_horiz & ~took_vert & (v_row[1:] == diag)
    dirs = np.zeros(m, dtype=np.uint8)
    dirs[took_diag] = DIR_DIAG
    dirs[from_horiz] = DIR_HORIZ
    dirs[took_vert] = DIR_VERT
    if local:
        dirs[v_row[1:] == 0] = DIR_NONE
    pointers[1:] = (
        dirs
        | (h_extends[1:].astype(np.uint8) * FLAG_H_EXTEND)
        | (u_extends.astype(np.uint8) * FLAG_U_EXTEND)
    )
    return v_row, u_row, h_row, pointers


def traceback(
    pointers: List[np.ndarray],
    row_offsets: List[int],
    target: Sequence,
    query: Sequence,
    start_i: int,
    start_j: int,
    pad_to_origin: bool,
) -> Tuple[Cigar, int, int]:
    """Walk pointer rows from cell ``(start_i, start_j)`` back to a stop.

    Args:
        pointers: per-row pointer arrays; ``pointers[i - 1]`` covers row
            ``i`` and its index 0 corresponds to column ``row_offsets[i-1]``.
        row_offsets: first column (0-based cell column minus one... the
            column index of pointer slot 0) for each row.
        target, query: the tile sequences (0-indexed; cell ``(i, j)``
            aligns ``query[i-1]`` with ``target[j-1]``).
        start_i, start_j: 1-based cell to start from.
        pad_to_origin: extension mode — when the walk reaches row 0 or
            column 0 away from the origin, pad with gap columns so the
            path starts exactly at ``(0, 0)``.

    Returns:
        ``(cigar, end_i, end_j)`` where the CIGAR reads forward (from the
        path start to ``(start_i, start_j)``) and ``(end_i, end_j)`` is the
        1-based cell *after* which the path begins (``(0, 0)`` when padded).
    """
    ops: List[str] = []
    i, j = start_i, start_j
    state = "V"
    t_codes = target.codes
    q_codes = query.codes

    def pointer_at(row: int, col: int) -> int:
        base = row_offsets[row - 1]
        idx = col - base
        row_ptrs = pointers[row - 1]
        if idx < 0 or idx >= row_ptrs.size:
            return DIR_NONE
        return int(row_ptrs[idx])

    while i > 0 and j > 0:
        ptr = pointer_at(i, j)
        if state == "V":
            direction = ptr & _DIR_MASK
            if direction == DIR_NONE:
                break
            if direction == DIR_DIAG:
                same = t_codes[j - 1] == q_codes[i - 1] and t_codes[j - 1] < 4
                ops.append("=" if same else "X")
                i -= 1
                j -= 1
            elif direction == DIR_HORIZ:
                state = "H"
            else:
                state = "U"
        elif state == "H":
            ops.append("D")
            state = "H" if ptr & FLAG_H_EXTEND else "V"
            j -= 1
        else:  # state == "U"
            ops.append("I")
            state = "U" if ptr & FLAG_U_EXTEND else "V"
            i -= 1

    if pad_to_origin:
        ops.extend("D" * j)
        ops.extend("I" * i)
        i = 0
        j = 0

    return Cigar.from_ops(reversed(ops)), i, j
