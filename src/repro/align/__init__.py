"""Alignment kernels: scoring, reference DP, banded SW, ungapped, X-drop."""

from .alignment import Alignment, AnchorHit
from .banded_sw import BswResult, band_cells, bsw_batch, bsw_tile
from .cigar import Cigar
from .matrices import (
    HOXD70_MATRIX,
    LASTZ_DEFAULT_MATRIX,
    hoxd70,
    lastz_default,
    unit,
)
from .needleman_wunsch import align_global, global_score
from .scoring import ScoringScheme
from .smith_waterman import align_local, best_score, score_matrix
from .stats import (
    ScoreStatistics,
    bit_score,
    estimate_k,
    evalue,
    expected_score,
    gap_length_distribution,
    karlin_lambda,
    score_for_evalue,
)
from .ungapped import UngappedResult, ungapped_extend, ungapped_extend_batch
from .xdrop import XDropExtension, xdrop_extend

__all__ = [
    "Alignment",
    "AnchorHit",
    "BswResult",
    "band_cells",
    "bsw_batch",
    "bsw_tile",
    "Cigar",
    "HOXD70_MATRIX",
    "LASTZ_DEFAULT_MATRIX",
    "hoxd70",
    "lastz_default",
    "unit",
    "align_global",
    "global_score",
    "ScoringScheme",
    "align_local",
    "best_score",
    "score_matrix",
    "ScoreStatistics",
    "bit_score",
    "estimate_k",
    "evalue",
    "expected_score",
    "gap_length_distribution",
    "karlin_lambda",
    "score_for_evalue",
    "UngappedResult",
    "ungapped_extend",
    "ungapped_extend_batch",
    "XDropExtension",
    "xdrop_extend",
]
