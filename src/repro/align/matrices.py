"""Stock substitution matrices and scoring-scheme constructors."""

from __future__ import annotations

import numpy as np

from .scoring import ScoringScheme

#: The Darwin-WGA / LASTZ default substitution matrix (paper Table IIa).
#: Order is A, C, G, T.
LASTZ_DEFAULT_MATRIX = np.array(
    [
        [91, -90, -25, -100],
        [-90, 100, -100, -25],
        [-25, -100, 100, -90],
        [-100, -25, -90, 91],
    ],
    dtype=np.int32,
)

#: HOXD70, the matrix derived by Chiaromonte et al. that LASTZ's default
#: approximates; included for parameter studies.
HOXD70_MATRIX = np.array(
    [
        [91, -114, -31, -123],
        [-114, 100, -125, -31],
        [-31, -125, 100, -114],
        [-123, -31, -114, 91],
    ],
    dtype=np.int32,
)


def lastz_default() -> ScoringScheme:
    """The paper's default scheme: Table IIa matrix, o=430, e=30."""
    return ScoringScheme(
        matrix=LASTZ_DEFAULT_MATRIX, gap_open=430, gap_extend=30
    )


def hoxd70(gap_open: int = 430, gap_extend: int = 30) -> ScoringScheme:
    """HOXD70 with LASTZ-style affine gaps."""
    return ScoringScheme(
        matrix=HOXD70_MATRIX, gap_open=gap_open, gap_extend=gap_extend
    )


def unit(
    match: int = 1,
    mismatch: int = -1,
    gap_open: int = 2,
    gap_extend: int = 1,
) -> ScoringScheme:
    """A simple unit scheme, convenient for tests and small examples."""
    if match <= 0:
        raise ValueError("match score must be positive")
    matrix = np.full((4, 4), mismatch, dtype=np.int32)
    np.fill_diagonal(matrix, match)
    return ScoringScheme(
        matrix=matrix, gap_open=gap_open, gap_extend=gap_extend
    )
