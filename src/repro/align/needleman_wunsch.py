"""Full-matrix Needleman-Wunsch global alignment with affine gaps.

Used as the oracle for GACT/GACT-X tile computations (which use
Needleman-Wunsch scoring so that values may go negative, paper section
III-D) and by tests.

Runs on the vectorised sweep in :mod:`repro.align._dp` (narrow exact
dtype, prefix-scan H, packed 4-bit traceback nibbles); the original
row-at-a-time code is preserved as ``align_global_reference`` in
:mod:`repro.align._reference` and fuzzed against this implementation by
``tests/align/test_differential.py``.
"""

from __future__ import annotations

from ..genome.sequence import Sequence
from . import _dp
from .alignment import Alignment
from .cigar import Cigar
from .scoring import ScoringScheme


def align_global(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> Alignment:
    """Optimal global alignment of the two full sequences."""
    m = len(target)
    n = len(query)
    if m == 0 and n == 0:
        return Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=0,
            target_end=0,
            query_start=0,
            query_end=0,
            score=0,
            cigar=Cigar(()),
        )
    if m == 0 or n == 0:
        length = max(m, n)
        op = "I" if m == 0 else "D"
        return Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=0,
            target_end=m,
            query_start=0,
            query_end=n,
            score=-scoring.gap_cost(length),
            cigar=Cigar.from_runs([(op, length)]),
        )

    ws = _dp.acquire_workspace()
    try:
        _, _, _, score, packed = _dp.affine_sweep(
            target,
            query,
            scoring,
            local=False,
            track_best=False,
            keep_pointers=True,
            ws=ws,
        )
        cigar, _, _ = _dp.packed_traceback(
            packed, target, query, n, m, pad_to_origin=True
        )
    finally:
        _dp.release_workspace(ws)
    return Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=0,
        target_end=m,
        query_start=0,
        query_end=n,
        score=score,
        cigar=cigar,
    )


def global_score(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> int:
    """Optimal global alignment score (O(m) memory, no traceback)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return -scoring.gap_cost(max(m, n))
    ws = _dp.acquire_workspace()
    try:
        _, _, _, score, _ = _dp.affine_sweep(
            target,
            query,
            scoring,
            local=False,
            track_best=False,
            keep_pointers=False,
            ws=ws,
        )
    finally:
        _dp.release_workspace(ws)
    return score
