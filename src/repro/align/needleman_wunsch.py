"""Full-matrix Needleman-Wunsch global alignment with affine gaps.

Used as the oracle for GACT/GACT-X tile computations (which use
Needleman-Wunsch scoring so that values may go negative, paper section
III-D) and by tests.
"""

from __future__ import annotations

import numpy as np

from ..genome.sequence import Sequence
from . import _dp
from .alignment import Alignment
from .cigar import Cigar
from .scoring import ScoringScheme


def align_global(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> Alignment:
    """Optimal global alignment of the two full sequences."""
    m = len(target)
    n = len(query)
    if m == 0 and n == 0:
        return Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=0,
            target_end=0,
            query_start=0,
            query_end=0,
            score=0,
            cigar=Cigar(()),
        )
    if m == 0 or n == 0:
        length = max(m, n)
        op = "I" if m == 0 else "D"
        return Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=0,
            target_end=m,
            query_start=0,
            query_end=n,
            score=-scoring.gap_cost(length),
            cigar=Cigar.from_runs([(op, length)]),
        )

    v_prev = _dp.boundary_scores(m, scoring, free=False)
    u_prev = np.full(m + 1, _dp.NEG_INF)
    pointer_rows = []
    sub_columns = _dp.substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        boundary = np.int64(-scoring.gap_cost(i))
        v_prev, u_prev, _, pointers = _dp.row_update(
            v_prev, u_prev, subs, scoring, boundary, local=False
        )
        pointer_rows.append(pointers)

    score = int(v_prev[m])
    cigar, _, _ = _dp.traceback(
        pointer_rows, [0] * n, target, query, n, m, pad_to_origin=True
    )
    return Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=0,
        target_end=m,
        query_start=0,
        query_end=n,
        score=score,
        cigar=cigar,
    )


def global_score(
    target: Sequence, query: Sequence, scoring: ScoringScheme
) -> int:
    """Optimal global alignment score (O(m) memory, no traceback)."""
    m = len(target)
    n = len(query)
    if m == 0 or n == 0:
        return -scoring.gap_cost(max(m, n))
    v_prev = _dp.boundary_scores(m, scoring, free=False)
    u_prev = np.full(m + 1, _dp.NEG_INF)
    sub_columns = _dp.substitution_columns(target, scoring)
    for i in range(1, n + 1):
        subs = sub_columns[query.codes[i - 1]]
        v_prev, u_prev, _, _ = _dp.row_update(
            v_prev,
            u_prev,
            subs,
            scoring,
            np.int64(-scoring.gap_cost(i)),
            local=False,
        )
    return int(v_prev[m])
