"""Opt-in cProfile capture for the parent and for worker processes.

``repro align --profile DIR`` wraps the parent run in
:func:`profile_capture` and installs a per-worker profiler
(:func:`install_worker_profile`) through the execution engine's pool
initializer.  Worker profiles are flushed to
``DIR/profile-worker-<pid>.pstats`` after every task rather than at
process exit, because multiprocessing children terminate via
``os._exit`` and never run ``atexit`` hooks — an exit-time dump would
silently produce nothing.

All files are standard :mod:`pstats` dumps::

    python -m pstats out/profile-worker-1234.pstats
"""

from __future__ import annotations

import cProfile
import os
import pstats
from contextlib import contextmanager
from io import StringIO
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = [
    "flush_worker_profile",
    "install_worker_profile",
    "profile_capture",
    "profile_summary",
    "worker_profile_active",
]

#: The installed per-process profiler and its output directory.
_WORKER_PROFILE: Optional[Tuple[cProfile.Profile, Path]] = None


@contextmanager
def profile_capture(path: Union[str, Path]):
    """Profile the enclosed block and dump pstats to ``path``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(target))


def install_worker_profile(directory: Union[str, Path]) -> None:
    """Start profiling this process; idempotent per process.

    Intended as (part of) a process-pool initializer.  The profiler
    runs for the process's lifetime; call :func:`flush_worker_profile`
    at task boundaries to persist the accumulated stats.
    """
    global _WORKER_PROFILE
    if _WORKER_PROFILE is not None:
        return
    profiler = cProfile.Profile()
    profiler.enable()
    _WORKER_PROFILE = (profiler, Path(directory))


def worker_profile_active() -> bool:
    return _WORKER_PROFILE is not None


def flush_worker_profile() -> Optional[Path]:
    """Dump the accumulated profile; returns the path (None if off).

    Safe to call often: the profiler is paused only for the dump, and
    each flush overwrites the previous snapshot for this pid, so the
    final file always holds the full cumulative profile.
    """
    if _WORKER_PROFILE is None:
        return None
    profiler, directory = _WORKER_PROFILE
    profiler.disable()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"profile-worker-{os.getpid()}.pstats"
        profiler.dump_stats(str(path))
    finally:
        profiler.enable()
    return path


def uninstall_worker_profile() -> None:
    """Stop and drop the per-process profiler (tests / reconfigure)."""
    global _WORKER_PROFILE
    if _WORKER_PROFILE is not None:
        _WORKER_PROFILE[0].disable()
        _WORKER_PROFILE = None


def profile_summary(path: Union[str, Path], top: int = 10) -> str:
    """Top functions by cumulative time from a pstats dump."""
    buffer = StringIO()
    stats = pstats.Stats(str(path), stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()
