"""Hierarchical wall-clock span tracing.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans are
context managers::

    tracer = Tracer()
    with tracer.span("align", aligner="darwin") as span:
        with tracer.span("seed") as seed:
            seed.inc("seed_hits", 1_000_000)
        span.inc("alignments", 12)

Each span carries monotonic wall-clock timestamps
(:func:`time.perf_counter`), free-form attributes set at creation or via
:meth:`Span.set`, and integer/float counters accumulated via
:meth:`Span.inc`.  Children nest under whichever span is open on the
tracer's stack, so instrumented library code composes without any global
state: callers pass a tracer down, and code that receives the default
:data:`NULL_TRACER` pays only the cost of creating one no-op context
manager per span (shared singleton — no allocation, no clock reads).

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed region: name, attributes, counters and child spans."""

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "children",
        "start",
        "end",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer", attrs: Dict) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.children: List[Span] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self._tracer = tracer

    # -- context manager protocol ------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._clock()
        self._tracer._pop(self)
        return False

    # -- recording ---------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes on the span."""
        self.attrs.update(attrs)
        return self

    def inc(self, counter: str, amount: float = 1) -> "Span":
        """Accumulate ``amount`` onto a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    # -- introspection -----------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds; 0.0 while the span is still open."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"counters={self.counters})"
        )


class Tracer:
    """Records a forest of nested spans against a monotonic clock.

    ``clock`` is any zero-argument callable returning seconds as a float;
    it defaults to :func:`time.perf_counter` and is injectable so tests
    can drive deterministic timestamps.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> Span:
        """Create a span; entering it nests it under the open span."""
        return Span(name, self, attrs)

    def now(self) -> float:
        """Seconds since the tracer's epoch on its own clock.

        Anchors spans recorded by a *different* tracer (e.g. a worker
        process) onto this tracer's timeline: capture ``now()`` when the
        remote work is dispatched and shift the returned spans by it.
        """
        return self._clock() - self.epoch

    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def inc(self, counter: str, amount: float = 1) -> None:
        """Accumulate onto the innermost open span (no-op outside one)."""
        current = self.current()
        if current is not None:
            current.inc(counter, amount)

    def walk(self):
        """Yield every recorded span, depth first across all roots."""
        for root in self.roots:
            yield from root.walk()

    # -- span bookkeeping (called by Span) ---------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits rather than corrupt the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    name = "null"
    attrs: Dict = {}
    counters: Dict[str, float] = {}
    children: List = []
    start = None
    end = None
    duration = 0.0
    closed = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def inc(self, counter: str, amount: float = 1) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing — safe default for every hot path.

    Every :meth:`span` call returns one shared no-op span, so
    instrumented code runs without clock reads or per-span allocation
    when tracing is disabled.
    """

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def now(self) -> float:
        return 0.0

    def current(self) -> None:
        return None

    def inc(self, counter: str, amount: float = 1) -> None:
        return None

    def walk(self):
        return iter(())


#: Shared no-op tracer; use as the default for instrumented functions.
NULL_TRACER = NullTracer()
