"""Metric primitives and derived pipeline metrics.

Primitives (:class:`Counter`, :class:`Gauge`, :class:`Histogram`,
collected in a :class:`MetricRegistry`) are deliberately minimal and
dependency free.  The derived helpers compute the numbers the paper's
evaluation reports: per-stage throughput in cells/s (Scrooge's headline
cross-platform metric) and the seeds -> anchors -> alignments funnel
with its absorption rate (Table V shape).

``funnel_metrics`` duck-types its workload argument (anything with the
:class:`repro.core.pipeline.Workload` counter attributes) so this module
stays import-free of the pipeline layers it measures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Union

from .tracer import Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "canonical_bucket_edges",
    "funnel_metrics",
    "stage_summary",
]


def canonical_bucket_edges(
    low: float = 1e-6, high: float = 1e4, factor: float = 2.0
) -> tuple:
    """The shared log-spaced bucket grid every histogram snaps to.

    Per-worker histograms merged in the parent must agree on bucket
    bounds or their merged distribution is meaningless; deriving edges
    from each worker's observed range would make them diverge.  One
    canonical grid (seconds-flavoured by default: 1 µs up to 10 000 s,
    doubling) sidesteps the problem, and because histograms also retain
    raw values, re-bucketing on merge is exact rather than approximate.
    """
    if low <= 0 or high <= low or factor <= 1.0:
        raise ValueError("need 0 < low < high and factor > 1")
    edges = [low]
    while edges[-1] < high:
        edges.append(edges[-1] * factor)
    return tuple(edges)


_DEFAULT_EDGES = canonical_bucket_edges()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. queue depth, utilisation)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Streaming distribution: count/sum/min/max plus exact quantiles.

    Observations are kept (these runs record at most thousands of
    values), so quantiles are exact rather than sketched.  Bucket
    counts over the :func:`canonical_bucket_edges` grid are maintained
    alongside; because every histogram shares the same grid — and
    because :meth:`merge` re-buckets from raw values when it does not —
    merged per-worker histograms have exact buckets *and* exact
    percentiles.
    """

    __slots__ = ("name", "values", "edges", "_bucket_counts")

    def __init__(self, name: str, edges: Optional[tuple] = None) -> None:
        self.name = name
        self.values: List[float] = []
        self.edges = _DEFAULT_EDGES if edges is None else tuple(edges)
        # One count per edge ("<= edge"), plus a final overflow bucket.
        self._bucket_counts = [0] * (len(self.edges) + 1)

    def _bucket_index(self, value: float) -> int:
        low, high = 0, len(self.edges)
        while low < high:
            mid = (low + high) // 2
            if value <= self.edges[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    def observe(self, value: float) -> None:
        value = float(value)
        self.values.append(value)
        self._bucket_counts[self._bucket_index(value)] += 1

    def bucket_counts(self) -> Dict[str, int]:
        """Non-cumulative counts keyed by upper bucket edge."""
        out: Dict[str, int] = {}
        for edge, count in zip(self.edges, self._bucket_counts):
            if count:
                out[f"{edge:g}"] = count
        if self._bucket_counts[-1]:
            out["inf"] = self._bucket_counts[-1]
        return out

    def merge(self, other: Union["Histogram", Dict]) -> "Histogram":
        """Fold another histogram (or an event payload) into this one.

        Accepts a :class:`Histogram` — even one built on different
        edges: its *raw* values are re-bucketed onto this histogram's
        canonical grid, so the merge is exact, not a lossy
        count-redistribution — or a dict payload carrying a ``values``
        list (the telemetry-bus wire format).
        """
        if isinstance(other, Histogram):
            incoming = other.values
        else:
            incoming = other.get("values", [])
        for value in incoming:
            self.observe(value)
        return self

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        """Exact q-quantile (nearest-rank); 0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(0, rank)]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricRegistry:
    """Named metric namespace; creates each metric on first use."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every registered metric."""
        out: Dict[str, object] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def funnel_metrics(workload, alignments: int) -> Dict[str, float]:
    """The seeds -> anchors -> alignments funnel for one run.

    ``workload`` is anything exposing the
    :class:`~repro.core.pipeline.Workload` counters (``seed_hits``,
    ``filter_tiles``, ``anchors``, ``absorbed_anchors``, ...).  Ratios
    are 0.0 wherever the upstream stage produced nothing.
    """
    extended = workload.anchors - workload.absorbed_anchors
    return {
        "seed_hits": int(workload.seed_hits),
        "filter_tiles": int(workload.filter_tiles),
        "anchors": int(workload.anchors),
        "anchors_extended": int(extended),
        "absorbed_anchors": int(workload.absorbed_anchors),
        "alignments": int(alignments),
        "filter_pass_rate": _ratio(workload.anchors, workload.filter_tiles),
        "absorption_rate": _ratio(workload.absorbed_anchors, workload.anchors),
        "alignments_per_extended_anchor": _ratio(alignments, extended),
        "anchors_per_seed_hit": _ratio(workload.anchors, workload.seed_hits),
    }


def stage_summary(
    spans: Iterable[Span],
    rate_counters: Optional[Iterable[str]] = None,
) -> Dict[str, Dict]:
    """Aggregate a span tree (or forest) by span name.

    Returns ``{name: {"count", "seconds", "counters", "rates"}}`` where
    ``rates`` holds per-second throughput for each counter named in
    ``rate_counters`` (default: every counter ending in ``cells``,
    ``tiles`` or ``hits`` — the pipeline's work units, giving the
    cells/s-per-stage numbers directly).

    Only spans whose parent has a *different* name contribute seconds,
    so recursive or repeated same-name nesting never double-counts time.
    """

    def _is_rate(counter: str) -> bool:
        if rate_counters is not None:
            return counter in set(rate_counters)
        return counter.endswith(("cells", "tiles", "hits"))

    stages: Dict[str, Dict] = {}
    def visit(span: Span, parent_name: Optional[str]) -> None:
        if span.name != parent_name:
            stage = stages.setdefault(
                span.name,
                {"count": 0, "seconds": 0.0, "counters": {}},
            )
            stage["count"] += 1
            stage["seconds"] += span.duration
            for counter, value in span.counters.items():
                stage["counters"][counter] = (
                    stage["counters"].get(counter, 0) + value
                )
        for child in span.children:
            visit(child, span.name)

    for span in spans:
        visit(span, None)

    for stage in stages.values():
        rates: Dict[str, float] = {}
        if stage["seconds"] > 0:
            for counter, value in stage["counters"].items():
                if _is_rate(counter):
                    rates[f"{counter}_per_sec"] = value / stage["seconds"]
        stage["rates"] = rates
    return stages
