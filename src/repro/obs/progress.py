"""Live progress rendering for long runs.

:class:`ProgressRenderer` maintains a single TTY status line —
units done/in-flight/retried, cells/s throughput and an ETA — updated
in place (carriage return, no scroll) and throttled to a few frames a
second.  Recovery actions surface as persisted ``note`` lines above the
status line, so a retry storm is visible while it happens rather than
only in the end-of-run recovery summary.

:data:`NO_PROGRESS` is the shared no-op sink (the progress counterpart
of :data:`repro.obs.tracer.NULL_TRACER`): library code calls progress
methods unconditionally and pays one no-op method call when progress is
off.  Rendering is TTY-aware: on a non-interactive stream the renderer
disables itself unless explicitly forced on, so batch logs never fill
with control characters.

Thread safety: all mutating methods take an internal lock, so the
telemetry bus pump thread and the main gather loop can both feed the
same renderer.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from typing import Callable, Optional, TextIO

__all__ = ["NO_PROGRESS", "NullProgress", "ProgressRenderer"]


def _format_count(value: float) -> str:
    """Human scale: 950, 8.2k, 1.3M, 2.0G."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:,.0f}"


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class NullProgress:
    """Shared do-nothing progress sink: the progress-off fast path."""

    __slots__ = ()

    enabled = False

    def begin(self, label: str, total: Optional[int] = None) -> None:
        return None

    def advance(self, units: int = 0, cells: float = 0) -> None:
        return None

    def set_in_flight(self, count: int) -> None:
        return None

    def retried(self, key: str, cause: str, attempt: int) -> None:
        return None

    def fell_back(self, key: str, cause: str) -> None:
        return None

    def note(self, text: str) -> None:
        return None

    def close(self) -> None:
        return None


#: Shared no-op sink; use as the default for instrumented functions.
NO_PROGRESS = NullProgress()


class ProgressRenderer:
    """Single-line live status: ``align 3/8 units · 2 in flight · ...``.

    ``enabled=None`` (the default) auto-detects: render only when
    ``stream`` is a TTY.  ``clock`` is injectable for deterministic
    tests; ``min_interval`` throttles repaints so hot loops don't spend
    their time writing terminal escapes.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        enabled: Optional[bool] = None,
        clock: Callable[[], float] = perf_counter,
        min_interval: float = 0.1,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self._stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self._clock = clock
        self._min_interval = min_interval
        self._lock = threading.Lock()
        self._label = ""
        self._total: Optional[int] = None
        self._started = clock()
        self._last_render = float("-inf")
        self._line_width = 0
        self.units_done = 0
        self.cells = 0.0
        self.in_flight = 0
        self.retries = 0
        self.fallbacks = 0

    # -- feeding -----------------------------------------------------
    def begin(self, label: str, total: Optional[int] = None) -> None:
        """Start (or restart) a phase; resets per-phase counters."""
        with self._lock:
            self._label = label
            self._total = total
            self._started = self._clock()
            self.units_done = 0
            self.cells = 0.0
            self.in_flight = 0
            self._render(force=True)

    def advance(self, units: int = 0, cells: float = 0) -> None:
        with self._lock:
            self.units_done += units
            self.cells += cells
            self._render()

    def set_in_flight(self, count: int) -> None:
        with self._lock:
            self.in_flight = count
            self._render()

    def retried(self, key: str, cause: str, attempt: int) -> None:
        with self._lock:
            self.retries += 1
            self._note(f"retry #{attempt} [{key}] after {cause}")

    def fell_back(self, key: str, cause: str) -> None:
        with self._lock:
            self.fallbacks += 1
            self._note(f"serial fallback [{key}] after {cause}")

    def note(self, text: str) -> None:
        """Persist one line above the status line."""
        with self._lock:
            self._note(text)

    def close(self) -> None:
        """Clear the status line, leaving persisted notes in place."""
        with self._lock:
            if self.enabled and self._line_width:
                self._stream.write("\r" + " " * self._line_width + "\r")
                self._stream.flush()
                self._line_width = 0

    # -- rendering ---------------------------------------------------
    def status_line(self) -> str:
        """The current status text (rendered even when output is off)."""
        done = self.units_done
        total_text = f"/{self._total}" if self._total is not None else ""
        parts = [f"{self._label or 'run'} {done}{total_text} units"]
        if self.in_flight:
            parts.append(f"{self.in_flight} in flight")
        if self.retries or self.fallbacks:
            parts.append(
                f"{self.retries} retried"
                + (f", {self.fallbacks} fell back" if self.fallbacks else "")
            )
        elapsed = self._clock() - self._started
        if self.cells and elapsed > 0:
            parts.append(f"{_format_count(self.cells / elapsed)} cells/s")
        if self._total and 0 < done < self._total and elapsed > 0:
            remaining = elapsed / done * (self._total - done)
            parts.append(f"ETA {_format_eta(remaining)}")
        return " · ".join(parts)

    def _render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = self._clock()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        line = self.status_line()
        pad = max(0, self._line_width - len(line))
        self._stream.write("\r" + line + " " * pad)
        self._stream.flush()
        self._line_width = len(line)

    def _note(self, text: str) -> None:
        if not self.enabled:
            return
        pad = max(0, self._line_width - len(text))
        self._stream.write("\r" + text + " " * pad + "\n")
        self._line_width = 0
        self._render(force=True)
