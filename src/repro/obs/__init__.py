"""Observability: span tracing, stage metrics and structured run reports.

The paper's whole evaluation (Table V, Figures 8-10) rests on per-stage
workload accounting; this package adds the measurement spine the rest of
the repository hangs those numbers on:

* :mod:`repro.obs.tracer` — nested wall-clock spans with per-span
  counters and attributes, plus a zero-cost :class:`NullTracer` so
  instrumented code is free when tracing is off;
* :mod:`repro.obs.metrics` — counter/gauge/histogram primitives and the
  derived pipeline metrics (cells/s per stage, the
  seeds -> anchors -> alignments funnel, absorption rate);
* :mod:`repro.obs.export` — structured JSON run reports, a
  Chrome-``trace_event`` export loadable in ``chrome://tracing`` /
  Perfetto, and a human-readable span-tree renderer.

v2 adds the cross-process pieces:

* :mod:`repro.obs.bus` — the worker→parent telemetry bus
  (sequence-numbered, loss-counting event delivery over an mp.Queue,
  with a parent-side aggregator that grafts spans live and merges
  per-worker funnels/histograms);
* :mod:`repro.obs.progress` — TTY-aware live status line (units
  done/in-flight/retried, cells/s, ETA) fed by the pipelines and by
  the resilient dispatcher's recovery actions;
* :mod:`repro.obs.resource` — RSS / CPU / GC-pause sampling attachable
  to spans, per process;
* :mod:`repro.obs.profiling` — opt-in cProfile capture for the parent
  and every worker;
* :mod:`repro.obs.session` — :class:`TelemetryOptions`, the single
  bundle the CLI threads through the pipelines;
* :mod:`repro.obs.gate` — perf-regression gating of benchmark
  artifacts against a committed baseline (``repro bench check``).
"""

from .tracer import NULL_TRACER, NullTracer, Span, Tracer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    canonical_bucket_edges,
    funnel_metrics,
    stage_summary,
)
from .export import (
    graft_span_dicts,
    load_run_report,
    render_run,
    render_tree,
    run_report,
    serialize_spans,
    spans_from_report,
    to_chrome_trace,
    write_chrome_trace,
    write_run_report,
)
from .bus import (
    BusPublisher,
    HeartbeatMonitor,
    TelemetryBus,
    current_publisher,
    install_publisher,
)
from .occupancy import StreamStats
from .progress import NO_PROGRESS, NullProgress, ProgressRenderer
from .resource import GcPauseTracker, ResourceSampler, sample_resources
from .profiling import profile_capture
from .session import TelemetryOptions
from .gate import GateResult, compare_artifacts, load_artifact

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "canonical_bucket_edges",
    "funnel_metrics",
    "stage_summary",
    "graft_span_dicts",
    "serialize_spans",
    "load_run_report",
    "render_run",
    "render_tree",
    "run_report",
    "spans_from_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_run_report",
    "BusPublisher",
    "HeartbeatMonitor",
    "TelemetryBus",
    "current_publisher",
    "install_publisher",
    "StreamStats",
    "NO_PROGRESS",
    "NullProgress",
    "ProgressRenderer",
    "GcPauseTracker",
    "ResourceSampler",
    "sample_resources",
    "profile_capture",
    "TelemetryOptions",
    "GateResult",
    "compare_artifacts",
    "load_artifact",
]
