"""Observability: span tracing, stage metrics and structured run reports.

The paper's whole evaluation (Table V, Figures 8-10) rests on per-stage
workload accounting; this package adds the measurement spine the rest of
the repository hangs those numbers on:

* :mod:`repro.obs.tracer` — nested wall-clock spans with per-span
  counters and attributes, plus a zero-cost :class:`NullTracer` so
  instrumented code is free when tracing is off;
* :mod:`repro.obs.metrics` — counter/gauge/histogram primitives and the
  derived pipeline metrics (cells/s per stage, the
  seeds -> anchors -> alignments funnel, absorption rate);
* :mod:`repro.obs.export` — structured JSON run reports, a
  Chrome-``trace_event`` export loadable in ``chrome://tracing`` /
  Perfetto, and a human-readable span-tree renderer.
"""

from .tracer import NULL_TRACER, NullTracer, Span, Tracer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    funnel_metrics,
    stage_summary,
)
from .export import (
    graft_span_dicts,
    load_run_report,
    render_run,
    render_tree,
    run_report,
    serialize_spans,
    spans_from_report,
    to_chrome_trace,
    write_chrome_trace,
    write_run_report,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "funnel_metrics",
    "stage_summary",
    "graft_span_dicts",
    "serialize_spans",
    "load_run_report",
    "render_run",
    "render_tree",
    "run_report",
    "spans_from_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_run_report",
]
