"""Structured exports of a traced run.

Three views of the same span tree:

* :func:`run_report` — a JSON-ready dict with the span hierarchy,
  per-stage aggregates, workload counters and funnel metrics; the
  format written by ``repro align --trace-out``.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON array
  format, loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
* :func:`render_tree` / :func:`render_run` — human-readable text; the
  latter extends :func:`repro.core.report.workload_summary` with the
  timed span tree and per-stage rates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import funnel_metrics, stage_summary
from .tracer import Span, Tracer

__all__ = [
    "REPORT_VERSION",
    "graft_span_dicts",
    "load_run_report",
    "render_run",
    "render_tree",
    "run_report",
    "serialize_spans",
    "spans_from_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_run_report",
]

#: Format version stamped into every run report.
REPORT_VERSION = 1


def _span_to_dict(span: Span, epoch: float) -> Dict:
    start = 0.0 if span.start is None else span.start - epoch
    return {
        "name": span.name,
        "start": start,
        "duration": span.duration,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
        "children": [_span_to_dict(c, epoch) for c in span.children],
    }


def _span_from_dict(data: Dict, tracer: Tracer) -> Span:
    span = Span(data["name"], tracer, dict(data.get("attrs", {})))
    span.start = float(data.get("start", 0.0))
    span.end = span.start + float(data.get("duration", 0.0))
    span.counters = {
        k: v for k, v in data.get("counters", {}).items()
    }
    span.children = [
        _span_from_dict(c, tracer) for c in data.get("children", [])
    ]
    return span


def serialize_spans(tracer: Tracer) -> List[Dict]:
    """Pickle-friendly dicts of a tracer's root spans.

    Start times are relative to the tracer's epoch, so a worker process
    can serialize its local spans and the parent can
    :func:`graft_span_dicts` them onto its own timeline.
    """
    return [_span_to_dict(s, tracer.epoch) for s in tracer.roots]


def _shift_span(span: Span, offset: float) -> None:
    if span.start is not None:
        span.start += offset
    if span.end is not None:
        span.end += offset
    for child in span.children:
        _shift_span(child, offset)


def graft_span_dicts(
    tracer: Tracer,
    span_dicts: List[Dict],
    base: Optional[float] = None,
) -> List[Span]:
    """Attach serialized worker spans to a parent tracer.

    ``base`` is the parent-timeline offset (seconds since the parent
    tracer's epoch, i.e. a :meth:`~repro.obs.tracer.Tracer.now` value
    captured when the remote work was dispatched) added to every span's
    relative start.  The reconstructed spans are appended under the
    parent's currently open span (or as new roots outside any span) and
    returned in order.
    """
    spans = [_span_from_dict(d, tracer) for d in span_dicts]
    offset = tracer.epoch + (0.0 if base is None else base)
    for span in spans:
        _shift_span(span, offset)
    parent = tracer.current()
    if parent is not None:
        parent.children.extend(spans)
    else:
        tracer.roots.extend(spans)
    return spans


def run_report(
    tracer: Tracer,
    result=None,
    meta: Optional[Dict] = None,
    telemetry: Optional[Dict] = None,
) -> Dict:
    """Serialize a traced run to a JSON-ready dict.

    ``result`` is an optional :class:`~repro.core.pipeline.WGAResult`;
    when given, the report embeds the run's workload counters (the
    Table V columns) and the derived funnel metrics, so the numbers in
    the trace can be checked against the pipeline's own accounting.
    ``telemetry`` is an optional
    :meth:`~repro.obs.session.TelemetryOptions.summary` dict (bus
    delivery accounting plus merged registry metrics); it is embedded
    verbatim under a ``telemetry`` key.
    """
    report: Dict = {
        "version": REPORT_VERSION,
        "meta": dict(meta or {}),
        "spans": [_span_to_dict(s, tracer.epoch) for s in tracer.roots],
        "stages": stage_summary(tracer.roots),
    }
    if telemetry is not None:
        report["telemetry"] = telemetry
    if result is not None:
        workload = result.workload
        report["workload"] = {
            "seed_hits": workload.seed_hits,
            "filter_tiles": workload.filter_tiles,
            "filter_cells": workload.filter_cells,
            "extension_tiles": workload.extension_tiles,
            "extension_cells": workload.extension_cells,
            "anchors": workload.anchors,
            "absorbed_anchors": workload.absorbed_anchors,
            "alignments": len(result.alignments),
            "matched_bp": result.total_matches,
        }
        report["funnel"] = funnel_metrics(
            workload, len(result.alignments)
        )
    return report


def write_run_report(
    path: Union[str, Path],
    tracer: Tracer,
    result=None,
    meta: Optional[Dict] = None,
    telemetry: Optional[Dict] = None,
) -> Dict:
    """Write :func:`run_report` JSON to ``path``; returns the dict."""
    report = run_report(
        tracer, result=result, meta=meta, telemetry=telemetry
    )
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def load_run_report(path: Union[str, Path]) -> Dict:
    """Load a run report written by :func:`write_run_report`."""
    report = json.loads(Path(path).read_text())
    version = report.get("version")
    if version != REPORT_VERSION:
        raise ValueError(
            f"{path}: unsupported run-report version {version!r}"
        )
    return report


def spans_from_report(report: Dict) -> List[Span]:
    """Reconstruct the span forest of a run report (round-trip)."""
    tracer = Tracer(clock=lambda: 0.0)
    tracer.roots = [
        _span_from_dict(s, tracer) for s in report.get("spans", [])
    ]
    return tracer.roots


#: pid used for worker-unit lanes in the Chrome trace (0 is the parent).
_WORKER_PID = 1


def _chrome_events(
    span_dict: Dict,
    events: List[Dict],
    pid: int,
    tid: int,
    flavor: str,
    tid_of_unit: Dict[str, int],
) -> None:
    # A unit-tagged span (grafted from a worker, at any nesting depth)
    # moves itself and its subtree onto that unit's worker lane.
    unit = span_dict.get("attrs", {}).get("unit")
    if unit is not None and str(unit) in tid_of_unit:
        pid, tid = _WORKER_PID, tid_of_unit[str(unit)]
    args = dict(span_dict["attrs"])
    args.update(span_dict["counters"])
    ts = round(span_dict["start"] * 1e6, 3)
    dur = round(span_dict["duration"] * 1e6, 3)
    common = {
        "name": span_dict["name"],
        "pid": pid,
        "tid": tid,
        "cat": "repro",
    }
    if flavor == "BE":
        events.append({**common, "ph": "B", "ts": ts, "args": args})
    else:
        events.append(
            {**common, "ph": "X", "ts": ts, "dur": dur, "args": args}
        )
    for child in span_dict["children"]:
        _chrome_events(child, events, pid, tid, flavor, tid_of_unit)
    if flavor == "BE":
        events.append(
            {**common, "ph": "E", "ts": round(ts + dur, 3), "args": {}}
        )


def _collect_units(span_dicts: List[Dict]) -> Dict[str, int]:
    """Deterministic tid per worker unit: sorted by unit key.

    Worker spans arrive (and are grafted) in completion order, which
    varies run to run; keying lanes by the *unit name* instead of the
    arrival index makes the pid/tid mapping of two identical runs
    identical.  Units are collected from every depth — the bus grafts
    worker spans as children of the open parent span.
    """

    def walk(spans):
        for span in spans:
            unit = span.get("attrs", {}).get("unit")
            if unit is not None:
                yield str(unit)
            yield from walk(span.get("children", []))

    units = sorted(set(walk(span_dicts)))
    return {unit: tid for tid, unit in enumerate(units, start=1)}


def to_chrome_trace(
    source: Union[Tracer, Dict], flavor: str = "X"
) -> Dict:
    """Convert a tracer or a run-report dict to Chrome ``trace_event``.

    The result is the JSON-object flavour (``{"traceEvents": [...]}``)
    with timestamps in microseconds — drop it into ``chrome://tracing``
    or Perfetto as-is.  ``flavor`` selects complete events (``"X"``,
    the default) or paired begin/end events (``"BE"``).

    Parent spans render on pid 0; spans grafted from worker processes
    (tagged with a ``unit`` attribute) each get their own lane —
    pid 1, one tid per unit, assigned in sorted unit order so the
    mapping is stable across identical runs.
    """
    if flavor not in ("X", "BE"):
        raise ValueError(f"unknown chrome-trace flavor {flavor!r}")
    if isinstance(source, dict):
        span_dicts = source.get("spans", [])
        meta = source.get("meta", {})
    else:
        span_dicts = [
            _span_to_dict(s, source.epoch) for s in source.roots
        ]
        meta = {}
    tid_of_unit = _collect_units(span_dicts)
    events: List[Dict] = []
    # Metadata events only when worker lanes exist: a single-process
    # trace keeps the plain events-only shape.
    if tid_of_unit:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "parent"},
            }
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": _WORKER_PID,
                "tid": 0,
                "args": {"name": "workers"},
            }
        )
        for unit, tid in sorted(tid_of_unit.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _WORKER_PID,
                    "tid": tid,
                    "args": {"name": unit},
                }
            )
    for span_dict in span_dicts:
        _chrome_events(span_dict, events, 0, 0, flavor, tid_of_unit)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta),
    }


def write_chrome_trace(
    path: Union[str, Path],
    source: Union[Tracer, Dict],
    flavor: str = "X",
) -> Dict:
    """Write :func:`to_chrome_trace` JSON to ``path``."""
    trace = to_chrome_trace(source, flavor=flavor)
    Path(path).write_text(json.dumps(trace, indent=2))
    return trace


def _format_counters(counters: Dict) -> str:
    if not counters:
        return ""
    parts = [
        f"{name}={value:,.0f}" if float(value).is_integer()
        else f"{name}={value:,.2f}"
        for name, value in sorted(counters.items())
    ]
    return "  [" + " ".join(parts) + "]"


def _render_span(span_dict: Dict, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    ms = span_dict["duration"] * 1e3
    attrs = span_dict["attrs"]
    attr_text = (
        " (" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + ")"
        if attrs
        else ""
    )
    lines.append(
        f"{indent}{span_dict['name']}{attr_text}: {ms:,.2f} ms"
        f"{_format_counters(span_dict['counters'])}"
    )
    for child in span_dict["children"]:
        _render_span(child, depth + 1, lines)


def render_tree(
    source: Union[Tracer, Dict], max_spans: int = 200
) -> str:
    """Text rendering of the span tree (durations in milliseconds).

    Large forests (e.g. one span per extended anchor) are truncated at
    ``max_spans`` lines with an ellipsis marker.
    """
    if isinstance(source, dict):
        span_dicts = source.get("spans", [])
    else:
        span_dicts = [
            _span_to_dict(s, source.epoch) for s in source.roots
        ]
    lines: List[str] = []
    for span_dict in span_dicts:
        _render_span(span_dict, 0, lines)
    if len(lines) > max_spans:
        hidden = len(lines) - max_spans
        lines = lines[:max_spans] + [f"... ({hidden} more spans)"]
    return "\n".join(lines)


def render_stages(stages: Dict[str, Dict]) -> str:
    """Per-stage aggregate table: calls, wall-clock, work rates."""
    if not stages:
        return "(no stages recorded)"
    lines = [
        f"{'stage':<20} {'calls':>7} {'seconds':>10}  rates",
        "-" * 60,
    ]
    for name, stage in sorted(
        stages.items(), key=lambda item: -item[1]["seconds"]
    ):
        rates = ", ".join(
            f"{rate}={value:,.0f}"
            for rate, value in sorted(stage.get("rates", {}).items())
        )
        lines.append(
            f"{name:<20} {stage['count']:>7,} "
            f"{stage['seconds']:>10.4f}  {rates}"
        )
    return "\n".join(lines)


def render_run(report: Dict, max_spans: int = 200) -> str:
    """Human-readable rendering of a full run report.

    Extends the plain workload summary of
    :func:`repro.core.report.workload_summary` with per-stage wall-clock
    and throughput plus the span tree.
    """
    sections: List[str] = []
    workload = report.get("workload")
    if workload:
        width = max(len(k) for k in workload)
        sections.append(
            "\n".join(
                f"{name:<{width}} : {value:>14,}"
                for name, value in workload.items()
            )
        )
    funnel = report.get("funnel")
    if funnel:
        rates = {
            k: v
            for k, v in funnel.items()
            if isinstance(v, float) and not float(v).is_integer()
        }
        if rates:
            sections.append(
                "funnel: "
                + "  ".join(
                    f"{name}={value:.3f}"
                    for name, value in sorted(rates.items())
                )
            )
    sections.append(render_stages(report.get("stages", {})))
    tree = render_tree(report, max_spans=max_spans)
    if tree:
        sections.append(tree)
    return "\n\n".join(sections)
