"""Worker-occupancy accounting for streamed stage graphs.

The streaming dataflow (:mod:`repro.core.stream`) needs a clock to
answer "how busy were the worker slots, and how long did they starve?"
— and wall clocks are confined to :mod:`repro.obs` (DET003), so the
tracker lives here and the coordinator only ever calls its methods.

:class:`StreamStats` integrates ``min(in_flight, slots)`` — the number
of worker slots that *could* have been busy — over the window from the
first dispatch to the last collection, yielding:

* ``occupancy``          — busy slot-seconds / (slots x window): the
  fraction of worker capacity the schedule actually used;
* ``idle_tail_seconds``  — idle slot-seconds *after the last dispatch*,
  up to the schedule's :meth:`close`.  A barrier schedule pays the tail
  every phase: the end-of-phase drain (depth ramps to zero while the
  slowest unit finishes) plus any trailing serial stage that runs with
  nothing in flight (e.g. the last strand's seed+filter).  A streamed
  schedule keeps dispatching until the work is nearly over, so its
  tail collapses.  Mid-stream dependence stalls deliberately taken by
  the coordinator are *not* part of the tail — they show up in
  ``occupancy`` instead;
* ``peak_in_flight`` / ``backpressure_stalls`` — proof the bounded
  queues actually held the producer back instead of buffering
  unboundedly.

Depth is counted in *dispatch units* — one task (an anchor batch or an
assembly unit) occupies one worker slot, whatever its payload size — so
``min(in_flight, slots)`` compares like with like against the worker
count.

The tracker is single-process and event-driven: every ``dispatched``/
``collected``/``stalled`` call advances the integral to "now" first, so
the math is exact for any interleaving.  Tests may inject a fake clock.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Optional

__all__ = ["StreamStats"]


class StreamStats:
    """Occupancy, idle-tail and backpressure accounting for one stream."""

    def __init__(
        self,
        slots: int,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.slots = max(1, int(slots))
        self._clock = clock
        self._last = clock()
        self._depth = 0
        self._busy_integral = 0.0
        self._first_dispatch: Optional[float] = None
        self._last_dispatch: Optional[float] = None
        self._tail_busy_base = 0.0
        self._last_collect: Optional[float] = None
        self._closed: Optional[float] = None
        self.peak_in_flight = 0
        self.backpressure_stalls = 0
        self.dispatched_tasks = 0
        self.collected_tasks = 0
        self.producer_steps = 0

    def _advance(self) -> float:
        now = self._clock()
        delta = now - self._last
        if delta > 0.0:
            self._busy_integral += min(self._depth, self.slots) * delta
            self._last = now
        return now

    def dispatched(self, tasks: int = 1) -> int:
        """Record ``tasks`` units entering flight; returns the depth."""
        now = self._advance()
        if self._first_dispatch is None:
            self._first_dispatch = now
        self._last_dispatch = now
        self._tail_busy_base = self._busy_integral
        self._depth += tasks
        self.dispatched_tasks += tasks
        if self._depth > self.peak_in_flight:
            self.peak_in_flight = self._depth
        return self._depth

    def collected(self, tasks: int = 1) -> int:
        """Record ``tasks`` units leaving flight; returns the depth."""
        self._last_collect = self._advance()
        self._depth -= tasks
        self.collected_tasks += tasks
        return self._depth

    def stalled(self) -> None:
        """Record one backpressure event: the producer had work ready
        but a bounded queue / in-flight watermark refused it."""
        self._advance()
        self.backpressure_stalls += 1

    def produced(self) -> None:
        """Record one producer step (a stage emitting a payload)."""
        self._advance()
        self.producer_steps += 1

    def close(self) -> None:
        """Pin the window's end at "now".

        Called when the schedule being observed is *over* (the align
        section ends), which may be well after the last collection: a
        barrier schedule that runs a serial stage after its last drain
        — e.g. the second strand's seed+filter finding zero anchors —
        leaves the workers idle for all of it, and that idle time is
        exactly the tail the streamed schedule overlaps away.  Without
        the mark the window would end at the last collect and the tail
        would be invisible.
        """
        self._closed = self._advance()

    @property
    def in_flight(self) -> int:
        return self._depth

    def _window_end(self) -> Optional[float]:
        if self._closed is not None:
            return self._closed
        return self._last_collect

    def idle_tail_seconds(self) -> float:
        """Idle slot-seconds between the last dispatch and window end.

        The schedule's drain tail: once nothing new is being
        dispatched, every slot-second not spent finishing in-flight
        work is capacity the schedule wasted at its end.
        """
        end = self._window_end()
        if self._last_dispatch is None or end is None:
            return 0.0
        window = end - self._last_dispatch
        if window <= 0.0:
            return 0.0
        tail_busy = self._busy_integral - self._tail_busy_base
        return max(0.0, self.slots * window - tail_busy)

    def occupancy(self) -> float:
        """Busy fraction of worker capacity inside the dispatch window."""
        end = self._window_end()
        if self._first_dispatch is None or end is None:
            return 0.0
        window = end - self._first_dispatch
        if window <= 0.0:
            return 0.0
        return min(1.0, self._busy_integral / (self.slots * window))

    def summary(self) -> Dict[str, float]:
        """Snapshot of every derived number (JSON-ready)."""
        window = 0.0
        end = self._window_end()
        if self._first_dispatch is not None and end is not None:
            window = max(0.0, end - self._first_dispatch)
        return {
            "slots": self.slots,
            "window_seconds": window,
            "busy_slot_seconds": self._busy_integral,
            "occupancy": self.occupancy(),
            "idle_tail_seconds": self.idle_tail_seconds(),
            "peak_in_flight": self.peak_in_flight,
            "backpressure_stalls": self.backpressure_stalls,
            "dispatched_tasks": self.dispatched_tasks,
            "collected_tasks": self.collected_tasks,
            "producer_steps": self.producer_steps,
        }
