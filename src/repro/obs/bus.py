"""Cross-process telemetry bus: workers stream events, parent merges.

Before this module, worker observability was end-of-run only: a worker
task serialized its span tree and returned it *with the result*, so the
parent learned nothing until the future resolved.  The bus inverts
that: workers publish small events (spans, funnels, counters, histogram
samples, resource readings) onto a bounded ``multiprocessing.Queue``
as they happen, and the parent-side :class:`TelemetryBus` routes them
into the live run — spans grafted onto the parent tracer, funnels and
histograms merged into a :class:`~repro.obs.metrics.MetricRegistry`,
and per-worker busy time accumulated for dispatch-latency / idle-tail
accounting.

Delivery is **sequence-numbered and loss-counting**, never blocking:

* each :class:`BusPublisher` stamps events ``(pid, seq, kind, payload)``
  with a per-process contiguous sequence number;
* publishing uses ``put_nowait`` — a full queue drops the event and
  increments the publisher's local ``lost`` counter instead of stalling
  the pipeline (telemetry must never add backpressure to alignment);
* every task returns a tiny **ack** ``{pid, sent, lost, busy}``
  alongside its result.  Because a ``multiprocessing.Queue`` flushes
  through a background feeder thread, events can lawfully arrive
  *after* the task's future resolves; :meth:`TelemetryBus.drain` uses
  the acks to wait until every acknowledged event is in, so "zero
  dropped events" is a provable claim, not an absence of evidence.

The queue travels to pool workers through the executor's
``initializer`` (the only pickling context in which an mp.Queue may
cross a process boundary); :func:`worker_init` installs a module-global
publisher that :func:`current_publisher` exposes to task functions.  In
the parent process :func:`current_publisher` returns None, which is
exactly what the serial-fallback path needs: a task re-run in-process
falls back to returning its spans inline.

Liveness: when the pool initializer is given a heartbeat interval,
every worker starts a daemon thread publishing **beat** events.  Beats
are deliberately out-of-band — they carry no sequence number, never
count toward ``sent``/``lost``, and so can never perturb the zero-loss
delivery accounting.  The parent stamps each beat with *its own*
monotonic clock on receipt (skew-free across processes);
:meth:`TelemetryBus.stale_workers` then answers "which workers have
gone silent past the deadline", which is how a SIGSTOP'd or
infinitely-looping worker (threads frozen → beats stop) is detected
even though its process is still technically alive.
:class:`HeartbeatMonitor` packages that check for the resilient
dispatcher; the clock stays inside ``repro.obs`` where it belongs.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
from time import monotonic
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import MetricRegistry
from .progress import NO_PROGRESS

__all__ = [
    "BusEndpoint",
    "BusPublisher",
    "HeartbeatMonitor",
    "TelemetryBus",
    "clear_publisher",
    "current_publisher",
    "install_publisher",
    "start_heartbeat",
    "stop_heartbeat",
    "suspend_heartbeat",
    "worker_init",
]


def _bus_context() -> multiprocessing.context.BaseContext:
    """Match the execution engine's start-method preference."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class BusEndpoint:
    """The worker-side half of the bus: just the queue, picklable only
    while a pool process is being constructed (``initargs``)."""

    __slots__ = ("queue",)

    def __init__(self, events_queue) -> None:
        self.queue = events_queue


class BusPublisher:
    """Per-process event source with contiguous sequence numbers.

    ``sent`` counts successfully enqueued events (the next sequence
    number); ``lost`` counts events dropped locally because the queue
    was full.  A dropped event does *not* consume a sequence number, so
    the receiver's per-pid ordering check stays gap-free under loss.
    """

    __slots__ = ("queue", "pid", "sent", "lost")

    def __init__(self, events_queue, pid: Optional[int] = None) -> None:
        self.queue = events_queue
        self.pid = os.getpid() if pid is None else pid
        self.sent = 0
        self.lost = 0

    def emit(self, kind: str, payload) -> bool:
        try:
            self.queue.put_nowait((self.pid, self.sent, kind, payload))
        except queue_module.Full:
            self.lost += 1
            return False
        self.sent += 1
        return True

    # -- typed convenience emitters ----------------------------------
    def emit_spans(self, span_dicts: List[Dict], unit: str = "") -> bool:
        return self.emit("spans", {"unit": unit, "spans": span_dicts})

    def emit_funnel(self, unit: str, counters: Dict[str, float]) -> bool:
        return self.emit("funnel", {"unit": unit, "counters": counters})

    def emit_counter(self, name: str, value: float = 1) -> bool:
        return self.emit("counter", {"name": name, "value": value})

    def emit_histogram(self, name: str, values: List[float]) -> bool:
        return self.emit("hist", {"name": name, "values": values})

    def emit_resource(self, sample) -> bool:
        payload = sample.as_dict() if hasattr(sample, "as_dict") else sample
        return self.emit("resource", dict(payload))

    def emit_beat(self) -> bool:
        """Publish an out-of-band liveness beat.

        Beats bypass the sequence/loss accounting entirely (sentinel
        sequence number ``-1``): they are emitted from a separate
        daemon thread, so sharing the ``sent`` counter would race the
        task thread, and a beat dropped by a full queue must not count
        as a lost telemetry event.
        """
        try:
            self.queue.put_nowait((self.pid, -1, "beat", None))
        except queue_module.Full:
            return False
        return True

    def ack(self, busy: float = 0.0) -> Dict[str, float]:
        """Delivery receipt a task returns beside its result."""
        return {
            "pid": self.pid,
            "sent": self.sent,
            "lost": self.lost,
            "busy": busy,
        }


#: This process's installed publisher (workers only; None in the parent).
_PUBLISHER: Optional[BusPublisher] = None


def install_publisher(endpoint: BusEndpoint) -> BusPublisher:
    global _PUBLISHER
    _PUBLISHER = BusPublisher(endpoint.queue)
    return _PUBLISHER


def current_publisher() -> Optional[BusPublisher]:
    return _PUBLISHER


def clear_publisher() -> None:
    global _PUBLISHER
    _PUBLISHER = None


#: This process's heartbeat thread stop flag (workers only).
_HEARTBEAT_STOP: Optional[threading.Event] = None
_HEARTBEAT_THREAD: Optional[threading.Thread] = None


def start_heartbeat(interval: float) -> bool:
    """Start the liveness beat thread (idempotent; workers only).

    Requires an installed publisher.  The thread is a daemon: a frozen
    process (SIGSTOP) freezes it with everything else, which is exactly
    the signal — beats stopping — the parent's sentinel watches for.
    """
    global _HEARTBEAT_STOP, _HEARTBEAT_THREAD
    publisher = current_publisher()
    if publisher is None or interval <= 0 or _HEARTBEAT_THREAD is not None:
        return False
    stop = threading.Event()

    def run() -> None:
        publisher.emit_beat()
        while not stop.wait(interval):
            publisher.emit_beat()

    thread = threading.Thread(
        target=run, name="repro-heartbeat", daemon=True
    )
    _HEARTBEAT_STOP = stop
    _HEARTBEAT_THREAD = thread
    thread.start()
    return True


def suspend_heartbeat() -> None:
    """Silence this process's beats without touching anything else.

    Used by the injected ``hang`` fault: a worker that stops beating
    *and* never returns is indistinguishable from a wedged one, so the
    parent's heartbeat sentinel can be exercised deterministically.
    """
    if _HEARTBEAT_STOP is not None:
        _HEARTBEAT_STOP.set()


def stop_heartbeat() -> None:
    """Stop and forget the beat thread (teardown/tests)."""
    global _HEARTBEAT_STOP, _HEARTBEAT_THREAD
    if _HEARTBEAT_STOP is not None:
        _HEARTBEAT_STOP.set()
    thread = _HEARTBEAT_THREAD
    if thread is not None:
        thread.join(timeout=1.0)
    _HEARTBEAT_STOP = None
    _HEARTBEAT_THREAD = None


def worker_init(
    endpoint: Optional[BusEndpoint],
    profile_dir: Optional[str],
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Process-pool initializer: telemetry publisher + optional profiler."""
    if endpoint is not None:
        install_publisher(endpoint)
        if heartbeat_interval:
            start_heartbeat(heartbeat_interval)
    if profile_dir:
        from .profiling import install_worker_profile

        install_worker_profile(profile_dir)


class TelemetryBus:
    """Parent-side aggregator for worker telemetry events.

    Wire-up: :meth:`attach` a tracer/registry/progress sink, hand
    :meth:`endpoint` to the pool initializer, and :meth:`register_unit`
    each dispatched unit's parent-timeline base offset.  During the run
    :meth:`poll` (cheap, non-blocking) routes queued events; counters,
    funnels, histograms and resource samples merge immediately, while
    span payloads buffer until the poll's graft step so the tracer is
    only ever touched from the thread that owns it.  An optional
    :meth:`start_pump` thread keeps metrics and progress moving between
    poll points during long tasks.

    Accounting: per-pid received counts are checked against the acked
    ``sent`` totals by :meth:`drain`, yielding an exact
    ``dropped_events`` figure (in transit) next to the workers' own
    ``lost_events`` (publisher-side overflow) in :meth:`summary`.
    """

    def __init__(
        self,
        context: Optional[multiprocessing.context.BaseContext] = None,
        maxsize: int = 8192,
    ) -> None:
        ctx = context or _bus_context()
        self._queue = ctx.Queue(maxsize)
        self._lock = threading.Lock()
        self._tracer = None
        self._registry: Optional[MetricRegistry] = None
        self._progress = NO_PROGRESS
        self.events_received = 0
        self.gap_events = 0
        self._received: Dict[int, int] = {}
        self._next_seq: Dict[int, int] = {}
        self._acked_sent: Dict[int, int] = {}
        self._acked_lost: Dict[int, int] = {}
        self._busy_seconds: Dict[int, float] = {}
        self._last_done: Dict[int, float] = {}
        self._funnel: Dict[str, float] = {}
        self._worker_funnels: Dict[int, Dict[str, float]] = {}
        #: pid -> parent-clock receipt time of the latest beat.
        self._beat_at: Dict[int, float] = {}
        self._beat_counts: Dict[int, int] = {}
        self._clock: Callable[[], float] = monotonic
        self._pending_spans: List[Tuple[int, int, Dict]] = []
        self._unit_base: Dict[str, float] = {}
        self._pump: Optional[threading.Thread] = None
        self._pump_stop = threading.Event()
        self._closed = False

    # -- wiring ------------------------------------------------------
    def endpoint(self) -> BusEndpoint:
        return BusEndpoint(self._queue)

    def attach(
        self,
        tracer=None,
        registry: Optional[MetricRegistry] = None,
        progress=None,
    ) -> "TelemetryBus":
        with self._lock:
            if tracer is not None:
                self._tracer = tracer
            if registry is not None:
                self._registry = registry
            if progress is not None:
                self._progress = progress
        return self

    def register_unit(self, unit: str, base: float) -> None:
        """Record a unit's dispatch-time offset on the parent timeline."""
        with self._lock:
            self._unit_base[unit] = base

    # -- event intake ------------------------------------------------
    def _route(self, event) -> None:
        pid, seq, kind, payload = event
        if kind == "beat":
            # Out-of-band: beats carry no sequence number and must not
            # disturb the received/gap/zero-loss accounting.
            with self._lock:
                self._beat_at[pid] = self._clock()
                self._beat_counts[pid] = self._beat_counts.get(pid, 0) + 1
            return
        with self._lock:
            self.events_received += 1
            self._received[pid] = self._received.get(pid, 0) + 1
            if seq != self._next_seq.get(pid, 0):
                self.gap_events += 1
            self._next_seq[pid] = seq + 1
            if kind == "spans":
                self._pending_spans.append((pid, seq, payload))
                return
            registry = self._registry
            if kind == "funnel":
                worker = self._worker_funnels.setdefault(pid, {})
                for name, value in payload.get("counters", {}).items():
                    self._funnel[name] = self._funnel.get(name, 0) + value
                    worker[name] = worker.get(name, 0) + value
            elif kind == "counter" and registry is not None:
                registry.counter(payload["name"]).inc(payload["value"])
            elif kind == "hist" and registry is not None:
                histogram = registry.histogram(payload["name"])
                for value in payload.get("values", ()):
                    histogram.observe(value)
            elif kind == "resource" and registry is not None:
                registry.histogram("worker_rss_bytes").observe(
                    payload.get("rss_bytes", 0)
                )
                registry.histogram("worker_gc_pause_seconds").observe(
                    payload.get("gc_pause_seconds", 0.0)
                )

    def _drain_nowait(self) -> int:
        drained = 0
        while True:
            try:
                event = self._queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return drained
            self._route(event)
            drained += 1

    def _graft_pending(self) -> int:
        """Graft buffered span payloads (owner-thread only)."""
        with self._lock:
            pending, self._pending_spans = self._pending_spans, []
            tracer = self._tracer
            bases = dict(self._unit_base)
        if tracer is None or not pending:
            return 0
        from .export import graft_span_dicts

        pending.sort(key=lambda item: (item[0], item[1]))
        grafted = 0
        for pid, _seq, payload in pending:
            unit = payload.get("unit", "")
            spans = graft_span_dicts(
                tracer, payload.get("spans", []), base=bases.get(unit)
            )
            for root in spans:
                root.attrs.setdefault("unit", unit)
                root.attrs.setdefault("worker", pid)
            grafted += len(spans)
        return grafted

    def poll(self) -> int:
        """Drain queued events and graft spans; returns events routed.

        Call from the thread that owns the attached tracer (grafting
        mutates the span tree under the currently open span).
        """
        drained = self._drain_nowait()
        self._graft_pending()
        return drained

    # -- acks and derived accounting ---------------------------------
    def record_ack(
        self, ack: Optional[Dict], done_at: Optional[float] = None
    ) -> None:
        """Merge a task's delivery receipt (None acks are ignored)."""
        if not ack:
            return
        with self._lock:
            pid = int(ack["pid"])
            self._acked_sent[pid] = max(
                self._acked_sent.get(pid, 0), int(ack["sent"])
            )
            self._acked_lost[pid] = max(
                self._acked_lost.get(pid, 0), int(ack.get("lost", 0))
            )
            busy = float(ack.get("busy", 0.0))
            self._busy_seconds[pid] = (
                self._busy_seconds.get(pid, 0.0) + busy
            )
            if done_at is not None:
                self._last_done[pid] = max(
                    self._last_done.get(pid, 0.0), done_at
                )

    def busy_seconds(self) -> Dict[int, float]:
        with self._lock:
            return dict(self._busy_seconds)

    def idle_tail_seconds(self, end: float) -> float:
        """Sum over workers of (phase end − last completed task).

        ``end`` is on the same timeline as the ``done_at`` values passed
        to :meth:`record_ack` (parent ``tracer.now()``).  This is the
        straggler signal: time each worker sat idle after its last unit
        while the slowest worker finished the phase.
        """
        with self._lock:
            return sum(
                max(0.0, end - done) for done in self._last_done.values()
            )

    # -- liveness ----------------------------------------------------
    def worker_beats(self) -> Dict[int, float]:
        """pid -> parent-clock receipt time of the latest beat."""
        self._drain_nowait()
        with self._lock:
            return dict(self._beat_at)

    def beat_counts(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._beat_counts)

    def stale_workers(self, deadline: float) -> List[int]:
        """Workers whose last beat is older than ``deadline`` seconds.

        Drains the queue first so a beat sitting in transit never reads
        as silence.  Only workers that have beaten at least once are
        considered: absence of any beat means the worker has not
        finished initialising (or beats are off), not that it hung.
        """
        self._drain_nowait()
        now = self._clock()
        with self._lock:
            return sorted(
                pid
                for pid, last in self._beat_at.items()
                if now - last > deadline
            )

    def reset_beats(self) -> None:
        """Forget all beat history (pool rebuilt / escalation re-arm)."""
        with self._lock:
            self._beat_at.clear()

    # -- pump (optional background routing) --------------------------
    def start_pump(self, interval: float = 0.05) -> None:
        """Route metric/progress events between polls on a thread.

        Span payloads still wait for the next owner-thread
        :meth:`poll`/:meth:`drain`; the pump only touches lock-guarded
        state.
        """
        if self._pump is not None:
            return
        self._pump_stop.clear()

        def run() -> None:
            while not self._pump_stop.wait(interval):
                self._drain_nowait()

        self._pump = threading.Thread(
            target=run, name="repro-telemetry-pump", daemon=True
        )
        self._pump.start()

    def stop_pump(self) -> None:
        if self._pump is not None:
            self._pump_stop.set()
            self._pump.join(timeout=2.0)
            self._pump = None

    # -- completion --------------------------------------------------
    def _missing(self) -> int:
        with self._lock:
            return sum(
                max(0, sent - self._received.get(pid, 0))
                for pid, sent in self._acked_sent.items()
            )

    def drain(
        self,
        timeout: float = 5.0,
        clock: Callable[[], float] = monotonic,
    ) -> int:
        """Wait (bounded) until every acked event arrived; graft spans.

        Returns the number of events still missing at the deadline —
        0 is the "zero dropped events" acceptance signal.  Needed
        because the queue's feeder thread may still be flushing when
        the last future resolves.
        """
        self.stop_pump()
        deadline = clock() + timeout
        while self._missing() > 0 and clock() < deadline:
            if self._drain_nowait() == 0:
                try:
                    event = self._queue.get(timeout=0.02)
                except (queue_module.Empty, OSError, ValueError):
                    continue
                self._route(event)
        self._drain_nowait()
        self._graft_pending()
        return self._missing()

    def summary(self) -> Dict:
        """JSON-ready delivery and funnel accounting."""
        with self._lock:
            workers = sorted(
                set(self._received) | set(self._acked_sent)
            )
            dropped = sum(
                max(0, sent - self._received.get(pid, 0))
                for pid, sent in self._acked_sent.items()
            )
            return {
                "events": self.events_received,
                "workers": len(workers),
                "dropped_events": dropped,
                "lost_events": sum(self._acked_lost.values()),
                "gap_events": self.gap_events,
                "funnel": dict(self._funnel),
                "worker_funnels": {
                    str(pid): dict(counters)
                    for pid, counters in sorted(
                        self._worker_funnels.items()
                    )
                },
                "busy_seconds": {
                    str(pid): seconds
                    for pid, seconds in sorted(
                        self._busy_seconds.items()
                    )
                },
            }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stop_pump()
        try:
            self._queue.close()
            self._queue.join_thread()
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass


class HeartbeatMonitor:
    """Liveness sentinel handed to the resilient dispatcher.

    Wraps a :class:`TelemetryBus` with a staleness deadline: the
    dispatcher waits for results in ``poll_interval`` slices and asks
    :meth:`overdue` between slices; True means some worker has gone
    silent past the deadline and the hang-recovery ladder should run.
    All clock reads stay inside :mod:`repro.obs` — callers only see
    booleans, so pipeline output can never depend on the clock.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        deadline: float,
        poll_interval: Optional[float] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("heartbeat deadline must be positive")
        self.bus = bus
        self.deadline = deadline
        self.poll_interval = (
            poll_interval if poll_interval else max(0.01, deadline / 4.0)
        )
        self.detections = 0

    def overdue(self) -> bool:
        """Whether any beating worker has gone silent past the deadline."""
        stale = self.bus.stale_workers(self.deadline)
        if stale:
            self.detections += 1
            return True
        return False

    def escalated(self) -> None:
        """The dispatcher acted on a detection; re-arm for the retry.

        Clears beat history so the next :meth:`overdue` answers about
        the *new* attempt's workers — a still-frozen worker simply goes
        stale again and the ladder escalates one more rung.
        """
        self.bus.reset_beats()
