"""One telemetry bundle threaded from the CLI down to the engine.

:class:`TelemetryOptions` is the observability counterpart of
:class:`~repro.resilience.policy.ResilienceOptions`: a single object
carrying the progress sink, the shared metric registry, the optional
worker-profiling directory and (once :meth:`ensure_bus` runs) the
cross-process telemetry bus.  The pipelines accept it as one optional
parameter; passing nothing keeps every hot path on the allocation-free
null objects.

Lifecycle: the owner (CLI command, test) creates the options, the
pipeline calls :meth:`ensure_bus`/:meth:`attach` when a traced parallel
run actually starts, and the owner calls :meth:`finish` afterwards to
drain the bus and collect the delivery/metric summary for the run
report.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from .bus import TelemetryBus
from .metrics import MetricRegistry
from .progress import NO_PROGRESS

__all__ = ["TelemetryOptions"]


@dataclass
class TelemetryOptions:
    """Progress + metrics + bus + profiling knobs for one run.

    ``stream=False`` disables the bus even for traced parallel runs
    (workers then return spans inline with their results, the pre-bus
    behaviour).  ``profile_dir`` turns on cProfile capture in every
    worker via the pool initializer.  ``heartbeat_interval`` (seconds)
    makes every pool worker publish liveness beats over the bus — the
    serving daemon's hang sentinel reads them through a
    :class:`~repro.obs.bus.HeartbeatMonitor`.
    """

    progress: object = NO_PROGRESS
    registry: MetricRegistry = field(default_factory=MetricRegistry)
    profile_dir: Union[str, Path, None] = None
    stream: bool = True
    bus: Optional[TelemetryBus] = None
    heartbeat_interval: Optional[float] = None

    def ensure_bus(
        self,
        context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> Optional[TelemetryBus]:
        """Create the bus on first use (no-op when streaming is off)."""
        if self.stream and self.bus is None:
            self.bus = TelemetryBus(context=context)
        return self.bus

    def attach(self, tracer=None, pump: bool = False) -> None:
        """Point the bus at this run's tracer/registry/progress."""
        if self.bus is not None:
            self.bus.attach(
                tracer=tracer,
                registry=self.registry,
                progress=self.progress,
            )
            if pump:
                self.bus.start_pump()

    def finish(self, timeout: float = 5.0) -> Dict:
        """Drain the bus and return the run's telemetry summary."""
        if self.bus is not None:
            self.bus.drain(timeout=timeout)
        return self.summary()

    def summary(self) -> Dict:
        return {
            "bus": self.bus.summary() if self.bus is not None else None,
            "metrics": self.registry.as_dict(),
        }

    def close(self) -> None:
        if self.bus is not None:
            self.bus.close()
            self.bus = None
