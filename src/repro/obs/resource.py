"""Per-process resource sampling: RSS, CPU time and GC pauses.

Three layers, composable from cheapest to heaviest:

* :func:`sample_resources` — one point-in-time sample (resident set
  size, cumulative CPU seconds, GC pauses observed so far).  Worker
  tasks call this once per unit and ship the sample over the telemetry
  bus, so per-worker memory/CPU shows up in the parent's registry
  without any background machinery in the workers.
* :class:`GcPauseTracker` — hooks :data:`gc.callbacks` to time each
  collection pause.  Pure stdlib; install/remove are idempotent.
* :class:`ResourceSampler` — a daemon thread sampling periodically and
  recording the series; :meth:`attach_to` summarises onto a span's
  attributes so a trace carries peak RSS / CPU / GC-pause totals next
  to the timings they explain.

RSS is read from ``/proc/self/statm`` (Linux, current value) with a
``resource.getrusage`` peak-RSS fallback elsewhere; both degrade to 0
rather than raising, so sampling never takes a pipeline down.
"""

from __future__ import annotations

import gc
import os
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional

__all__ = [
    "GcPauseTracker",
    "ResourceSample",
    "ResourceSampler",
    "sample_resources",
]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None

_PAGE_SIZE = (
    _resource.getpagesize() if _resource is not None else 4096
)


def _rss_bytes() -> int:
    """Current resident set size, 0 when unavailable."""
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    if _resource is not None:
        # ru_maxrss is the peak, in kilobytes on Linux (bytes on macOS,
        # but macOS would have taken the /proc-free path anyway).
        return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * 1024
    return 0


def _cpu_seconds() -> float:
    """Cumulative user+system CPU seconds of this process."""
    times = os.times()
    return times.user + times.system


class GcPauseTracker:
    """Times every garbage-collection pause via :data:`gc.callbacks`."""

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self._installed = False
        self.pauses: List[float] = []

    def install(self) -> "GcPauseTracker":
        if not self._installed:
            gc.callbacks.append(self._callback)
            self._installed = True
        return self

    def remove(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:  # pragma: no cover - removed externally
                pass
            self._installed = False

    def _callback(self, phase: str, info: Dict) -> None:
        if phase == "start":
            self._start = self._clock()
        elif phase == "stop" and self._start is not None:
            self.pauses.append(self._clock() - self._start)
            self._start = None

    @property
    def pause_count(self) -> int:
        return len(self.pauses)

    @property
    def pause_seconds(self) -> float:
        return sum(self.pauses)

    def __enter__(self) -> "GcPauseTracker":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.remove()
        return False


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time resource reading."""

    elapsed: float
    rss_bytes: int
    cpu_seconds: float
    gc_pauses: int
    gc_pause_seconds: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "elapsed": self.elapsed,
            "rss_bytes": self.rss_bytes,
            "cpu_seconds": self.cpu_seconds,
            "gc_pauses": self.gc_pauses,
            "gc_pause_seconds": self.gc_pause_seconds,
        }


def sample_resources(
    tracker: Optional[GcPauseTracker] = None,
    clock: Callable[[], float] = perf_counter,
    epoch: float = 0.0,
) -> ResourceSample:
    """One sample of this process's RSS / CPU / GC-pause state."""
    return ResourceSample(
        elapsed=clock() - epoch,
        rss_bytes=_rss_bytes(),
        cpu_seconds=_cpu_seconds(),
        gc_pauses=tracker.pause_count if tracker is not None else 0,
        gc_pause_seconds=(
            tracker.pause_seconds if tracker is not None else 0.0
        ),
    )


class ResourceSampler:
    """Periodic resource sampling on a daemon thread.

    ``emit`` (optional) receives each :class:`ResourceSample` as it is
    taken — e.g. a telemetry-bus publisher's ``emit_resource``; samples
    are also kept in :attr:`samples` for :meth:`summary`.
    """

    def __init__(
        self,
        interval: float = 0.25,
        emit: Optional[Callable[[ResourceSample], None]] = None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.interval = interval
        self._emit = emit
        self._clock = clock
        self._epoch = clock()
        self._tracker = GcPauseTracker(clock)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples: List[ResourceSample] = []

    def sample_once(self) -> ResourceSample:
        sample = sample_resources(
            self._tracker, clock=self._clock, epoch=self._epoch
        )
        self.samples.append(sample)
        if self._emit is not None:
            self._emit(sample)
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        if self._thread is None:
            self._tracker.install()
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "ResourceSampler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        self.sample_once()  # closing sample, so short runs record one
        self._tracker.remove()
        return self

    def summary(self) -> Dict[str, float]:
        return {
            "samples": len(self.samples),
            "max_rss_bytes": max(
                (s.rss_bytes for s in self.samples), default=0
            ),
            "cpu_seconds": max(
                (s.cpu_seconds for s in self.samples), default=0.0
            ),
            "gc_pauses": max(
                (s.gc_pauses for s in self.samples), default=0
            ),
            "gc_pause_seconds": max(
                (s.gc_pause_seconds for s in self.samples), default=0.0
            ),
        }

    def attach_to(self, span) -> None:
        """Summarise the series onto a span's attributes."""
        span.set(resource=self.summary())

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
