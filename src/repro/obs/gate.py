"""Perf-regression gating over the committed benchmark artifact.

``repro bench check`` compares a freshly generated ``BENCH_PIPELINE.json``
against a committed baseline (``benchmarks/baseline.json``) and returns
a machine-readable verdict.  Metrics fall into three tolerance classes:

* **deterministic** — workload/funnel counts (seed hits, anchors,
  alignments, matched bp).  These are exact replays of the same seeded
  inputs, so any difference is a correctness change, not noise:
  tolerance is zero.
* **wall/rate** — stage wall-clock and cells/s throughput.  These move
  with the machine; a stage fails only when it slows down (or its
  throughput drops) beyond a relative band, and stages too short to
  time reliably (< ``min_seconds`` in the baseline) are skipped.
* **overhead** — recorded overhead fractions (fault-tolerance wrapper,
  telemetry on/off) gated against their stated targets.  Only
  *slowdowns* beyond target fail; a measurement faster than its
  baseline by more than the band is reported as a warning ("suspect":
  usually a benchmark artifact, e.g. unpaid warmup), never a pass made
  of noise.

Every comparison yields a check record ``{id, status, current,
baseline, limit, detail}``; the verdict fails iff any check fails.
Exit-code policy (warn-only CI mode vs gating mode) belongs to the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["GateResult", "compare_artifacts", "load_artifact"]

#: Funnel/workload keys that must replay exactly.
_DETERMINISTIC_KEYS = (
    "seed_hits",
    "filter_tiles",
    "filter_cells",
    "anchors",
    "anchors_extended",
    "absorbed_anchors",
    "extension_tiles",
    "extension_cells",
    "alignments",
    "matched_bp",
)


class GateResult:
    """Accumulated checks plus the overall verdict."""

    def __init__(self) -> None:
        self.checks: List[Dict] = []

    def add(
        self,
        check_id: str,
        status: str,
        current=None,
        baseline=None,
        limit=None,
        detail: str = "",
    ) -> None:
        self.checks.append(
            {
                "id": check_id,
                "status": status,
                "current": current,
                "baseline": baseline,
                "limit": limit,
                "detail": detail,
            }
        )

    @property
    def verdict(self) -> str:
        return (
            "fail"
            if any(c["status"] == "fail" for c in self.checks)
            else "pass"
        )

    def counts(self) -> Dict[str, int]:
        out = {"pass": 0, "fail": 0, "warn": 0, "skip": 0}
        for check in self.checks:
            out[check["status"]] = out.get(check["status"], 0) + 1
        return out

    def failures(self) -> List[Dict]:
        return [c for c in self.checks if c["status"] == "fail"]

    def as_dict(self) -> Dict:
        return {
            "verdict": self.verdict,
            "counts": self.counts(),
            "checks": self.checks,
        }


def load_artifact(path: Union[str, Path]) -> Dict:
    return json.loads(Path(path).read_text())


def _check_deterministic(
    result: GateResult, prefix: str, current: Dict, baseline: Dict
) -> None:
    for key in _DETERMINISTIC_KEYS:
        if key not in baseline:
            continue
        check_id = f"{prefix}.{key}"
        if key not in current:
            result.add(
                check_id, "warn", baseline=baseline[key],
                detail="metric missing from current artifact",
            )
            continue
        if current[key] == baseline[key]:
            result.add(
                check_id, "pass", current=current[key],
                baseline=baseline[key], limit=0,
            )
        else:
            result.add(
                check_id, "fail", current=current[key],
                baseline=baseline[key], limit=0,
                detail="deterministic counter diverged (tolerance 0)",
            )


def _check_stages(
    result: GateResult,
    prefix: str,
    current: Dict,
    baseline: Dict,
    wall_tolerance: float,
    rate_tolerance: float,
    min_seconds: float,
) -> None:
    for stage, base_stage in sorted(baseline.items()):
        base_wall = base_stage.get("wall_seconds", 0.0)
        check_id = f"{prefix}.{stage}"
        if base_wall < min_seconds:
            result.add(
                check_id + ".wall_seconds", "skip", baseline=base_wall,
                detail=f"baseline under {min_seconds}s — too noisy to gate",
            )
            continue
        cur_stage = current.get(stage)
        if cur_stage is None:
            result.add(
                check_id + ".wall_seconds", "warn",
                detail="stage missing from current artifact",
            )
            continue
        cur_wall = cur_stage.get("wall_seconds", 0.0)
        limit = base_wall * (1.0 + wall_tolerance)
        result.add(
            check_id + ".wall_seconds",
            "fail" if cur_wall > limit else "pass",
            current=cur_wall, baseline=base_wall, limit=limit,
            detail=(
                f"stage slowed beyond +{wall_tolerance:.0%}"
                if cur_wall > limit
                else ""
            ),
        )
        for rate, base_value in sorted(
            base_stage.get("rates", {}).items()
        ):
            cur_value = cur_stage.get("rates", {}).get(rate)
            rate_id = f"{check_id}.{rate}"
            if cur_value is None:
                result.add(
                    rate_id, "warn", baseline=base_value,
                    detail="rate missing from current artifact",
                )
                continue
            floor = base_value * (1.0 - rate_tolerance)
            result.add(
                rate_id,
                "fail" if cur_value < floor else "pass",
                current=cur_value, baseline=base_value, limit=floor,
                detail=(
                    f"throughput dropped beyond -{rate_tolerance:.0%}"
                    if cur_value < floor
                    else ""
                ),
            )


def _check_overheads(
    result: GateResult,
    prefix: str,
    overheads: Dict[str, float],
    target: float,
) -> None:
    for name, value in sorted(overheads.items()):
        check_id = f"{prefix}.{name}"
        if not isinstance(value, (int, float)):
            continue
        if value > target:
            result.add(
                check_id, "fail", current=value, limit=target,
                detail=f"overhead above {target:.0%} target",
            )
        elif value < -target:
            result.add(
                check_id, "warn", current=value, limit=target,
                detail=(
                    "suspiciously negative overhead — likely a "
                    "measurement artifact (unpaid warmup?)"
                ),
            )
        else:
            result.add(check_id, "pass", current=value, limit=target)


def compare_artifacts(
    current: Dict,
    baseline: Dict,
    wall_tolerance: float = 0.5,
    rate_tolerance: float = 0.4,
    min_seconds: float = 0.05,
) -> GateResult:
    """Compare a fresh benchmark artifact against the committed baseline."""
    result = GateResult()
    if current.get("version") != baseline.get("version"):
        result.add(
            "artifact.version", "fail",
            current=current.get("version"),
            baseline=baseline.get("version"),
            detail="artifact format version mismatch",
        )
    comparable_timings = current.get("scale") == baseline.get("scale")
    if not comparable_timings:
        result.add(
            "artifact.scale", "warn",
            current=current.get("scale"), baseline=baseline.get("scale"),
            detail="scale mismatch — wall/rate checks skipped",
        )
    current_pairs = current.get("pairs", {})
    for pair, base_aligners in sorted(baseline.get("pairs", {}).items()):
        cur_aligners = current_pairs.get(pair)
        if cur_aligners is None:
            result.add(
                f"pairs.{pair}", "warn",
                detail="pair missing from current artifact",
            )
            continue
        for aligner, base_entry in sorted(base_aligners.items()):
            if not isinstance(base_entry, dict) or "funnel" not in base_entry:
                continue
            cur_entry = cur_aligners.get(aligner, {})
            prefix = f"pairs.{pair}.{aligner}"
            _check_deterministic(
                result,
                f"{prefix}.funnel",
                cur_entry.get("funnel", {}),
                base_entry.get("funnel", {}),
            )
            _check_deterministic(
                result,
                f"{prefix}.workload",
                cur_entry.get("workload", {}),
                base_entry.get("workload", {}),
            )
            if comparable_timings:
                _check_stages(
                    result,
                    f"{prefix}.stages",
                    cur_entry.get("stages", {}),
                    base_entry.get("stages", {}),
                    wall_tolerance,
                    rate_tolerance,
                    min_seconds,
                )
    fault = current.get("fault_overhead", {})
    if fault:
        _check_overheads(
            result,
            "fault_overhead",
            fault.get("overhead", {}),
            float(fault.get("target", 0.05)),
        )
        if fault.get("identical_output") is False:
            result.add(
                "fault_overhead.identical_output", "fail", current=False,
                detail="supervised run output diverged from raw run",
            )
    obs = current.get("obs_overhead", {})
    if obs:
        overheads = obs.get("overhead", {})
        targets = obs.get("targets", {})
        for name, value in sorted(overheads.items()):
            _check_overheads(
                result,
                "obs_overhead",
                {name: value},
                float(targets.get(name, 0.05)),
            )
        if obs.get("identical_output") is False:
            result.add(
                "obs_overhead.identical_output", "fail", current=False,
                detail="telemetry-on run output diverged",
            )
        if obs.get("dropped_events", 0) > 0:
            result.add(
                "obs_overhead.dropped_events", "fail",
                current=obs.get("dropped_events"), limit=0,
                detail="telemetry bus dropped events during benchmark",
            )
    base_kernels = baseline.get("kernels", {})
    if comparable_timings and base_kernels:
        cur_kernels = current.get("kernels", {})
        for kernel, base_entry in sorted(base_kernels.items()):
            if not isinstance(base_entry, dict):
                continue
            base_rate = base_entry.get("new_cells_per_sec")
            if base_rate is None:
                continue
            check_id = f"kernels.{kernel}.new_cells_per_sec"
            cur_rate = cur_kernels.get(kernel, {}).get("new_cells_per_sec")
            if cur_rate is None:
                result.add(
                    check_id, "warn", baseline=base_rate,
                    detail="kernel rate missing from current artifact",
                )
                continue
            floor = base_rate * (1.0 - rate_tolerance)
            result.add(
                check_id,
                "fail" if cur_rate < floor else "pass",
                current=cur_rate, baseline=base_rate, limit=floor,
                detail=(
                    f"kernel throughput dropped beyond -{rate_tolerance:.0%}"
                    if cur_rate < floor
                    else ""
                ),
            )
    scaling = current.get("parallel_scaling")
    base_scaling = baseline.get("parallel_scaling")
    if isinstance(scaling, dict):
        if scaling.get("identical_output") is False:
            result.add(
                "parallel_scaling.identical_output", "fail",
                current=False,
                detail="streamed/barrier output diverged from serial",
            )
        targets = scaling.get("targets", {})
        at = str(targets.get("at_workers", "2"))
        improvement = scaling.get("streaming_improvement", {}).get(at)
        reduction = scaling.get("idle_tail_reduction", {}).get(at)
        if comparable_timings and improvement is not None:
            target = targets.get("streaming_improvement")
            if target is not None:
                result.add(
                    f"parallel_scaling.streaming_improvement.{at}",
                    "fail" if improvement < target else "pass",
                    current=improvement, limit=target,
                    detail=(
                        "streamed schedule no longer beats the barrier "
                        f"schedule by the {target}x target"
                        if improvement < target
                        else ""
                    ),
                )
            if isinstance(base_scaling, dict):
                base_improvement = base_scaling.get(
                    "streaming_improvement", {}
                ).get(at)
                if base_improvement:
                    floor = base_improvement * (1.0 - rate_tolerance)
                    result.add(
                        f"parallel_scaling.streaming_improvement.{at}"
                        ".regression",
                        "fail" if improvement < floor else "pass",
                        current=improvement, baseline=base_improvement,
                        limit=floor,
                        detail=(
                            "streaming improvement regressed beyond "
                            f"-{rate_tolerance:.0%}"
                            if improvement < floor
                            else ""
                        ),
                    )
        if comparable_timings and reduction is not None:
            target = targets.get("idle_tail_reduction")
            if target is not None:
                result.add(
                    f"parallel_scaling.idle_tail_reduction.{at}",
                    "fail" if reduction < target else "pass",
                    current=reduction, limit=target,
                    detail=(
                        "streamed schedule no longer removes "
                        f"{target:.0%} of the barrier idle tail"
                        if reduction < target
                        else ""
                    ),
                )
    return result


def render_gate(result: GateResult, verbose: bool = False) -> str:
    """Human-readable verdict: failures/warnings, then the tally."""
    lines: List[str] = []
    for check in result.checks:
        if check["status"] == "pass" and not verbose:
            continue
        if check["status"] == "skip" and not verbose:
            continue
        value = check.get("current")
        value_text = (
            f" current={value:.4g}" if isinstance(value, float)
            else f" current={value}" if value is not None else ""
        )
        base = check.get("baseline")
        base_text = (
            f" baseline={base:.4g}" if isinstance(base, float)
            else f" baseline={base}" if base is not None else ""
        )
        detail = f" — {check['detail']}" if check["detail"] else ""
        lines.append(
            f"{check['status'].upper():<5} {check['id']}"
            f"{value_text}{base_text}{detail}"
        )
    counts = result.counts()
    lines.append(
        f"verdict: {result.verdict} "
        f"({counts['pass']} pass, {counts['fail']} fail, "
        f"{counts['warn']} warn, {counts['skip']} skipped)"
    )
    return "\n".join(lines)
