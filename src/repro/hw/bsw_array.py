"""Cycle model of the Banded Smith-Waterman filter array.

Because the BSW band is fixed, the stripe windows are closed-form
functions of the stripe number (paper equations 4-5)::

    j_start = max(0, (n - 1) * N_pe + 1 - B)
    j_stop  = min(r_len - 1, n * N_pe + B)

so a filter tile's cycle count — and hence the array's tile throughput —
follows directly from the tile geometry.  With the paper's FPGA
configuration (32 PEs at 150 MHz, 50 arrays, ``T_f``=320, ``B``=32) this
model lands at the ~6M tiles/s the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .systolic import SystolicArrayConfig, stripe_cycles


@dataclass(frozen=True)
class BswArrayModel:
    """Throughput/latency model of one BSW array."""

    config: SystolicArrayConfig
    tile_size: int = 320
    band: int = 32

    def tile_cycles(self) -> int:
        """Cycles to process one filter tile (equations 4-5 windows)."""
        n_pe = self.config.n_pe
        rows = self.tile_size
        cols = self.tile_size
        n_stripes = (rows + n_pe - 1) // n_pe
        total = self.config.tile_overhead
        for stripe in range(1, n_stripes + 1):
            j_start = max(0, (stripe - 1) * n_pe + 1 - self.band)
            j_stop = min(cols - 1, stripe * n_pe + self.band)
            if j_stop >= j_start:
                total += stripe_cycles(j_stop - j_start + 1, self.config)
        return total

    def tiles_per_second(self) -> float:
        """Sustained filter-tile throughput of one array."""
        return self.config.clock_hz / self.tile_cycles()

    def tile_latency_seconds(self) -> float:
        return self.tile_cycles() / self.config.clock_hz
