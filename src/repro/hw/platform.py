"""Platform descriptions: CPU baseline, FPGA, and ASIC (paper section V).

Each platform bundles what the cost model needs: array provisioning and
clocks for the accelerators, and measured price/power/throughput constants
for the software baselines.  Software constants are the paper's measured
values on the c4.8xlarge instance (36 threads): 225 K Parasail BSW
tiles/s for the iso-sensitive baseline, with seeding and ungapped-filter
rates back-derived from the paper's Table V runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bsw_array import BswArrayModel
from .gactx_array import GactXArrayModel
from .memory import DramSystem
from .power import CPU_POWER_W, FPGA_POWER_W, asic_power_w
from .systolic import SystolicArrayConfig


@dataclass(frozen=True)
class CpuPlatform:
    """The software baseline host (Amazon EC2 c4.8xlarge)."""

    name: str = "c4.8xlarge"
    price_per_hour: float = 1.59
    power_w: float = CPU_POWER_W
    threads: int = 36
    #: Parasail banded-SW throughput, 320-base tiles, all cores busy.
    bsw_tiles_per_sec: float = 225e3
    #: Ungapped X-drop filter rate in scored diagonal cells per second —
    #: same order as Parasail's SIMD cell rate (225K tiles/s x ~20.8K
    #: in-band cells/tile ~= 4.7e9 cells/s); ungapped cells are cheaper
    #: per cell, hence slightly faster.
    ungapped_cells_per_sec: float = 6.0e9
    #: Seed-table lookups per second (multi-threaded software seeding,
    #: counting every word lookup including transition variants).
    seeds_per_sec: float = 3.0e7
    #: Software GACT-X extension tile rate (Y-drop gapped extension).
    extension_tiles_per_sec: float = 80.0


@dataclass(frozen=True)
class FpgaPlatform:
    """The AWS F1 deployment (Xilinx Virtex UltraScale+, f1.2xlarge)."""

    name: str = "f1.2xlarge"
    price_per_hour: float = 1.65
    power_w: float = FPGA_POWER_W
    bsw_arrays: int = 50
    gactx_arrays: int = 2
    array_config: SystolicArrayConfig = field(
        default_factory=lambda: SystolicArrayConfig(
            n_pe=32, clock_hz=150e6
        )
    )
    dram: DramSystem = field(
        default_factory=lambda: DramSystem(channels=1)
    )

    def bsw_model(self, tile_size: int = 320, band: int = 32) -> BswArrayModel:
        return BswArrayModel(
            config=self.array_config, tile_size=tile_size, band=band
        )

    def gactx_model(self) -> GactXArrayModel:
        return GactXArrayModel(config=self.array_config)


@dataclass(frozen=True)
class AsicPlatform:
    """The TSMC 40 nm ASIC provisioning (paper Table IV)."""

    name: str = "darwin-wga-asic"
    bsw_arrays: int = 64
    gactx_arrays: int = 12
    array_config: SystolicArrayConfig = field(
        default_factory=lambda: SystolicArrayConfig(n_pe=64, clock_hz=1e9)
    )
    dram: DramSystem = field(default_factory=DramSystem)

    @property
    def power_w(self) -> float:
        return asic_power_w()

    def bsw_model(self, tile_size: int = 320, band: int = 32) -> BswArrayModel:
        return BswArrayModel(
            config=self.array_config, tile_size=tile_size, band=band
        )

    def gactx_model(self) -> GactXArrayModel:
        return GactXArrayModel(config=self.array_config)


def default_cpu() -> CpuPlatform:
    return CpuPlatform()


def default_fpga() -> FpgaPlatform:
    return FpgaPlatform()


def default_asic() -> AsicPlatform:
    return AsicPlatform()
