"""Multi-array tile scheduler simulation.

The FPGA carries 50 BSW and 2 GACT-X arrays; the ASIC 64 and 12.  Tiles
are independent, so the host dispatches each to the first free array —
a classic list-scheduling problem.  This simulator plays out a tile
stream against ``n_arrays`` identical arrays and reports makespan,
per-array utilisation, and queueing statistics, exposing when an
accelerator is compute-bound versus dispatch-bound (and, combined with
:mod:`repro.hw.memory`, bandwidth-bound).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Sequence as TypingSequence


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a tile stream onto identical arrays."""

    makespan_cycles: int
    busy_cycles: int
    n_arrays: int
    tiles: int
    per_array_busy: TypingSequence[int]

    @property
    def utilisation(self) -> float:
        """Mean fraction of the makespan each array spent computing."""
        if self.makespan_cycles == 0 or self.n_arrays == 0:
            return 0.0
        return self.busy_cycles / (self.makespan_cycles * self.n_arrays)

    @property
    def mean_tile_cycles(self) -> float:
        return self.busy_cycles / self.tiles if self.tiles else 0.0

    def throughput_tiles_per_sec(self, clock_hz: float) -> float:
        """Sustained tile throughput over the makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.tiles * clock_hz / self.makespan_cycles


def schedule_tiles(
    tile_cycles: Iterable[int],
    n_arrays: int,
    dispatch_overhead: int = 0,
) -> ScheduleResult:
    """Greedy list-schedule of tiles onto ``n_arrays`` identical arrays.

    Args:
        tile_cycles: per-tile cycle costs, in dispatch order.
        n_arrays: number of identical arrays.
        dispatch_overhead: host cycles consumed per dispatch (serialised
            across arrays — models the PCIe/queue bottleneck).

    Returns:
        Makespan and utilisation statistics.
    """
    if n_arrays <= 0:
        raise ValueError("n_arrays must be positive")
    heap: List[tuple] = [(0, i) for i in range(n_arrays)]
    heapq.heapify(heap)
    busy = [0] * n_arrays
    dispatch_clock = 0
    total = 0
    count = 0
    makespan = 0
    for cycles in tile_cycles:
        if cycles < 0:
            raise ValueError("tile cycles must be non-negative")
        dispatch_clock += dispatch_overhead
        free_at, idx = heapq.heappop(heap)
        start = max(free_at, dispatch_clock)
        end = start + cycles
        busy[idx] += cycles
        total += cycles
        count += 1
        makespan = max(makespan, end)
        heapq.heappush(heap, (end, idx))
    return ScheduleResult(
        makespan_cycles=makespan,
        busy_cycles=total,
        n_arrays=n_arrays,
        tiles=count,
        per_array_busy=tuple(busy),
    )


def saturation_sweep(
    tile_cycles: TypingSequence[int],
    array_counts: Iterable[int],
    dispatch_overhead: int = 0,
) -> List[tuple]:
    """Throughput scaling as the array count grows.

    Returns ``(n_arrays, makespan, utilisation)`` rows; throughput stops
    scaling once dispatch overhead (or, externally, DRAM bandwidth)
    dominates — the provisioning analysis of paper section VI-A.
    """
    rows = []
    for n_arrays in array_counts:
        result = schedule_tiles(
            tile_cycles, n_arrays, dispatch_overhead=dispatch_overhead
        )
        rows.append((n_arrays, result.makespan_cycles, result.utilisation))
    return rows
