"""Runtime, performance/$ and performance/Watt models (paper Table V).

The paper compares four quantities per species pair:

* **LASTZ runtime** — the ungapped-filter software baseline;
* **iso-sensitive software runtime** — the Darwin-WGA algorithm in
  software, dominated by the gapped filtering stage and estimated as
  ``filter_tiles / parasail_tile_rate`` (exactly the paper's method);
* **Darwin-WGA FPGA / ASIC runtimes** — filter and extension stages on
  the modelled arrays (cycle model capped by DRAM bandwidth), with
  software seeding added for the FPGA (on the ASIC the seeding overlaps
  the much longer accelerator stages).

Improvements are then ``performance/$`` for the FPGA (runtime x instance
price) and ``performance/W`` for the ASIC (runtime x platform power),
both against the iso-sensitive software baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Workload
from .memory import (
    bandwidth_bound_tiles_per_sec,
    bsw_tile_bytes,
    gactx_tile_bytes,
)
from .platform import AsicPlatform, CpuPlatform, FpgaPlatform


def scale_workload(workload: Workload, factor: float) -> Workload:
    """Extrapolate a small-genome workload to ``factor``-times-larger
    genomes.

    Seed hits and filter tiles grow with the *product* of the two genome
    lengths (random seed collisions are quadratic), while extension tiles
    grow with the amount of alignable sequence (linear).  This is how the
    paper's Table V workload shape — filter tiles outnumbering extension
    tiles by ~3,000:1 at 100 Mbp — emerges from genome scale, and it is
    the documented substitution for running Python DP on full genomes.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    quadratic = factor * factor
    return Workload(
        seed_hits=int(workload.seed_hits * quadratic),
        filter_tiles=int(workload.filter_tiles * quadratic),
        filter_cells=int(workload.filter_cells * quadratic),
        extension_tiles=int(workload.extension_tiles * factor),
        extension_cells=int(workload.extension_cells * factor),
        anchors=int(workload.anchors * factor),
        absorbed_anchors=int(workload.absorbed_anchors * factor),
        extension_tile_traces=list(workload.extension_tile_traces),
    )


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Per-stage runtime of one platform on one workload (seconds)."""

    seeding: float
    filtering: float
    extension: float

    @property
    def total(self) -> float:
        return self.seeding + self.filtering + self.extension


@dataclass(frozen=True)
class CostModel:
    """Bundle of platforms with the paper's comparison arithmetic."""

    cpu: CpuPlatform
    fpga: FpgaPlatform
    asic: AsicPlatform
    filter_tile_size: int = 320
    filter_band: int = 32
    extension_tile_size: int = 1920

    @classmethod
    def default(cls) -> "CostModel":
        return cls(cpu=CpuPlatform(), fpga=FpgaPlatform(), asic=AsicPlatform())

    # ---------------------------------------------------------------- CPU

    def iso_software_runtime(self, workload: Workload) -> float:
        """Iso-sensitive software runtime (gapped filtering dominates)."""
        return workload.filter_tiles / self.cpu.bsw_tiles_per_sec

    def lastz_runtime(self, workload: Workload) -> RuntimeBreakdown:
        """Modelled LASTZ runtime from its (ungapped) workload."""
        return RuntimeBreakdown(
            seeding=workload.seed_hits / self.cpu.seeds_per_sec,
            filtering=workload.filter_cells
            / self.cpu.ungapped_cells_per_sec,
            extension=workload.extension_tiles
            / self.cpu.extension_tiles_per_sec,
        )

    # --------------------------------------------------------- accelerators

    def _accelerator_runtime(
        self,
        workload: Workload,
        bsw_arrays: int,
        gactx_arrays: int,
        platform,
        include_seeding: bool,
    ) -> RuntimeBreakdown:
        bsw = platform.bsw_model(
            tile_size=self.filter_tile_size, band=self.filter_band
        )
        compute_rate = bsw.tiles_per_second() * bsw_arrays
        bandwidth_rate = bandwidth_bound_tiles_per_sec(
            platform.dram, bsw_tile_bytes(self.filter_tile_size), share=0.9
        )
        filter_rate = min(compute_rate, bandwidth_rate)
        filtering = workload.filter_tiles / filter_rate

        gactx = platform.gactx_model()
        traces = workload.extension_tile_traces
        if traces:
            per_tile = gactx.batch_cycles(traces) / len(traces)
        else:
            # No recorded traces (e.g. analytic workloads): assume fully
            # dense tiles as a conservative bound.
            per_tile = (
                self.extension_tile_size
                * (self.extension_tile_size + gactx.config.n_pe)
                / gactx.config.n_pe
            )
        tile_rate = gactx.config.clock_hz / per_tile * gactx_arrays
        ext_bandwidth = bandwidth_bound_tiles_per_sec(
            platform.dram,
            gactx_tile_bytes(self.extension_tile_size),
            share=0.1,
        )
        extension = workload.extension_tiles / min(
            tile_rate, ext_bandwidth
        )

        seeding = (
            workload.seed_hits / self.cpu.seeds_per_sec
            if include_seeding
            else 0.0
        )
        return RuntimeBreakdown(
            seeding=seeding, filtering=filtering, extension=extension
        )

    def fpga_runtime(self, workload: Workload) -> RuntimeBreakdown:
        """Darwin-WGA runtime on the FPGA (software seeding included)."""
        return self._accelerator_runtime(
            workload,
            self.fpga.bsw_arrays,
            self.fpga.gactx_arrays,
            self.fpga,
            include_seeding=True,
        )

    def asic_runtime(self, workload: Workload) -> RuntimeBreakdown:
        """Darwin-WGA runtime on the ASIC (seeding overlaps hardware)."""
        return self._accelerator_runtime(
            workload,
            self.asic.bsw_arrays,
            self.asic.gactx_arrays,
            self.asic,
            include_seeding=False,
        )

    # ------------------------------------------------------------ metrics

    def fpga_perf_per_dollar_improvement(self, workload: Workload) -> float:
        """FPGA performance/$ gain over iso-sensitive software."""
        iso = self.iso_software_runtime(workload)
        fpga = self.fpga_runtime(workload).total
        if fpga == 0:
            return float("inf")
        return (iso * self.cpu.price_per_hour) / (
            fpga * self.fpga.price_per_hour
        )

    def asic_perf_per_watt_improvement(self, workload: Workload) -> float:
        """ASIC performance/W gain over iso-sensitive software."""
        iso = self.iso_software_runtime(workload)
        asic = self.asic_runtime(workload).total
        if asic == 0:
            return float("inf")
        return (iso * self.cpu.power_w) / (asic * self.asic.power_w)

    def speedup_vs_lastz(
        self, darwin_workload: Workload, lastz_workload: Workload
    ) -> float:
        """ASIC speedup over the LASTZ software baseline."""
        lastz = self.lastz_runtime(lastz_workload).total
        asic = self.asic_runtime(darwin_workload).total
        return lastz / asic if asic else float("inf")
