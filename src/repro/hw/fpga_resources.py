"""FPGA resource model: how many arrays fit on a device.

The paper maps 50 BSW arrays and 2 GACT-X arrays of 32 PEs each onto the
Xilinx Virtex UltraScale+ (VU9P) of an AWS f1.2xlarge and closes timing
at 150 MHz (section V-C).  This model assigns per-PE LUT/FF/BRAM budgets
— calibrated so the paper's mapping fills the device — and answers
provisioning questions: given a device and a BSW:GACT-X mix, how many
arrays fit, and what filter throughput does that imply?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .bsw_array import BswArrayModel
from .systolic import SystolicArrayConfig


@dataclass(frozen=True)
class FpgaDevice:
    """Usable logic resources of one FPGA (after shell/overheads)."""

    name: str
    luts: int
    ffs: int
    bram_kb: int

    def __post_init__(self) -> None:
        if min(self.luts, self.ffs, self.bram_kb) <= 0:
            raise ValueError("device resources must be positive")


#: AWS F1's VU9P, with ~25% reserved for the shell and interconnect.
VU9P = FpgaDevice(name="xcvu9p", luts=885_000, ffs=1_770_000, bram_kb=9_000)


@dataclass(frozen=True)
class PeCost:
    """Per-PE resource cost of one array flavour."""

    luts: int
    ffs: int
    bram_kb: float
    #: fixed per-array overhead (control FSM, DMA, score collection)
    array_luts: int = 2500
    array_ffs: int = 4000
    array_bram_kb: float = 8.0


#: Calibrated so that 50 BSW + 2 GACT-X arrays of 32 PEs fill ~VU9P.
BSW_PE_COST = PeCost(luts=445, ffs=800, bram_kb=1.0)
GACTX_PE_COST = PeCost(luts=650, ffs=1100, bram_kb=18.0)


def array_cost(cost: PeCost, n_pe: int) -> Tuple[int, int, float]:
    """Total (LUTs, FFs, BRAM KB) of one array."""
    return (
        cost.array_luts + n_pe * cost.luts,
        cost.array_ffs + n_pe * cost.ffs,
        cost.array_bram_kb + n_pe * cost.bram_kb,
    )


def utilisation(
    device: FpgaDevice,
    bsw_arrays: int,
    gactx_arrays: int,
    n_pe: int = 32,
) -> Tuple[float, float, float]:
    """(LUT, FF, BRAM) utilisation fractions of a mapping."""
    bsw = array_cost(BSW_PE_COST, n_pe)
    gactx = array_cost(GACTX_PE_COST, n_pe)
    luts = bsw_arrays * bsw[0] + gactx_arrays * gactx[0]
    ffs = bsw_arrays * bsw[1] + gactx_arrays * gactx[1]
    bram = bsw_arrays * bsw[2] + gactx_arrays * gactx[2]
    return (
        luts / device.luts,
        ffs / device.ffs,
        bram / device.bram_kb,
    )


def fits(
    device: FpgaDevice,
    bsw_arrays: int,
    gactx_arrays: int,
    n_pe: int = 32,
) -> bool:
    """Whether a mapping fits within every resource class."""
    return all(
        fraction <= 1.0
        for fraction in utilisation(device, bsw_arrays, gactx_arrays, n_pe)
    )


def max_bsw_arrays(
    device: FpgaDevice, gactx_arrays: int = 2, n_pe: int = 32
) -> int:
    """Largest BSW array count that still fits alongside the GACT-X
    arrays (the paper's provisioning question)."""
    count = 0
    while fits(device, count + 1, gactx_arrays, n_pe):
        count += 1
        if count > 10_000:
            raise RuntimeError("unbounded fit; check resource model")
    return count


def filter_throughput(
    device: FpgaDevice,
    clock_hz: float = 150e6,
    gactx_arrays: int = 2,
    n_pe: int = 32,
    tile_size: int = 320,
    band: int = 32,
) -> Tuple[int, float]:
    """(BSW arrays that fit, aggregate filter tiles/s) on a device."""
    arrays = max_bsw_arrays(device, gactx_arrays, n_pe)
    config = SystolicArrayConfig(n_pe=n_pe, clock_hz=clock_hz)
    model = BswArrayModel(config=config, tile_size=tile_size, band=band)
    return arrays, arrays * model.tiles_per_second()
