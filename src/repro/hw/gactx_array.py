"""Cycle and traceback-memory model of the GACT-X extension array.

GACT-X stripe windows are data dependent (they follow the X-drop pruning
frontier), so the model replays the per-row ``(j_start, j_stop)`` windows
recorded by the software kernel (:class:`repro.core.gact_x.TileTrace`),
groups them into ``N_pe``-row stripes exactly as the hardware sequencer
would, and adds the on-chip traceback walk.

It also accounts traceback-memory occupancy: 4 bits per computed cell,
banked one BRAM per PE — the resource GACT-X's pruning saves relative to
GACT's full tiles (the comparison behind the paper's Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence as TypingSequence

from ..core.gact_x import TileTrace
from .systolic import SystolicArrayConfig, tile_cycles_from_windows

#: Hardware pointer width per DP cell (2 bits direction + 2 bits affine).
POINTER_BITS = 4


@dataclass(frozen=True)
class GactXArrayModel:
    """Throughput/latency model of one GACT-X array."""

    config: SystolicArrayConfig
    traceback_sram_bytes: int = 64 * 16 * 1024  # 64 PEs x 16 KB (Table IV)

    def tile_cycles(self, trace: TileTrace) -> int:
        """Cycles for one extension tile from its recorded row windows."""
        if not trace.row_windows:
            return self.config.tile_overhead
        # Traceback walks at most one pointer per alignment column; the
        # path length is bounded by rows + columns of the computed region.
        max_cols = max(hi - lo + 1 for lo, hi in trace.row_windows)
        traceback_steps = trace.rows + max_cols
        return tile_cycles_from_windows(
            trace.row_windows, self.config, traceback_steps=traceback_steps
        )

    def batch_cycles(self, traces: Iterable[TileTrace]) -> int:
        return sum(self.tile_cycles(trace) for trace in traces)

    def mean_tiles_per_second(
        self, traces: TypingSequence[TileTrace]
    ) -> float:
        """Sustained tile throughput over a recorded workload."""
        if not traces:
            return 0.0
        cycles = self.batch_cycles(traces)
        if cycles == 0:
            return 0.0
        return len(traces) * self.config.clock_hz / cycles

    def pointer_bytes(self, trace: TileTrace) -> int:
        """Traceback-memory bytes one tile occupies (4 bits per cell)."""
        return (trace.cells * POINTER_BITS + 7) // 8

    def fits_in_sram(self, trace: TileTrace) -> bool:
        """Whether the tile's pointers fit the banked traceback SRAM."""
        return self.pointer_bytes(trace) <= self.traceback_sram_bytes

    def peak_pointer_bytes(
        self, traces: TypingSequence[TileTrace]
    ) -> int:
        """Worst-case traceback occupancy across a workload."""
        return max(
            (self.pointer_bytes(trace) for trace in traces), default=0
        )
