"""DRAM traffic, bandwidth and energy model (Ramulator/DRAMPower-lite).

The accelerator streams tile sequences from DRAM and returns scores or
traceback pointers; the ASIC is provisioned so that DRAM bandwidth — not
compute — is the bottleneck (paper section VI-A).  This module models
per-tile traffic, channel bandwidth, and a linear access-energy power
model calibrated to the paper's 3.10 W for four DDR4-2400 channels.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits per base as stored for streaming (packed; the BRAM uses 3 bits,
#: DRAM bursts are modelled at 4 bits for alignment).
STREAM_BITS_PER_BASE = 4

#: Bits per traceback pointer returned to the host per alignment column.
TRACEBACK_BITS_PER_STEP = 2


@dataclass(frozen=True)
class DramChannelConfig:
    """One DDR4 channel (DDR4-2400R x8, as in Table IV)."""

    peak_bytes_per_sec: float = 19.2e9  # DDR4-2400: 2400 MT/s x 8 B
    efficiency: float = 0.7  # sustainable fraction of peak
    idle_watts: float = 0.085
    energy_per_byte: float = 60e-12

    @property
    def sustained_bytes_per_sec(self) -> float:
        return self.peak_bytes_per_sec * self.efficiency


@dataclass(frozen=True)
class DramSystem:
    """A set of identical DRAM channels."""

    channel: DramChannelConfig = DramChannelConfig()
    channels: int = 4

    @property
    def sustained_bandwidth(self) -> float:
        """Aggregate sustainable bytes per second."""
        return self.channel.sustained_bytes_per_sec * self.channels

    def power(self, bytes_per_sec: float) -> float:
        """DRAM power at the given sustained traffic (DRAMPower-lite)."""
        return (
            self.channel.idle_watts * self.channels
            + bytes_per_sec * self.channel.energy_per_byte
        )


def bsw_tile_bytes(tile_size: int) -> int:
    """DRAM bytes to feed one BSW filter tile (two sequences in)."""
    return 2 * tile_size * STREAM_BITS_PER_BASE // 8


def gactx_tile_bytes(tile_size: int) -> int:
    """DRAM bytes for one GACT-X tile: two sequences in, pointers out."""
    sequences = 2 * tile_size * STREAM_BITS_PER_BASE // 8
    traceback = 2 * tile_size * TRACEBACK_BITS_PER_STEP // 8
    return sequences + traceback


def bandwidth_bound_tiles_per_sec(
    dram: DramSystem, bytes_per_tile: int, share: float = 1.0
) -> float:
    """Tile throughput ceiling imposed by DRAM bandwidth.

    ``share`` is the fraction of total bandwidth granted to this engine
    (filter and extension arrays share the channels).
    """
    if not 0.0 < share <= 1.0:
        raise ValueError("share must lie in (0, 1]")
    if bytes_per_tile <= 0:
        raise ValueError("bytes_per_tile must be positive")
    return dram.sustained_bandwidth * share / bytes_per_tile
