"""Hardware models: systolic arrays, memory, platforms, power, cost."""

from .bsw_array import BswArrayModel
from .cost import CostModel, RuntimeBreakdown, scale_workload
from .fpga_resources import (
    BSW_PE_COST,
    GACTX_PE_COST,
    VU9P,
    FpgaDevice,
    PeCost,
    filter_throughput,
    fits,
    max_bsw_arrays,
    utilisation,
)
from .gactx_array import POINTER_BITS, GactXArrayModel
from .memory import (
    DramChannelConfig,
    DramSystem,
    bandwidth_bound_tiles_per_sec,
    bsw_tile_bytes,
    gactx_tile_bytes,
)
from .platform import (
    AsicPlatform,
    CpuPlatform,
    FpgaPlatform,
    default_asic,
    default_cpu,
    default_fpga,
)
from .power import (
    AsicEstimate,
    ComponentEstimate,
    CPU_POWER_W,
    FPGA_POWER_W,
    asic_estimate,
    asic_power_w,
)
from .schedule import ScheduleResult, saturation_sweep, schedule_tiles
from .trace import (
    BURST_BYTES,
    TraceAccess,
    TraceSummary,
    generate_trace,
    provisioning_check,
    summarise,
    tile_accesses,
)
from .system import EngineReport, SystemReport, simulate
from .systolic import (
    SystolicArrayConfig,
    dense_tile_cycles,
    stripe_cycles,
    stripes_of,
    tile_cycles_from_windows,
)

__all__ = [
    "BswArrayModel",
    "CostModel",
    "RuntimeBreakdown",
    "scale_workload",
    "BSW_PE_COST",
    "GACTX_PE_COST",
    "VU9P",
    "FpgaDevice",
    "PeCost",
    "filter_throughput",
    "fits",
    "max_bsw_arrays",
    "utilisation",
    "POINTER_BITS",
    "GactXArrayModel",
    "DramChannelConfig",
    "DramSystem",
    "bandwidth_bound_tiles_per_sec",
    "bsw_tile_bytes",
    "gactx_tile_bytes",
    "AsicPlatform",
    "CpuPlatform",
    "FpgaPlatform",
    "default_asic",
    "default_cpu",
    "default_fpga",
    "AsicEstimate",
    "ComponentEstimate",
    "CPU_POWER_W",
    "FPGA_POWER_W",
    "asic_estimate",
    "asic_power_w",
    "SystolicArrayConfig",
    "dense_tile_cycles",
    "stripe_cycles",
    "stripes_of",
    "tile_cycles_from_windows",
    "EngineReport",
    "SystemReport",
    "simulate",
    "ScheduleResult",
    "saturation_sweep",
    "schedule_tiles",
    "BURST_BYTES",
    "TraceAccess",
    "TraceSummary",
    "generate_trace",
    "provisioning_check",
    "summarise",
    "tile_accesses",
]
