"""Cycle-level model of the linear systolic PE arrays (paper section IV).

Both accelerators are linear arrays of ``N_pe`` processing elements
exploiting wavefront parallelism along a *stripe* of ``N_pe`` DP rows: the
stripe's query characters are loaded into the PEs and target characters
stream through, producing ``N_pe`` cell scores (and 4-bit pointers) per
cycle.  A stripe that computes columns ``[j_start, j_stop]`` therefore
takes ``(j_stop - j_start + 1) + (N_pe - 1)`` cycles — one per streamed
column plus the pipeline skew of the last PE.

The models below convert per-tile column windows into cycles.  They are
deliberately independent of the software kernels: BSW windows come from
the closed-form equations 4-5, GACT-X windows from the row traces the
software kernel records, grouped into stripes exactly as the hardware
sequencer would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TypingSequence, Tuple


@dataclass(frozen=True)
class SystolicArrayConfig:
    """Geometry and clocking of one PE array."""

    n_pe: int = 32
    clock_hz: float = 150e6
    #: Fixed per-stripe sequencing overhead (control, BRAM turnaround).
    stripe_overhead: int = 0
    #: Fixed per-tile overhead (configuration, score/pointer readout).
    tile_overhead: int = 32

    def __post_init__(self) -> None:
        if self.n_pe <= 0:
            raise ValueError("n_pe must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")


def stripe_cycles(width: int, config: SystolicArrayConfig) -> int:
    """Cycles for one stripe computing ``width`` columns."""
    if width <= 0:
        return 0
    return width + config.n_pe - 1 + config.stripe_overhead


def stripes_of(
    row_windows: TypingSequence[Tuple[int, int]], n_pe: int
) -> TypingSequence[Tuple[int, int]]:
    """Group per-row column windows into per-stripe windows.

    The hardware computes ``N_pe`` rows per stripe over one contiguous
    column range, so a stripe's window is the union (min start, max stop)
    of its rows' windows.
    """
    stripes = []
    for base in range(0, len(row_windows), n_pe):
        group = row_windows[base : base + n_pe]
        stripes.append(
            (min(lo for lo, _ in group), max(hi for _, hi in group))
        )
    return stripes


def tile_cycles_from_windows(
    row_windows: TypingSequence[Tuple[int, int]],
    config: SystolicArrayConfig,
    traceback_steps: int = 0,
) -> int:
    """Cycles for a tile given its per-row column windows.

    ``traceback_steps`` adds the pointer-walk cycles (one per alignment
    column) for arrays that perform on-chip traceback (GACT-X).
    """
    total = config.tile_overhead + traceback_steps
    for lo, hi in stripes_of(row_windows, config.n_pe):
        total += stripe_cycles(hi - lo + 1, config)
    return total


def dense_tile_cycles(
    rows: int,
    cols: int,
    config: SystolicArrayConfig,
    traceback_steps: int = 0,
) -> int:
    """Cycles for a fully dense tile (every column of every stripe).

    This is GACT's cost model: without X-drop pruning, each of the
    ``ceil(rows / N_pe)`` stripes streams all ``cols`` target characters.
    """
    if rows <= 0 or cols <= 0:
        return config.tile_overhead
    n_stripes = (rows + config.n_pe - 1) // config.n_pe
    return (
        config.tile_overhead
        + traceback_steps
        + n_stripes * stripe_cycles(cols, config)
    )


def seconds(cycles: float, config: SystolicArrayConfig) -> float:
    """Convert a cycle count into seconds at the array clock."""
    return cycles / config.clock_hz
