"""ASIC area/power component model (paper Table IV) and platform power.

Per-PE logic area/power and per-byte SRAM constants are calibrated from
the paper's TSMC-40nm place-and-route numbers, so that the default
configuration (64 BSW arrays + 12 GACT-X arrays of 64 PEs, 16 KB of
traceback SRAM per GACT-X PE, four DDR4 channels) reproduces Table IV:
35.92 mm^2 and 43.34 W at 1 GHz.  Scaling the array counts (e.g. when
re-provisioning for a different memory system) scales the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .memory import DramSystem

# Calibration constants (40 nm, 1.0 GHz, worst-case PVT).
BSW_PE_AREA_MM2 = 16.6 / (64 * 64)
BSW_PE_POWER_W = 25.6 / (64 * 64)
GACTX_PE_AREA_MM2 = 4.2 / (12 * 64)
GACTX_PE_POWER_W = 6.72 / (12 * 64)
SRAM_AREA_MM2_PER_KB = 15.12 / (12 * 64 * 16)
SRAM_POWER_W_PER_KB = 7.92 / (12 * 64 * 16)
REFERENCE_CLOCK_HZ = 1.0e9


@dataclass(frozen=True)
class ComponentEstimate:
    """One row of the Table IV breakdown."""

    name: str
    configuration: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class AsicEstimate:
    """Full-chip area/power estimate."""

    components: List[ComponentEstimate]

    @property
    def area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def power_w(self) -> float:
        return sum(c.power_w for c in self.components)

    def table(self) -> str:
        """Render the breakdown as a Table IV-style text table."""
        lines = [
            f"{'Component':<18} {'Configuration':<28} "
            f"{'Area(mm2)':>10} {'Power(W)':>9}"
        ]
        for c in self.components:
            lines.append(
                f"{c.name:<18} {c.configuration:<28} "
                f"{c.area_mm2:>10.2f} {c.power_w:>9.2f}"
            )
        lines.append(
            f"{'Total':<18} {'':<28} "
            f"{self.area_mm2:>10.2f} {self.power_w:>9.2f}"
        )
        return "\n".join(lines)


def asic_estimate(
    bsw_arrays: int = 64,
    gactx_arrays: int = 12,
    n_pe: int = 64,
    sram_kb_per_pe: int = 16,
    clock_hz: float = REFERENCE_CLOCK_HZ,
    dram: Optional[DramSystem] = None,
    dram_bytes_per_sec: float = 46e9,
) -> AsicEstimate:
    """Estimate ASIC area and power for a given provisioning.

    Dynamic logic/SRAM power scales linearly with clock relative to the
    1 GHz calibration point; area is clock independent.  DRAM power uses
    the :mod:`repro.hw.memory` model at the stated sustained traffic.
    """
    if dram is None:
        dram = DramSystem()
    clock_scale = clock_hz / REFERENCE_CLOCK_HZ
    bsw_pes = bsw_arrays * n_pe
    gactx_pes = gactx_arrays * n_pe
    sram_kb = gactx_pes * sram_kb_per_pe
    components = [
        ComponentEstimate(
            name="BSW Logic",
            configuration=f"{bsw_arrays} x ({n_pe}PE array)",
            area_mm2=bsw_pes * BSW_PE_AREA_MM2,
            power_w=bsw_pes * BSW_PE_POWER_W * clock_scale,
        ),
        ComponentEstimate(
            name="GACT-X Logic",
            configuration=f"{gactx_arrays} x ({n_pe}PE array)",
            area_mm2=gactx_pes * GACTX_PE_AREA_MM2,
            power_w=gactx_pes * GACTX_PE_POWER_W * clock_scale,
        ),
        ComponentEstimate(
            name="Traceback SRAM",
            configuration=(
                f"{gactx_arrays} x ({n_pe}PE x {sram_kb_per_pe}KB/PE)"
            ),
            area_mm2=sram_kb * SRAM_AREA_MM2_PER_KB,
            power_w=sram_kb * SRAM_POWER_W_PER_KB * clock_scale,
        ),
        ComponentEstimate(
            name="DRAM",
            configuration=f"DDR4-2400R x {dram.channels}",
            area_mm2=0.0,
            power_w=dram.power(dram_bytes_per_sec),
        ),
    ]
    return AsicEstimate(components=components)


#: Measured platform powers including DRAM (paper Table VI).
CPU_POWER_W = 215.0
FPGA_POWER_W = 65.0


def asic_power_w() -> float:
    """Total ASIC power with the default provisioning (Table IV/VI)."""
    return asic_estimate().power_w
