"""Whole-accelerator simulation: arrays + scheduler + DRAM together.

The cost model (:mod:`repro.hw.cost`) uses closed-form rates; this module
*plays out* a recorded workload instead: filter tiles are list-scheduled
onto the BSW arrays and extension tiles (with their real recorded row
windows) onto the GACT-X arrays, both engines run concurrently (the
paper's Figure 6 partitioning), DRAM traffic is accumulated from both,
and the run is declared compute- or bandwidth-bound.  It is the
simulation counterpart of the paper's provisioning discussion in section
VI-A and a cross-check of the cost model's throughput numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import Workload
from ..obs.tracer import NULL_TRACER
from .bsw_array import BswArrayModel
from .gactx_array import GactXArrayModel
from .memory import bsw_tile_bytes, gactx_tile_bytes
from .schedule import schedule_tiles


@dataclass(frozen=True)
class EngineReport:
    """One engine's (filter or extension) simulated outcome."""

    tiles: int
    makespan_seconds: float
    utilisation: float
    bytes_moved: int

    @property
    def bandwidth_bytes_per_sec(self) -> float:
        if self.makespan_seconds == 0:
            return 0.0
        return self.bytes_moved / self.makespan_seconds


@dataclass(frozen=True)
class SystemReport:
    """Simulated accelerator run of one workload."""

    filter: EngineReport
    extension: EngineReport
    sustained_bandwidth: float

    @property
    def runtime_seconds(self) -> float:
        """Engines run concurrently; the slower one sets the runtime."""
        return max(self.filter.makespan_seconds, self.extension.makespan_seconds)

    @property
    def total_bandwidth_demand(self) -> float:
        if self.runtime_seconds == 0:
            return 0.0
        return (
            self.filter.bytes_moved + self.extension.bytes_moved
        ) / self.runtime_seconds

    @property
    def dram_bound(self) -> bool:
        return self.total_bandwidth_demand >= self.sustained_bandwidth

    @property
    def bandwidth_fraction(self) -> float:
        if self.sustained_bandwidth == 0:
            return float("inf")
        return self.total_bandwidth_demand / self.sustained_bandwidth


def simulate(
    workload: Workload,
    platform,
    filter_tile_size: int = 320,
    filter_band: int = 32,
    extension_tile_size: int = 1920,
    max_filter_tiles_simulated: int = 100_000,
    tracer=NULL_TRACER,
) -> SystemReport:
    """Play a workload through a platform's arrays.

    ``platform`` is an :class:`~repro.hw.platform.FpgaPlatform` or
    :class:`~repro.hw.platform.AsicPlatform`.  Filter tiles are uniform,
    so streams longer than ``max_filter_tiles_simulated`` are scheduled
    at that length and the makespan scaled back up (exact for uniform
    tiles up to rounding).

    A supplied tracer records one ``hw_simulate`` span whose engine
    children carry *simulated* cycle/second attributes next to the
    host's wall-clock, so hardware projections and software time land
    in one trace.
    """
    clock = platform.array_config.clock_hz

    with tracer.span(
        "hw_simulate",
        platform=type(platform).__name__,
        clock_hz=clock,
    ) as sim_span:
        # --- filter engine
        with tracer.span(
            "filter_engine", arrays=platform.bsw_arrays
        ) as engine_span:
            bsw = BswArrayModel(
                config=platform.array_config,
                tile_size=filter_tile_size,
                band=filter_band,
            )
            tile_cycles = bsw.tile_cycles()
            n_filter = int(workload.filter_tiles)
            simulated = min(n_filter, max_filter_tiles_simulated)
            scale = n_filter / simulated if simulated else 0.0
            filter_schedule = schedule_tiles(
                [tile_cycles] * simulated, platform.bsw_arrays
            )
            filter_report = EngineReport(
                tiles=n_filter,
                makespan_seconds=filter_schedule.makespan_cycles
                * scale
                / clock,
                utilisation=filter_schedule.utilisation,
                bytes_moved=n_filter * bsw_tile_bytes(filter_tile_size),
            )
            engine_span.inc("filter_tiles", n_filter)
            engine_span.set(
                simulated_cycles=filter_schedule.makespan_cycles * scale,
                simulated_seconds=filter_report.makespan_seconds,
                utilisation=filter_report.utilisation,
                bytes_moved=filter_report.bytes_moved,
            )

        # --- extension engine (uses recorded row windows when present)
        with tracer.span(
            "extension_engine", arrays=platform.gactx_arrays
        ) as engine_span:
            gactx = GactXArrayModel(config=platform.array_config)
            traces = workload.extension_tile_traces
            if traces:
                extension_cycles = [gactx.tile_cycles(t) for t in traces]
            else:
                dense = (
                    extension_tile_size
                    * (extension_tile_size + platform.array_config.n_pe)
                    // platform.array_config.n_pe
                )
                extension_cycles = [dense] * int(workload.extension_tiles)
            extension_schedule = schedule_tiles(
                extension_cycles, platform.gactx_arrays
            )
            n_extension = max(
                int(workload.extension_tiles), len(extension_cycles)
            )
            per_tile_bytes = gactx_tile_bytes(extension_tile_size)
            ext_scale = (
                n_extension / len(extension_cycles)
                if extension_cycles
                else 0.0
            )
            extension_report = EngineReport(
                tiles=n_extension,
                makespan_seconds=extension_schedule.makespan_cycles
                * ext_scale
                / clock,
                utilisation=extension_schedule.utilisation,
                bytes_moved=n_extension * per_tile_bytes,
            )
            engine_span.inc("extension_tiles", n_extension)
            engine_span.set(
                simulated_cycles=extension_schedule.makespan_cycles
                * ext_scale,
                simulated_seconds=extension_report.makespan_seconds,
                utilisation=extension_report.utilisation,
                bytes_moved=extension_report.bytes_moved,
            )

        report = SystemReport(
            filter=filter_report,
            extension=extension_report,
            sustained_bandwidth=platform.dram.sustained_bandwidth,
        )
        sim_span.set(
            simulated_seconds=report.runtime_seconds,
            dram_bound=report.dram_bound,
            bandwidth_fraction=report.bandwidth_fraction,
        )
        return report
