"""DRAM access-trace generation (Ramulator-lite).

The paper feeds an ASIC memory trace to Ramulator to size the memory
system (section V-D).  This module synthesises the equivalent trace from
a tile workload: each tile issues burst reads for its two sequences and
(for GACT-X) burst writes for the traceback pointers, interleaved across
arrays.  The trace summary gives sustained bandwidth and per-channel
pressure, which the provisioning check compares against the DRAM model's
sustainable bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence as TypingSequence, Tuple

from .memory import (
    DramSystem,
    STREAM_BITS_PER_BASE,
    TRACEBACK_BITS_PER_STEP,
)

#: DDR4 burst: 64 bytes per access.
BURST_BYTES = 64


@dataclass(frozen=True)
class TraceAccess:
    """One DRAM burst access."""

    cycle: int
    address: int
    is_write: bool


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of a generated trace."""

    reads: int
    writes: int
    span_cycles: int

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_total(self) -> int:
        return self.accesses * BURST_BYTES

    def bandwidth_bytes_per_sec(self, clock_hz: float) -> float:
        if self.span_cycles == 0:
            return 0.0
        return self.bytes_total * clock_hz / self.span_cycles


def _bursts(byte_count: int) -> int:
    return (byte_count + BURST_BYTES - 1) // BURST_BYTES


def tile_accesses(
    tile_size: int, with_traceback: bool
) -> Tuple[int, int]:
    """(read bursts, write bursts) for one tile's DRAM traffic."""
    sequence_bytes = 2 * tile_size * STREAM_BITS_PER_BASE // 8
    reads = _bursts(sequence_bytes)
    writes = 0
    if with_traceback:
        traceback_bytes = 2 * tile_size * TRACEBACK_BITS_PER_STEP // 8
        writes = _bursts(traceback_bytes)
    return reads, writes


def generate_trace(
    tile_starts: TypingSequence[int],
    tile_size: int,
    with_traceback: bool = False,
    base_address: int = 0,
) -> Iterator[TraceAccess]:
    """Yield burst accesses for a stream of tiles.

    ``tile_starts`` are the dispatch cycles of each tile (e.g. from
    :mod:`repro.hw.schedule`); accesses are spread uniformly over the
    tile's lead-in.
    """
    reads, writes = tile_accesses(tile_size, with_traceback)
    address = base_address
    for start in tile_starts:
        for i in range(reads):
            yield TraceAccess(
                cycle=start + i, address=address, is_write=False
            )
            address += BURST_BYTES
        for i in range(writes):
            yield TraceAccess(
                cycle=start + reads + i, address=address, is_write=True
            )
            address += BURST_BYTES


def summarise(accesses: Iterable[TraceAccess]) -> TraceSummary:
    """Reduce a trace to counts and span.

    Accepts any iterable — a list, a tuple, or the lazy generator from
    :func:`generate_trace`.  The input is consumed in a single pass: a
    generator passed in will be exhausted afterwards (re-generate or
    materialise it first if you need the accesses again).
    """
    reads = writes = 0
    first = None
    last = 0
    for access in accesses:
        if access.is_write:
            writes += 1
        else:
            reads += 1
        if first is None or access.cycle < first:
            first = access.cycle
        last = max(last, access.cycle)
    span = (last - (first or 0) + 1) if (reads + writes) else 0
    return TraceSummary(reads=reads, writes=writes, span_cycles=span)


def provisioning_check(
    summary: TraceSummary,
    dram: DramSystem,
    clock_hz: float,
) -> Tuple[float, bool]:
    """Demand vs sustainable bandwidth.

    Returns ``(demand_fraction, is_bandwidth_bound)`` — the paper
    provisions array counts so the demand fraction approaches 1 (DRAM is
    the bottleneck, section VI-A).
    """
    demand = summary.bandwidth_bytes_per_sec(clock_hz)
    sustainable = dram.sustained_bandwidth
    fraction = demand / sustainable if sustainable else float("inf")
    return fraction, fraction >= 1.0
