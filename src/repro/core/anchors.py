"""Anchor absorption: suppressing duplicate extensions (section III-D).

Darwin-WGA hashes the cells covered by each produced alignment; an anchor
that falls on a previously aligned cell would re-extend to (a piece of)
the same alignment, so it is absorbed — the same idea as LASTZ's anchor
absorption.  Coverage is tracked on a coarse grid: a cell ``(t, q)`` maps
to ``(t // g, q // g)``; walking an alignment path marks every grid cell
it touches, and anchor membership is one set lookup.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..align.alignment import Alignment, AnchorHit


class CoverageGrid:
    """Grid-hash of alignment-covered (target, query) cells per strand."""

    def __init__(self, granularity: int = 64) -> None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self._covered: Set[Tuple[int, int, int]] = set()

    def __len__(self) -> int:
        return len(self._covered)

    def _key(self, t: int, q: int, strand: int) -> Tuple[int, int, int]:
        g = self.granularity
        return (t // g, q // g, strand)

    def _mark(self, t: int, q: int, strand: int) -> None:
        # Mark the cell and its 8 neighbours: filter anchors (x_max of a
        # banded tile) can sit up to a band-width off the final extension
        # path, so coverage is dilated by one grid cell.
        tc, qc, s = self._key(t, q, strand)
        for dt in (-1, 0, 1):
            for dq in (-1, 0, 1):
                self._covered.add((tc + dt, qc + dq, s))

    def add_alignment(self, alignment: Alignment) -> None:
        """Mark every grid cell the alignment path passes through."""
        t = alignment.target_start
        q = alignment.query_start
        strand = alignment.strand
        step = max(1, self.granularity // 2)
        for op, length in alignment.cigar:
            dt = 1 if op in ("=", "X", "D") else 0
            dq = 1 if op in ("=", "X", "I") else 0
            consumed = 0
            while consumed < length:
                self._mark(t, q, strand)
                advance = min(step, length - consumed)
                t += dt * advance
                q += dq * advance
                consumed += advance
        self._mark(t, q, strand)

    def absorbs(self, anchor: AnchorHit) -> bool:
        """True when the anchor lies on an already aligned region."""
        return (
            self._key(anchor.target_pos, anchor.query_pos, anchor.strand)
            in self._covered
        )
