"""Deterministic parallel anchor extension.

The extension stage is *almost* embarrassingly parallel: each anchor's
GACT-X extension is independent, but the pipelines consult a
:class:`~repro.core.anchors.CoverageGrid` so anchors already covered by
an earlier (higher filter score) alignment are absorbed without being
extended.  That check is a serial dependency, so a naive fan-out would
change which anchors are extended.

:func:`extend_anchors` keeps the serial semantics exactly — byte for
byte, for any worker count — with **speculative dispatch and in-order
replay**:

* batches are formed in serial anchor order, pre-filtering anchors the
  grid *already* absorbs at formation time.  The grid only ever grows,
  so an anchor absorbed against today's partial grid would also be
  absorbed by the serial run's (larger) grid at its turn — the skip is
  always correct;
* up to ``workers + 1`` batches are in flight; the oldest batch is then
  *replayed* in submission order: each result re-checks ``absorbs``
  against the now-complete grid, and results whose anchors were
  absorbed in the meantime are dropped — together with their worker
  spans and counters, so workload accounting and the trace funnel both
  match the serial run exactly;
* the replayed commit path (dedup by span, ``grid.add_alignment``) is
  literally the serial loop body, so ordering-sensitive state evolves
  identically.

Speculation wastes only the extensions of anchors that a concurrent
batch absorbs — a small tax (absorbed anchors are the cheap, already
covered ones) for keeping the output bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, List, Optional

from ..align.alignment import Alignment
from ..obs.export import graft_span_dicts
from ..obs.tracer import NULL_TRACER
from .gact_x import gact_x_extend
from .worker import extend_batch_task

if TYPE_CHECKING:  # repro.parallel sits above core in the layer DAG
    from ..parallel.engine import ExecutionEngine

__all__ = ["extend_anchors"]


def extend_anchors(
    target,
    query,
    anchors,
    scoring,
    params,
    grid,
    workload,
    tracer=NULL_TRACER,
    engine: Optional[ExecutionEngine] = None,
    keep_tile_traces: bool = True,
    observer=None,
) -> List[Alignment]:
    """Extend ``anchors`` (already in serial priority order) with GACT-X.

    Mutates ``grid`` and ``workload`` exactly as the serial loop would
    and returns the alignments in serial order.  With an active
    ``engine`` the per-anchor extensions run in worker processes; the
    result is identical either way.  ``observer`` (a
    :class:`repro.obs.occupancy.StreamStats`) records the dispatch
    schedule so barrier runs report the same occupancy/idle-tail
    numbers the streamed dataflow does.
    """
    with tracer.span("extend") as extend_span:
        if engine is not None and engine.active and len(anchors) > 1:
            alignments = _extend_parallel(
                target,
                query,
                anchors,
                scoring,
                params,
                grid,
                workload,
                tracer,
                engine,
                keep_tile_traces,
                observer,
            )
        else:
            alignments = _extend_serial(
                target,
                query,
                anchors,
                scoring,
                params,
                grid,
                workload,
                tracer,
                keep_tile_traces,
            )
        extend_span.inc("extension_tiles", workload.extension_tiles)
        extend_span.inc("extension_cells", workload.extension_cells)
        extend_span.inc("absorbed_anchors", workload.absorbed_anchors)
        extend_span.inc("alignments", len(alignments))
        return alignments


def _commit(
    extension, grid, workload, alignments, seen_spans, keep_tile_traces
) -> None:
    """The serial loop body for one surviving extension result."""
    workload.extension_tiles += extension.tile_count
    workload.extension_cells += extension.cells
    if keep_tile_traces:
        workload.extension_tile_traces.extend(extension.tiles)
    alignment = extension.alignment
    if alignment is not None:
        span = (
            alignment.target_start,
            alignment.target_end,
            alignment.query_start,
            alignment.query_end,
        )
        grid.add_alignment(alignment)
        if span not in seen_spans:
            seen_spans.add(span)
            alignments.append(alignment)


def _extend_serial(
    target,
    query,
    anchors,
    scoring,
    params,
    grid,
    workload,
    tracer,
    keep_tile_traces,
) -> List[Alignment]:
    alignments: List[Alignment] = []
    seen_spans: set = set()
    for anchor in anchors:
        if grid.absorbs(anchor):
            workload.absorbed_anchors += 1
            continue
        extension = gact_x_extend(
            target, query, anchor, scoring, params, tracer=tracer
        )
        _commit(
            extension,
            grid,
            workload,
            alignments,
            seen_spans,
            keep_tile_traces,
        )
    return alignments


def _extend_parallel(
    target,
    query,
    anchors,
    scoring,
    params,
    grid,
    workload,
    tracer,
    engine: ExecutionEngine,
    keep_tile_traces,
    observer=None,
) -> List[Alignment]:
    traced = tracer.enabled
    telemetry = engine.telemetry
    registry = telemetry.registry if telemetry is not None else None
    bus = engine.bus
    progress = engine.progress
    target_handle = engine.share(target)
    query_handle = engine.share(query)
    batch_size = engine.batch_size_for(len(anchors))
    max_in_flight = engine.workers + 1

    alignments: List[Alignment] = []
    seen_spans: set = set()
    # Bounded by max_in_flight via the dispatch() guard below.
    in_flight: deque = deque()  # repro: allow[PAR003] capped at max_in_flight batches
    position = 0
    batch_number = 0

    def form_batch() -> tuple:
        """Next batch in serial order, skipping already-absorbed anchors."""
        nonlocal position
        batch = []
        while position < len(anchors) and len(batch) < batch_size:
            anchor = anchors[position]
            position += 1
            if grid.absorbs(anchor):
                workload.absorbed_anchors += 1
                continue
            batch.append(anchor)
        return tuple(batch)

    def dispatch() -> None:
        nonlocal batch_number
        while position < len(anchors) and len(in_flight) < max_in_flight:
            batch = form_batch()
            if not batch:
                continue
            base = tracer.now()
            ticket = engine.dispatch(
                extend_batch_task,
                target_handle,
                query_handle,
                batch,
                scoring,
                params,
                traced,
                key=f"extend:{batch_number}",
            )
            batch_number += 1
            in_flight.append((batch, ticket, base))
            if observer is not None:
                # Depth is counted in dispatch units (one batch = one
                # task occupying one worker slot), matching `slots`.
                observer.dispatched()
        progress.set_in_flight(len(in_flight))

    dispatch()
    while in_flight:
        batch, ticket, base = in_flight.popleft()
        results, span_dicts, ack = engine.result(ticket, tracer=tracer)
        if observer is not None:
            observer.collected()
        if registry is not None:
            registry.histogram("queue_depth").observe(len(in_flight))
            if ack is not None:
                latency = tracer.now() - base - ack.get("busy", 0.0)
                registry.histogram("dispatch_latency_seconds").observe(
                    max(0.0, latency)
                )
        if bus is not None and ack is not None:
            bus.record_ack(ack, done_at=tracer.now())
        committed_cells = 0
        for slot, (anchor, extension) in enumerate(zip(batch, results)):
            # Replay in submission order: a batch dispatched while this
            # one was running may have been formed before these results
            # landed in the grid, so the absorption check is repeated —
            # absorbed results are dropped, spans and counters included.
            if grid.absorbs(anchor):
                workload.absorbed_anchors += 1
                continue
            if traced and span_dicts is not None:
                graft_span_dicts(tracer, [span_dicts[slot]], base=base)
            committed_cells += extension.cells
            _commit(
                extension,
                grid,
                workload,
                alignments,
                seen_spans,
                keep_tile_traces,
            )
        progress.advance(cells=committed_cells)
        dispatch()
    return alignments
