"""Gapped filtering with banded Smith-Waterman tiles (paper section III-C).

Each D-SOFT candidate hit gets a ``T_f``-sized tile with the seed hit at
its centre; a banded Smith-Waterman pass (band ``B``) produces the tile
maximum ``V_max`` and its position ``x_max``.  Candidates with
``V_max >= H_f`` become extension anchors at ``x_max``.

Tiles have identical geometry, so they are processed in stacked batches —
the software mirror of the hardware's 50-64 parallel BSW arrays — with
genome edges padded by ``N`` (which scores like a transversion and thus
cannot create spurious anchors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..align.alignment import AnchorHit
from ..align.banded_sw import band_cells, bsw_batch
from ..align.scoring import ScoringScheme
from ..genome import alphabet
from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from .config import FilterParams


@dataclass(frozen=True)
class GappedFilterResult:
    """Anchors that passed the filter plus stage workload accounting."""

    anchors: List[AnchorHit]
    tiles: int
    cells: int

    @property
    def pass_rate(self) -> float:
        return len(self.anchors) / self.tiles if self.tiles else 0.0


def _gather_tiles(
    seq: Sequence, centers: np.ndarray, tile_size: int
) -> np.ndarray:
    """Stack tile windows centred on ``centers``, N-padded at the edges."""
    half = tile_size // 2
    offsets = np.arange(tile_size, dtype=np.int64) - half
    idx = centers[:, None] + offsets[None, :]
    valid = (idx >= 0) & (idx < len(seq))
    tiles = np.full(idx.shape, alphabet.N, dtype=np.uint8)
    tiles[valid] = seq.codes[idx[valid]]
    return tiles


def gapped_filter(
    target: Sequence,
    query: Sequence,
    target_positions: np.ndarray,
    query_positions: np.ndarray,
    scoring: ScoringScheme,
    params: FilterParams,
    strand: int = 1,
    batch_size: int = 2048,
    tracer=NULL_TRACER,
) -> GappedFilterResult:
    """Filter candidate seed hits with banded Smith-Waterman tiles.

    Args:
        target, query: full (strand-adjusted) genome sequences.
        target_positions, query_positions: parallel candidate arrays
            (tile centres — conventionally the seed-hit start).
        scoring: substitution matrix and affine gaps.
        params: tile size ``T_f``, band ``B``, threshold ``H_f``.
        strand: recorded on the emitted anchors.
        batch_size: tiles per vectorised batch (memory knob only).
        tracer: optional :class:`repro.obs.Tracer`; records one
            ``gapped_filter`` span with a ``bsw_batch`` child per batch.

    Returns:
        Qualifying anchors positioned at each tile's ``x_max`` plus the
        tile/cell workload (the paper's Table V "Filter tiles" column).
    """
    k = int(target_positions.size)
    with tracer.span(
        "gapped_filter",
        tile_size=params.tile_size,
        band=params.band,
        threshold=params.threshold,
    ) as span:
        if k == 0:
            return GappedFilterResult(anchors=[], tiles=0, cells=0)
        tile = params.tile_size
        half = tile // 2
        per_tile_cells = band_cells(tile, tile, params.band)

        anchors: List[AnchorHit] = []
        for start in range(0, k, batch_size):
            t_centers = target_positions[start : start + batch_size]
            q_centers = query_positions[start : start + batch_size]
            with tracer.span("bsw_batch") as batch_span:
                batch_span.inc("filter_tiles", int(t_centers.size))
                batch_span.inc(
                    "filter_cells", int(t_centers.size) * per_tile_cells
                )
                target_tiles = _gather_tiles(target, t_centers, tile)
                query_tiles = _gather_tiles(query, q_centers, tile)
                scores, max_i, max_j = bsw_batch(
                    target_tiles, query_tiles, scoring, params.band
                )
            passing = np.flatnonzero(scores >= params.threshold)
            for idx in passing:
                # x_max in genome coordinates: tile origin + offset.
                anchor_t = int(t_centers[idx]) - half + int(max_j[idx]) - 1
                anchor_q = int(q_centers[idx]) - half + int(max_i[idx]) - 1
                if 0 <= anchor_t < len(target) and 0 <= anchor_q < len(
                    query
                ):
                    anchors.append(
                        AnchorHit(
                            target_pos=anchor_t,
                            query_pos=anchor_q,
                            filter_score=int(scores[idx]),
                            strand=strand,
                        )
                    )
        span.inc("filter_tiles", k)
        span.inc("filter_cells", k * per_tile_cells)
        span.inc("anchors", len(anchors))
        return GappedFilterResult(
            anchors=anchors, tiles=k, cells=k * per_tile_cells
        )
