"""GACT: Darwin's tiled extension algorithm (the Figure 10 baseline).

GACT (Turakhia et al., ASPLOS 2018) aligns long sequences in overlapping
tiles like GACT-X, but with two differences the paper calls out:

* tiles use **Smith-Waterman (local) scoring**, so values clamp at zero —
  GACT-X switched to Needleman-Wunsch precisely to allow the negative
  dips that long evolutionary gaps produce (section III-D);
* the **full tile matrix** is computed, so for a fixed traceback memory
  budget the tile side is ``sqrt(2 * bytes)`` (4 bits per cell), smaller
  than GACT-X's pruned tiles, and every tile costs ``T^2`` cells.

When a tile's best local path does not connect back to the tile origin
(the score clamped to zero at an expensive gap), the stitched alignment
cannot continue — GACT terminates the extension there.  This is the
mechanism behind Figure 10: on cross-species alignments with long gaps
GACT stops early (fewer matched base pairs) while also computing more
cells per aligned base (lower throughput) than GACT-X.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..align.alignment import Alignment, AnchorHit
from ..align.cigar import Cigar
from ..align.scoring import ScoringScheme
from ..align.smith_waterman import align_local
from ..genome.sequence import Sequence
from .gact_x import TileTrace, score_cigar, truncate_cigar


@dataclass(frozen=True)
class GactParams:
    """GACT tiling parameters.

    ``tile_size`` is normally derived from the traceback memory budget
    via :func:`tile_size_for_memory`.
    """

    tile_size: int = 1448  # fits in 1 MB of 4-bit traceback pointers
    overlap: int = 128
    threshold: int = 4000

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if not 0 <= self.overlap < self.tile_size:
            raise ValueError("overlap must lie in [0, tile_size)")


def tile_size_for_memory(traceback_bytes: int) -> int:
    """Largest square tile whose 4-bit pointers fit in the given memory.

    ``T^2`` cells at 4 bits each occupy ``T^2 / 2`` bytes, so
    ``T = sqrt(2 * bytes)`` — 1024 for 512 KB, 2048 for 2 MB, matching
    the sweep in the paper's Figure 10.
    """
    if traceback_bytes <= 0:
        raise ValueError("traceback memory must be positive")
    return int(math.isqrt(2 * traceback_bytes))


@dataclass(frozen=True)
class GactExtensionResult:
    """A stitched GACT extension (same shape as the GACT-X result)."""

    alignment: Optional[Alignment] = None
    tiles: Tuple[TileTrace, ...] = ()

    @property
    def cells(self) -> int:
        return sum(tile.cells for tile in self.tiles)


def _extend_one_direction(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    params: GactParams,
) -> Tuple[Cigar, int, int, List[TileTrace]]:
    tile_size = params.tile_size
    boundary = tile_size - params.overlap
    cur_t = 0
    cur_q = 0
    pieces: List[Cigar] = []
    traces: List[TileTrace] = []

    while cur_t < len(target) and cur_q < len(query):
        t_tile = target.slice(cur_t, cur_t + tile_size)
        q_tile = query.slice(cur_q, cur_q + tile_size)
        cells = len(t_tile) * len(q_tile)
        traces.append(
            TileTrace(rows=len(q_tile), cells=cells, row_windows=())
        )
        local = align_local(t_tile, q_tile, scoring)
        if local is None or local.score <= 0:
            break
        if local.target_start != 0 or local.query_start != 0:
            # The best local path restarted after a score clamp — it does
            # not connect to the tile origin, so stitching must stop.
            break
        max_i = local.query_end
        max_j = local.target_end
        in_overlap = max_i > boundary or max_j > boundary
        target_exhausted = (
            cur_t + len(t_tile) >= len(target) and max_j >= len(t_tile)
        )
        query_exhausted = (
            cur_q + len(q_tile) >= len(query) and max_i >= len(q_tile)
        )
        at_edge = target_exhausted or query_exhausted
        if in_overlap and not at_edge:
            piece, di, dj = truncate_cigar(local.cigar, boundary)
            if di == 0 and dj == 0:
                pieces.append(local.cigar)
                cur_t += max_j
                cur_q += max_i
                break
        else:
            piece, di, dj = local.cigar, max_i, max_j
        pieces.append(piece)
        cur_t += dj
        cur_q += di
        if not in_overlap or at_edge:
            break

    merged = Cigar(())
    for piece in pieces:
        merged = merged + piece
    return merged, cur_t, cur_q, traces


def gact_extend(
    target: Sequence,
    query: Sequence,
    anchor: AnchorHit,
    scoring: ScoringScheme,
    params: GactParams,
) -> GactExtensionResult:
    """Extend an anchor in both directions with GACT."""
    right_cigar, right_t, right_q, right_tiles = _extend_one_direction(
        target.slice(anchor.target_pos, len(target)),
        query.slice(anchor.query_pos, len(query)),
        scoring,
        params,
    )
    left_cigar, left_t, left_q, left_tiles = _extend_one_direction(
        Sequence(target.codes[: anchor.target_pos][::-1], target.name),
        Sequence(query.codes[: anchor.query_pos][::-1], query.name),
        scoring,
        params,
    )
    cigar = left_cigar.reversed() + right_cigar
    tiles = tuple(left_tiles) + tuple(right_tiles)
    if len(cigar) == 0:
        return GactExtensionResult(alignment=None, tiles=tiles)
    target_start = anchor.target_pos - left_t
    query_start = anchor.query_pos - left_q
    score = score_cigar(
        cigar, target, query, target_start, query_start, scoring
    )
    if score < params.threshold:
        return GactExtensionResult(alignment=None, tiles=tiles)
    alignment = Alignment(
        target_name=target.name,
        query_name=query.name,
        target_start=target_start,
        target_end=anchor.target_pos + right_t,
        query_start=query_start,
        query_end=anchor.query_pos + right_q,
        score=score,
        cigar=cigar,
        strand=anchor.strand,
    )
    return GactExtensionResult(alignment=alignment, tiles=tiles)
