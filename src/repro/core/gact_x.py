"""GACT-X: tiled, X-dropped extension of anchors (paper section III-D).

GACT-X aligns arbitrarily long regions with constant traceback memory by
processing overlapping tiles of size ``T_e``.  Within a tile the X-drop
kernel (:mod:`repro.align.xdrop`) computes a Needleman-Wunsch-scored
extension from the tile origin; the alignment path is stitched across
tiles with these rules:

* traceback pointers within the trailing *overlap region* (the last ``O``
  rows/columns) are ignored — the next tile recomputes that region;
* if ``x_max`` falls before the overlap region the extension has
  naturally slowed and the next tile starts exactly at ``x_max``;
* extension in a direction terminates when a tile's ``V_max`` is zero or
  negative, or when the tile makes no forward progress.

Left extension reuses the same loop on reversed sequences.  An anchor is
extended both ways and the merged path is rescored from its CIGAR, so gap
runs that straddle the anchor or a tile boundary are charged correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..align.alignment import Alignment, AnchorHit
from ..align.cigar import Cigar
from ..align.scoring import ScoringScheme
from ..align.xdrop import xdrop_extend
from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from .config import ExtensionParams


@dataclass(frozen=True)
class TileTrace:
    """Workload record of one extension tile (feeds the hardware model)."""

    rows: int
    cells: int
    row_windows: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class ExtensionResult:
    """A stitched two-sided extension of one anchor."""

    alignment: Optional[Alignment]
    tiles: Tuple[TileTrace, ...]

    @property
    def tile_count(self) -> int:
        return len(self.tiles)

    @property
    def cells(self) -> int:
        return sum(tile.cells for tile in self.tiles)


def truncate_cigar(cigar: Cigar, boundary: int) -> Tuple[Cigar, int, int]:
    """Cut a tile path at the overlap boundary.

    Walks the CIGAR from the tile origin and stops before either the row
    or the column index would exceed ``boundary``.  Returns the truncated
    prefix and the (row, column) cell it ends on.
    """
    runs = []
    i = j = 0
    for op, length in cigar:
        di = 1 if op in ("=", "X", "I") else 0
        dj = 1 if op in ("=", "X", "D") else 0
        take = length
        if di:
            take = min(take, boundary - i)
        if dj:
            take = min(take, boundary - j)
        if take < length:
            if take > 0:
                runs.append((op, take))
                i += di * take
                j += dj * take
            break
        runs.append((op, length))
        i += di * length
        j += dj * length
    return Cigar.from_runs(runs), i, j


def score_cigar(
    cigar: Cigar,
    target: Sequence,
    query: Sequence,
    target_start: int,
    query_start: int,
    scoring: ScoringScheme,
) -> int:
    """Score an alignment path against the actual sequences."""
    matrix = scoring.matrix64
    ti, qi = target_start, query_start
    total = 0
    for op, length in cigar:
        if op in ("=", "X"):
            total += int(
                matrix[
                    target.codes[ti : ti + length],
                    query.codes[qi : qi + length],
                ].sum()
            )
            ti += length
            qi += length
        else:
            total -= scoring.gap_cost(length)
            if op == "D":
                ti += length
            else:
                qi += length
    return total


def _extend_one_direction(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    params: ExtensionParams,
    tracer=NULL_TRACER,
    direction: str = "right",
) -> Tuple[Cigar, int, int, List[TileTrace]]:
    """Tiled extension over ``target``/``query`` starting at position 0.

    Returns ``(cigar, target_span, query_span, tile_traces)``.
    """
    with tracer.span("extend_direction", direction=direction) as span:
        return _extend_loop(target, query, scoring, params, span)


def _extend_loop(
    target: Sequence,
    query: Sequence,
    scoring: ScoringScheme,
    params: ExtensionParams,
    span,
) -> Tuple[Cigar, int, int, List[TileTrace]]:
    tile_size = params.tile_size
    boundary = tile_size - params.overlap
    cur_t = 0
    cur_q = 0
    pieces: List[Cigar] = []
    traces: List[TileTrace] = []

    while cur_t < len(target) and cur_q < len(query):
        t_tile = target.slice(cur_t, cur_t + tile_size)
        q_tile = query.slice(cur_q, cur_q + tile_size)
        extension = xdrop_extend(t_tile, q_tile, scoring, params.ydrop)
        traces.append(
            TileTrace(
                rows=extension.rows_computed,
                cells=extension.cells,
                row_windows=extension.row_windows,
            )
        )
        if extension.score <= 0 or extension.max_i == 0:
            break
        in_overlap = (
            extension.max_i > boundary or extension.max_j > boundary
        )
        # A path is at the sequence edge only when its tile is truncated
        # by the sequence end and the maximum reached that end — a
        # full-size tile boundary is handled by the overlap logic instead.
        target_exhausted = (
            cur_t + len(t_tile) >= len(target)
            and extension.max_j >= len(t_tile)
        )
        query_exhausted = (
            cur_q + len(q_tile) >= len(query)
            and extension.max_i >= len(q_tile)
        )
        at_edge = target_exhausted or query_exhausted
        if in_overlap and not at_edge:
            piece, di, dj = truncate_cigar(extension.cigar, boundary)
            if di == 0 and dj == 0:
                # The whole path lives in the overlap region; keep it and
                # stop rather than loop without progress.
                pieces.append(extension.cigar)
                cur_t += extension.max_j
                cur_q += extension.max_i
                break
        else:
            piece, di, dj = (
                extension.cigar,
                extension.max_i,
                extension.max_j,
            )
        pieces.append(piece)
        cur_t += dj
        cur_q += di
        if not in_overlap or at_edge:
            # x_max before the overlap region means X-drop ended the
            # alignment inside the tile; at a sequence edge there is
            # nothing left to extend into.
            break

    merged = Cigar(())
    for piece in pieces:
        merged = merged + piece
    span.inc("extension_tiles", len(traces))
    span.inc("extension_cells", sum(t.cells for t in traces))
    return merged, cur_t, cur_q, traces


def _reversed_sequence(seq: Sequence) -> Sequence:
    return Sequence(seq.codes[::-1], name=seq.name)


def gact_x_extend(
    target: Sequence,
    query: Sequence,
    anchor: AnchorHit,
    scoring: ScoringScheme,
    params: ExtensionParams,
    tracer=NULL_TRACER,
) -> ExtensionResult:
    """Extend an anchor in both directions with GACT-X.

    The right extension includes the anchor base pair; the left extension
    runs on the reversed prefixes.  The merged alignment is rescored from
    its CIGAR and reported only when it reaches ``params.threshold``
    (``H_e``).  When a tracer is supplied, one ``extend_anchor`` span is
    recorded per call with left/right direction children.
    """
    with tracer.span(
        "extend_anchor",
        target_pos=anchor.target_pos,
        query_pos=anchor.query_pos,
    ) as span:
        right_cigar, right_t, right_q, right_tiles = (
            _extend_one_direction(
                target.slice(anchor.target_pos, len(target)),
                query.slice(anchor.query_pos, len(query)),
                scoring,
                params,
                tracer=tracer,
                direction="right",
            )
        )
        left_cigar, left_t, left_q, left_tiles = _extend_one_direction(
            _reversed_sequence(target.slice(0, anchor.target_pos)),
            _reversed_sequence(query.slice(0, anchor.query_pos)),
            scoring,
            params,
            tracer=tracer,
            direction="left",
        )

        cigar = left_cigar.reversed() + right_cigar
        tiles = tuple(left_tiles) + tuple(right_tiles)
        span.inc("extension_tiles", len(tiles))
        span.inc("extension_cells", sum(t.cells for t in tiles))
        if len(cigar) == 0:
            return ExtensionResult(alignment=None, tiles=tiles)

        target_start = anchor.target_pos - left_t
        query_start = anchor.query_pos - left_q
        score = score_cigar(
            cigar, target, query, target_start, query_start, scoring
        )
        span.set(score=score)
        if score < params.threshold:
            return ExtensionResult(alignment=None, tiles=tiles)
        alignment = Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=target_start,
            target_end=anchor.target_pos + right_t,
            query_start=query_start,
            query_end=anchor.query_pos + right_q,
            score=score,
            cigar=cigar,
            strand=anchor.strand,
        )
        return ExtensionResult(alignment=alignment, tiles=tiles)
