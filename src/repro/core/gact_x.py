"""GACT-X: tiled, X-dropped extension of anchors (paper section III-D).

GACT-X aligns arbitrarily long regions with constant traceback memory by
processing overlapping tiles of size ``T_e``.  Within a tile the X-drop
kernel (:mod:`repro.align.xdrop`) computes a Needleman-Wunsch-scored
extension from the tile origin; the alignment path is stitched across
tiles with these rules:

* traceback pointers within the trailing *overlap region* (the last ``O``
  rows/columns) are ignored — the next tile recomputes that region;
* if ``x_max`` falls before the overlap region the extension has
  naturally slowed and the next tile starts exactly at ``x_max``;
* extension in a direction terminates when a tile's ``V_max`` is zero or
  negative, or when the tile makes no forward progress.

Left extension reuses the same rules on reversed sequences.  An anchor is
extended both ways and the merged path is rescored from its CIGAR, so gap
runs that straddle the anchor or a tile boundary are charged correctly.

The two directions run *in lockstep*: each is a :class:`_DirectionStream`
that feeds tiles to — and receives extensions back from — the shared
lane engine in :func:`repro.align.xdrop.run_tile_streams`, which batches
one DP row of both directions' current tiles into a single set of vector
ops.  Tile chaining is unaffected (a stream is asked for its next tile
only after consuming the previous tile's result), so the stitched output
is identical to running the directions one after the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..align.alignment import Alignment, AnchorHit
from ..align.cigar import Cigar
from ..align.scoring import ScoringScheme
from ..align.xdrop import XDropExtension, run_tile_streams
from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from .config import ExtensionParams


@dataclass(frozen=True)
class TileTrace:
    """Workload record of one extension tile (feeds the hardware model)."""

    rows: int
    cells: int
    row_windows: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class ExtensionResult:
    """A stitched two-sided extension of one anchor."""

    alignment: Optional[Alignment]
    tiles: Tuple[TileTrace, ...]

    @property
    def tile_count(self) -> int:
        return len(self.tiles)

    @property
    def cells(self) -> int:
        return sum(tile.cells for tile in self.tiles)


def truncate_cigar(cigar: Cigar, boundary: int) -> Tuple[Cigar, int, int]:
    """Cut a tile path at the overlap boundary.

    Walks the CIGAR from the tile origin and stops before either the row
    or the column index would exceed ``boundary``.  Returns the truncated
    prefix and the (row, column) cell it ends on.
    """
    runs = []
    i = j = 0
    for op, length in cigar:
        di = 1 if op in ("=", "X", "I") else 0
        dj = 1 if op in ("=", "X", "D") else 0
        take = length
        if di:
            take = min(take, boundary - i)
        if dj:
            take = min(take, boundary - j)
        if take < length:
            if take > 0:
                runs.append((op, take))
                i += di * take
                j += dj * take
            break
        runs.append((op, length))
        i += di * length
        j += dj * length
    return Cigar.from_runs(runs), i, j


def score_cigar(
    cigar: Cigar,
    target: Sequence,
    query: Sequence,
    target_start: int,
    query_start: int,
    scoring: ScoringScheme,
) -> int:
    """Score an alignment path against the actual sequences."""
    matrix = scoring.matrix64
    ti, qi = target_start, query_start
    total = 0
    for op, length in cigar:
        if op in ("=", "X"):
            total += int(
                matrix[
                    target.codes[ti : ti + length],
                    query.codes[qi : qi + length],
                ].sum()
            )
            ti += length
            qi += length
        else:
            total -= scoring.gap_cost(length)
            if op == "D":
                ti += length
            else:
                qi += length
    return total


class _DirectionStream:
    """One direction's tile chain, expressed as a stream for the engine.

    ``next_tile``/``consume`` carry the stitched state machine of the
    original per-direction loop: the engine asks for the next tile only
    after the previous tile's extension has been consumed, so the chain
    still decides each tile origin from the previous tile's maximum.
    """

    def __init__(
        self,
        target: Sequence,
        query: Sequence,
        params: ExtensionParams,
    ) -> None:
        self._target = target
        self._query = query
        self._tile_size = params.tile_size
        self._boundary = params.tile_size - params.overlap
        self.cur_t = 0
        self.cur_q = 0
        self.pieces: List[Cigar] = []
        self.traces: List[TileTrace] = []
        self._done = False
        self._t_tile: Optional[Sequence] = None
        self._q_tile: Optional[Sequence] = None

    def next_tile(self) -> Optional[Tuple[Sequence, Sequence]]:
        if self._done or not (
            self.cur_t < len(self._target)
            and self.cur_q < len(self._query)
        ):
            self._done = True
            return None
        self._t_tile = self._target.slice(
            self.cur_t, self.cur_t + self._tile_size
        )
        self._q_tile = self._query.slice(
            self.cur_q, self.cur_q + self._tile_size
        )
        return self._t_tile, self._q_tile

    def consume(self, extension: XDropExtension) -> None:
        t_tile = self._t_tile
        q_tile = self._q_tile
        self.traces.append(
            TileTrace(
                rows=extension.rows_computed,
                cells=extension.cells,
                row_windows=extension.row_windows,
            )
        )
        if extension.score <= 0 or extension.max_i == 0:
            self._done = True
            return
        boundary = self._boundary
        in_overlap = (
            extension.max_i > boundary or extension.max_j > boundary
        )
        # A path is at the sequence edge only when its tile is truncated
        # by the sequence end and the maximum reached that end — a
        # full-size tile boundary is handled by the overlap logic instead.
        target_exhausted = (
            self.cur_t + len(t_tile) >= len(self._target)
            and extension.max_j >= len(t_tile)
        )
        query_exhausted = (
            self.cur_q + len(q_tile) >= len(self._query)
            and extension.max_i >= len(q_tile)
        )
        at_edge = target_exhausted or query_exhausted
        if in_overlap and not at_edge:
            piece, di, dj = truncate_cigar(extension.cigar, boundary)
            if di == 0 and dj == 0:
                # The whole path lives in the overlap region; keep it and
                # stop rather than loop without progress.
                self.pieces.append(extension.cigar)
                self.cur_t += extension.max_j
                self.cur_q += extension.max_i
                self._done = True
                return
        else:
            piece, di, dj = (
                extension.cigar,
                extension.max_i,
                extension.max_j,
            )
        self.pieces.append(piece)
        self.cur_t += dj
        self.cur_q += di
        if not in_overlap or at_edge:
            # x_max before the overlap region means X-drop ended the
            # alignment inside the tile; at a sequence edge there is
            # nothing left to extend into.
            self._done = True

    def merged_cigar(self) -> Cigar:
        merged = Cigar(())
        for piece in self.pieces:
            merged = merged + piece
        return merged


def _reversed_sequence(seq: Sequence) -> Sequence:
    return Sequence(seq.codes[::-1], name=seq.name)


def gact_x_extend(
    target: Sequence,
    query: Sequence,
    anchor: AnchorHit,
    scoring: ScoringScheme,
    params: ExtensionParams,
    tracer=NULL_TRACER,
) -> ExtensionResult:
    """Extend an anchor in both directions with GACT-X.

    The right extension includes the anchor base pair; the left extension
    runs on the reversed prefixes.  Both directions advance through one
    lockstep lane engine (see the module docstring).  The merged
    alignment is rescored from its CIGAR and reported only when it
    reaches ``params.threshold`` (``H_e``).  When a tracer is supplied,
    one ``extend_anchor`` span is recorded per call with a single paired
    ``extend_direction`` child covering the lockstep run.
    """
    with tracer.span(
        "extend_anchor",
        target_pos=anchor.target_pos,
        query_pos=anchor.query_pos,
    ) as span:
        right = _DirectionStream(
            target.slice(anchor.target_pos, len(target)),
            query.slice(anchor.query_pos, len(query)),
            params,
        )
        left = _DirectionStream(
            _reversed_sequence(target.slice(0, anchor.target_pos)),
            _reversed_sequence(query.slice(0, anchor.query_pos)),
            params,
        )
        with tracer.span(
            "extend_direction", direction="paired"
        ) as dspan:
            run_tile_streams(
                (right, left), scoring, params.ydrop, params.tile_size
            )
            dspan.inc(
                "extension_tiles", len(right.traces) + len(left.traces)
            )
            dspan.inc(
                "extension_cells",
                sum(t.cells for t in right.traces)
                + sum(t.cells for t in left.traces),
            )

        right_cigar, right_t, right_q = (
            right.merged_cigar(),
            right.cur_t,
            right.cur_q,
        )
        left_cigar, left_t, left_q = (
            left.merged_cigar(),
            left.cur_t,
            left.cur_q,
        )
        cigar = left_cigar.reversed() + right_cigar
        tiles = tuple(left.traces) + tuple(right.traces)
        span.inc("extension_tiles", len(tiles))
        span.inc("extension_cells", sum(t.cells for t in tiles))
        if len(cigar) == 0:
            return ExtensionResult(alignment=None, tiles=tiles)

        target_start = anchor.target_pos - left_t
        query_start = anchor.query_pos - left_q
        score = score_cigar(
            cigar, target, query, target_start, query_start, scoring
        )
        span.set(score=score)
        if score < params.threshold:
            return ExtensionResult(alignment=None, tiles=tiles)
        alignment = Alignment(
            target_name=target.name,
            query_name=query.name,
            target_start=target_start,
            target_end=anchor.target_pos + right_t,
            query_start=query_start,
            query_end=anchor.query_pos + right_q,
            score=score,
            cigar=cigar,
            strand=anchor.strand,
        )
        return ExtensionResult(alignment=alignment, tiles=tiles)
