"""Human-readable reports of WGA results.

Summaries, per-chain tables and text dotplots for interactive inspection
— the library's stand-in for loading chains into the UCSC browser
(paper Figures 3 and 9).
"""

from __future__ import annotations

from typing import List, Sequence as TypingSequence

import numpy as np

from ..align.alignment import Alignment
from ..chain.chainer import Chain
from ..genome.sequence import Sequence
from .pipeline import WGAResult


def workload_summary(result: WGAResult) -> str:
    """One-paragraph workload report (the Table V columns for one run)."""
    w = result.workload
    lines = [
        f"seed hits          : {w.seed_hits:>12,}",
        f"filter tiles (BSW) : {w.filter_tiles:>12,}",
        f"filter cells       : {w.filter_cells:>12,}",
        f"anchors            : {w.anchors:>12,} "
        f"({w.absorbed_anchors:,} absorbed)",
        f"extension tiles    : {w.extension_tiles:>12,}",
        f"extension cells    : {w.extension_cells:>12,}",
        f"alignments         : {len(result.alignments):>12,}",
        f"matched base pairs : {result.total_matches:>12,}",
    ]
    return "\n".join(lines)


def chain_table(chains: TypingSequence[Chain], limit: int = 20) -> str:
    """A per-chain summary table sorted by score."""
    header = (
        f"{'#':>3} {'score':>12} {'blocks':>6} {'matches':>9} "
        f"{'identity':>8} {'target span':>22} {'strand':>6}"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(chains, key=lambda c: -c.score)[:limit]
    for i, chain in enumerate(ordered, 1):
        identity = (
            chain.matches / chain.aligned_pairs
            if chain.aligned_pairs
            else 0.0
        )
        span = f"[{chain.target_start:,}, {chain.target_end:,})"
        strand = "+" if chain.strand == 1 else "-"
        lines.append(
            f"{i:>3} {chain.score:>12,.0f} {len(chain):>6} "
            f"{chain.matches:>9,} {identity:>8.1%} {span:>22} {strand:>6}"
        )
    return "\n".join(lines)


def alignment_detail(
    alignment: Alignment,
    target: Sequence,
    query: Sequence,
    width: int = 60,
    max_rows: int = 10,
) -> str:
    """BLAST-style pairwise text rendering of one alignment."""
    q_seq = (
        query.reverse_complement() if alignment.strand == -1 else query
    )
    t_line: List[str] = []
    m_line: List[str] = []
    q_line: List[str] = []
    ti, qi = alignment.target_start, alignment.query_start
    for op, length in alignment.cigar:
        for _ in range(length):
            if op in ("=", "X"):
                t_char = str(target[ti : ti + 1])
                q_char = str(q_seq[qi : qi + 1])
                t_line.append(t_char)
                q_line.append(q_char)
                m_line.append("|" if op == "=" else " ")
                ti += 1
                qi += 1
            elif op == "D":
                t_line.append(str(target[ti : ti + 1]))
                q_line.append("-")
                m_line.append(" ")
                ti += 1
            else:
                t_line.append("-")
                q_line.append(str(q_seq[qi : qi + 1]))
                m_line.append(" ")
                qi += 1
    rows = []
    for start in range(0, len(t_line), width):
        if len(rows) // 4 >= max_rows:
            rows.append(f"... ({len(t_line) - start} more columns)")
            break
        rows.append("T " + "".join(t_line[start : start + width]))
        rows.append("  " + "".join(m_line[start : start + width]))
        rows.append("Q " + "".join(q_line[start : start + width]))
        rows.append("")
    header = (
        f"score={alignment.score:,} identity={alignment.identity():.1%} "
        f"target=[{alignment.target_start:,}, {alignment.target_end:,}) "
        f"query=[{alignment.query_start:,}, {alignment.query_end:,}) "
        f"strand={'+' if alignment.strand == 1 else '-'}"
    )
    return "\n".join([header, ""] + rows)


def dotplot(
    alignments: TypingSequence[Alignment],
    target_length: int,
    query_length: int,
    size: int = 40,
) -> str:
    """ASCII dotplot of alignment positions (``+`` forward, ``-``
    reverse strand)."""
    if size < 2:
        raise ValueError("size must be at least 2")
    grid = np.full((size, size), ".", dtype="<U1")
    for alignment in alignments:
        steps = max(
            2, (alignment.target_end - alignment.target_start) * size
            // max(1, target_length),
        )
        for step in range(steps + 1):
            frac = step / steps
            t = alignment.target_start + frac * (
                alignment.target_end - alignment.target_start
            )
            q = alignment.query_start + frac * (
                alignment.query_end - alignment.query_start
            )
            row = min(size - 1, int(q * size / max(1, query_length)))
            col = min(size - 1, int(t * size / max(1, target_length)))
            grid[row, col] = "+" if alignment.strand == 1 else "-"
    lines = ["".join(row) for row in grid]
    return "\n".join(lines)
