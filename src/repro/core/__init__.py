"""Darwin-WGA core: configuration, gapped filter, GACT/GACT-X, pipeline."""

from .anchors import CoverageGrid
from .config import DarwinWGAConfig, ExtensionParams, FilterParams
from .gact import (
    GactExtensionResult,
    GactParams,
    gact_extend,
    tile_size_for_memory,
)
from .gact_x import (
    ExtensionResult,
    TileTrace,
    gact_x_extend,
    score_cigar,
    truncate_cigar,
)
from .gapped_filter import GappedFilterResult, gapped_filter
from .report import (
    alignment_detail,
    chain_table,
    dotplot,
    workload_summary,
)
from .pipeline import (
    DarwinWGA,
    WGAResult,
    Workload,
    align_assemblies,
    align_pair,
)
from .stream import BoundedQueue, StrandStream, StreamParams

__all__ = [
    "CoverageGrid",
    "DarwinWGAConfig",
    "ExtensionParams",
    "FilterParams",
    "GactExtensionResult",
    "GactParams",
    "gact_extend",
    "tile_size_for_memory",
    "ExtensionResult",
    "TileTrace",
    "gact_x_extend",
    "score_cigar",
    "truncate_cigar",
    "GappedFilterResult",
    "gapped_filter",
    "DarwinWGA",
    "WGAResult",
    "Workload",
    "align_pair",
    "align_assemblies",
    "BoundedQueue",
    "StrandStream",
    "StreamParams",
    "alignment_detail",
    "chain_table",
    "dotplot",
    "workload_summary",
]
