"""Streaming seed->filter->extend dataflow with bounded queues.

The pipelines historically ran as barrier phases: all seeding, then all
filtering, then all extension — per strand, with a full worker drain
between phases.  This module restructures that into a cooperative
single-threaded stage graph:

* the **producer** stage runs one strand's seeding + gapped filtering
  and emits its priority-ordered anchors into a bounded strand queue
  (:class:`BoundedQueue`) — at most ``strand_queue_capacity`` strands'
  anchors are ever materialized, so memory stays flat;
* the **extension frontier** forms small anchor batches in strict
  serial order and dispatches them to the
  :class:`~repro.parallel.engine.ExecutionEngine` as soon as the
  in-flight watermark (``max_in_flight_anchors``) has room — no
  end-of-strand barrier: the next strand's producer step runs while the
  previous strand's last batches are still in flight, which is exactly
  the idle tail the barrier schedule paid;
* the **sink** collects results strictly in dispatch order and replays
  the serial commit loop (`grid.absorbs` re-check, dedup, coverage
  update), so the output is byte-identical to serial at any worker
  count — the same speculative-dispatch/in-order-replay argument as
  :mod:`repro.core.extension`, with the speculation window now bounded
  by the watermark instead of ``batches x batch_size`` anchors.

Backpressure is explicit and observable: the producer only runs when
the frontier is starved and the strand queue has room; every refusal is
counted (``backpressure_stalls``) and the whole schedule is integrated
by :class:`repro.obs.occupancy.StreamStats` into per-stage occupancy
and ``idle_tail_seconds``.

Fault injection understands streams: a ``stall`` fault
(:data:`repro.resilience.faults.FAULT_KINDS`) sleeps before a
collection, modelling a slow consumer; crashes/timeouts ride the
normal :class:`~repro.parallel.supervise.ResilientDispatcher` ladder,
and checkpoint/resume journals whole units exactly as before.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..align.alignment import Alignment
from ..obs.export import graft_span_dicts
from ..obs.occupancy import StreamStats
from ..obs.tracer import NULL_TRACER
from .extension import _commit
from .worker import extend_batch_task

if TYPE_CHECKING:  # repro.parallel sits above core in the layer DAG
    from ..parallel.engine import ExecutionEngine

__all__ = [
    "BoundedQueue",
    "StrandStream",
    "StreamParams",
    "stream_extension",
    "streamed_strand_align",
]

#: Injectable sleep used by the ``stall`` fault kind (tests patch it).
_sleep = time.sleep


class BoundedQueue:
    """A bounded FIFO stage queue with cooperative backpressure.

    Single-threaded by design: stages run interleaved in one
    coordinator loop, so "blocking" is cooperative — :meth:`offer`
    returns ``False`` (and counts a stall) when the queue is full, and
    the caller yields to the consumer instead of growing the buffer.
    Every queue therefore has a hard capacity; an unbounded stage
    buffer is a lint error (PAR003).
    """

    __slots__ = ("name", "capacity", "stalls", "peak", "_items")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self.stalls = 0
        self.peak = 0
        # Bounded by `capacity` via the offer() guard below.
        self._items: deque = deque()  # repro: allow[PAR003] offer() enforces capacity

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, item) -> bool:
        """Enqueue ``item`` unless full; a refusal counts as a stall."""
        if self.full:
            self.stalls += 1
            return False
        self._items.append(item)
        if len(self._items) > self.peak:
            self.peak = len(self._items)
        return True

    def take(self):
        """Dequeue the oldest item (raises IndexError when empty)."""
        return self._items.popleft()

    def head(self):
        """The oldest item without dequeuing it, or None when empty."""
        return self._items[0] if self._items else None


@dataclass(frozen=True)
class StreamParams:
    """Tuning knobs for the streaming dataflow (zero means "derive").

    ``max_in_flight_anchors`` is the speculation watermark: how many
    anchors may be dispatched ahead of the committed coverage grid.
    Smaller windows waste fewer speculative extensions (an anchor
    dispatched against a stale grid may be absorbed at replay and its
    work discarded); larger windows keep more workers fed.  The default
    is one anchor per worker: eager replay refills a freed slot as soon
    as its result settles, so extra slack mostly buys wasted
    speculation — far tighter than the barrier path's
    ``(workers + 1) x batch_size`` anchors.

    ``defer_diagonal_bp`` is a dependence heuristic, not a correctness
    knob: an in-flight anchor's alignment runs along its diagonal
    ``target_pos - query_pos``, so a later anchor within that band is
    the one most likely to be absorbed once the in-flight result
    commits.  Deferring its dispatch until then (never reordering —
    the frontier simply pauses) converts near-certain wasted
    speculation into a short wait; anchors on distant diagonals still
    dispatch freely.  Zero disables deferral.
    """

    max_in_flight_anchors: int = 0  # 0 -> one per worker
    anchor_batch: int = 0  # 0 -> 1 anchor per dispatch
    strand_queue_capacity: int = 2
    unit_window: int = 0  # 0 -> max(2 * workers, workers + 2)
    stall_seconds: float = 0.02
    defer_diagonal_bp: int = 256

    def in_flight_limit(self, workers: int) -> int:
        if self.max_in_flight_anchors > 0:
            return self.max_in_flight_anchors
        return max(1, workers)

    def batch_limit(self) -> int:
        return self.anchor_batch if self.anchor_batch > 0 else 1

    def unit_window_for(self, workers: int) -> int:
        if self.unit_window > 0:
            return self.unit_window
        return max(2 * workers, workers + 2)


DEFAULT_STREAM = StreamParams()


class StrandStream:
    """One strand's anchors flowing through the extension frontier.

    Produced whole by the seed+filter stage (the per-strand sort by
    filter score is a deliberate ordering barrier — extension priority
    is a determinism invariant), then drained anchor by anchor with
    per-strand replay state so commits evolve exactly as the serial
    per-strand loop.
    """

    __slots__ = (
        "query",
        "anchors",
        "grid",
        "workload",
        "position",
        "alignments",
        "seen_spans",
    )

    def __init__(self, query, anchors, grid, workload) -> None:
        self.query = query
        self.anchors = anchors
        self.grid = grid
        self.workload = workload
        self.position = 0
        self.alignments: List[Alignment] = []
        self.seen_spans: set = set()

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.anchors)


def _stall_if_planned(resilience, key: str) -> None:
    """Sleep before a collection when the fault plan schedules a stall."""
    if resilience is None or resilience.fault_plan is None:
        return
    plan = resilience.fault_plan
    if plan.decide("stall", key):
        resilience.stats.inject("stall")
        _sleep(DEFAULT_STREAM.stall_seconds)


def stream_extension(
    target,
    strand_count: int,
    produce: Callable[[int], StrandStream],
    scoring,
    params,
    engine: "ExecutionEngine",
    tracer=NULL_TRACER,
    stream: Optional[StreamParams] = None,
    keep_tile_traces: bool = True,
    resilience=None,
) -> Tuple[List[StrandStream], StreamStats]:
    """Drive ``strand_count`` strands through the streamed frontier.

    ``produce(i)`` runs strand ``i``'s seed+filter stage and returns a
    :class:`StrandStream`; it is called lazily, under backpressure —
    only when the extension frontier is starved and the bounded strand
    queue has room — so later strands' seeding overlaps earlier
    strands' in-flight extensions instead of waiting for a drain.

    Returns the per-strand streams (in serial strand order, each with
    its committed alignments and workload) plus the schedule's
    :class:`StreamStats`.  Byte-identical to running
    :func:`repro.core.extension.extend_anchors` per strand serially.
    """
    stream = stream or DEFAULT_STREAM
    limit = stream.in_flight_limit(engine.workers)
    batch_cap = stream.batch_limit()
    traced = tracer.enabled
    telemetry = engine.telemetry
    registry = telemetry.registry if telemetry is not None else None
    bus = engine.bus
    progress = engine.progress
    stats = StreamStats(slots=engine.workers)

    target_handle = engine.share(target)
    strand_queue = BoundedQueue(
        "strand_anchors", stream.strand_queue_capacity
    )
    states: List[StrandStream] = []
    # Oldest-first dispatch ledger; bounded by `limit` anchors via the
    # watermark checks in _try_dispatch.
    in_flight: deque = deque()  # repro: allow[PAR003] bounded by the in-flight anchor watermark
    in_flight_anchors = 0
    head = 0  # index of the state the frontier is currently draining
    batch_number = 0
    produced = 0

    def _produce_next() -> None:
        nonlocal produced
        state = produce(produced)
        produced += 1
        stats.produced()
        # Capacity was checked by the caller; a refusal here would be a
        # coordinator bug, so let it surface.
        if not strand_queue.offer(state):
            raise RuntimeError("strand queue overflow")
        states.append(state)

    def _deferred(state, anchor, batch) -> bool:
        """Whether to pause speculation on ``anchor`` (scheduling only).

        True when a same-strand anchor already in flight (or in the
        batch being formed) sits within ``defer_diagonal_bp`` of this
        anchor's diagonal — its alignment will likely absorb this one,
        so dispatching now is near-certain waste.  Deferring never
        reorders: the frontier stops forming and resumes after the
        blocking result commits.
        """
        band = stream.defer_diagonal_bp
        if band <= 0:
            return False
        diag = anchor.target_pos - anchor.query_pos
        for pending in batch:
            if abs(pending.target_pos - pending.query_pos - diag) <= band:
                return True
        for other, flying, _ticket, _base, _number in in_flight:
            if other is not state:
                continue
            for pending in flying:
                pd = pending.target_pos - pending.query_pos
                if abs(pd - diag) <= band:
                    return True
        return False

    def _try_dispatch() -> bool:
        """Form and dispatch batches in serial order up to the watermark.

        Returns True when the frontier paused on a diagonal-dependence
        deferral (anchors remain but speculating them now would be
        waste) — the caller may use the pause to run the producer.
        """
        nonlocal head, in_flight_anchors, batch_number
        deferred = False
        while head < len(states) and in_flight_anchors < limit:
            state = states[head]
            batch = []
            while (
                not state.exhausted
                and len(batch) < batch_cap
                and in_flight_anchors + len(batch) < limit
            ):
                anchor = state.anchors[state.position]
                # The grid only grows, so an anchor it already absorbs
                # would also be absorbed at its serial turn: skipping at
                # formation time is always correct.
                if state.grid.absorbs(anchor):
                    state.position += 1
                    state.workload.absorbed_anchors += 1
                    continue
                if _deferred(state, anchor, batch):
                    deferred = True
                    break
                state.position += 1
                batch.append(anchor)
            if batch:
                base = tracer.now()
                ticket = engine.dispatch(
                    extend_batch_task,
                    target_handle,
                    engine.share(state.query),
                    tuple(batch),
                    scoring,
                    params,
                    traced,
                    key=f"extend:{batch_number}",
                )
                in_flight.append(
                    (state, tuple(batch), ticket, base, batch_number)
                )
                in_flight_anchors += len(batch)
                batch_number += 1
                depth = stats.dispatched()
                if registry is not None:
                    registry.histogram("stream_queue_depth").observe(depth)
                continue
            if state.exhausted:
                # Fully dispatched: free this strand's queue slot so the
                # producer may run again.
                strand_queue.take()
                head += 1
                continue
            break  # watermark or deferral reached mid-strand
        progress.set_in_flight(len(in_flight))
        return deferred

    def _starved() -> bool:
        """No produced anchors left to dispatch."""
        return head >= len(states)

    def _collect_one() -> None:
        """Collect the oldest in-flight batch and replay it in order."""
        nonlocal in_flight_anchors
        state, batch, ticket, base, number = in_flight.popleft()
        _stall_if_planned(resilience, f"extend:{number}")
        results, span_dicts, ack = engine.result(ticket, tracer=tracer)
        in_flight_anchors -= len(batch)
        depth = stats.collected()
        now = tracer.now()
        if registry is not None:
            registry.histogram("stream_queue_depth").observe(depth)
            if ack is not None:
                latency = now - base - ack.get("busy", 0.0)
                registry.histogram("dispatch_latency_seconds").observe(
                    max(0.0, latency)
                )
        if bus is not None and ack is not None:
            bus.record_ack(ack, done_at=now)
        committed_cells = 0
        for slot, (anchor, extension) in enumerate(zip(batch, results)):
            # Strict in-order replay: re-check absorption against the
            # now-complete grid; drop absorbed results with their spans
            # and counters so accounting matches the serial run exactly.
            if state.grid.absorbs(anchor):
                state.workload.absorbed_anchors += 1
                continue
            if traced and span_dicts is not None:
                graft_span_dicts(tracer, [span_dicts[slot]], base=base)
            committed_cells += extension.cells
            _commit(
                extension,
                state.grid,
                state.workload,
                state.alignments,
                state.seen_spans,
                keep_tile_traces,
            )
        progress.advance(cells=committed_cells)
        progress.set_in_flight(len(in_flight))

    while True:
        # Eager replay: commit every already-settled head batch before
        # forming new speculation.  Costs nothing (poll never blocks),
        # and keeps the coverage grid fresh so fewer dispatched anchors
        # turn out absorbed at replay — the dominant waste term when
        # cores are scarce.  Order is still strictly FIFO.
        while in_flight and engine.poll(in_flight[0][2]):
            _collect_one()
        deferred = _try_dispatch()
        saturated = in_flight_anchors >= limit
        if produced < strand_count and (_starved() or saturated or deferred):
            # The frontier is either starved (needs the next strand's
            # anchors) or saturated (the producer can prefetch while
            # workers chew) — run the producer, unless the bounded
            # strand queue refuses: then drain one collection first.
            if not strand_queue.full:
                _produce_next()
                continue
            strand_queue.stalls += 1
            stats.stalled()
        if not in_flight:
            if produced < strand_count:
                continue  # a queue slot freed; produce on the next pass
            break
        if not _starved() and saturated:
            # Watermark holds the frontier back while anchors are
            # pending: producer throttling, counted as backpressure.
            stats.stalled()
        _collect_one()

    stats.close()
    if registry is not None:
        registry.counter("stream_backpressure_stalls").inc(
            stats.backpressure_stalls
        )
        registry.gauge("stream_occupancy").set(stats.occupancy())
        registry.gauge("stream_idle_tail_seconds").set(
            stats.idle_tail_seconds()
        )
        registry.gauge("stream_peak_in_flight").set(stats.peak_in_flight)
    return states, stats


def streamed_strand_align(
    aligner,
    target,
    query,
    index,
    strands,
    keep_tile_traces: bool = True,
):
    """Shared streamed ``align`` body for DarwinWGA and LastzAligner.

    Runs every strand's seed+filter as a producer stage and the shared
    extension frontier as the consumer, inside one ``extend`` span (the
    later strands' producer spans nest under it — the overlap is real,
    so the trace reflects it).  Returns ``(alignments, workload,
    stats)`` with alignments in serial order (per-strand, pre-sort).
    """
    tracer = aligner.tracer
    config = aligner.config

    def produce(i: int) -> StrandStream:
        strand = strands[i]
        oriented = query if strand == 1 else query.reverse_complement()
        with tracer.span("strand", strand="+" if strand == 1 else "-"):
            ordered, workload, grid = aligner._seed_filter_strand(
                target, oriented, index, strand
            )
        return StrandStream(oriented, ordered, grid, workload)

    with tracer.span("extend") as extend_span:
        states, stats = stream_extension(
            target,
            len(strands),
            produce,
            config.scoring,
            config.extension,
            aligner.engine,
            tracer=tracer,
            stream=getattr(aligner, "stream_params", None),
            keep_tile_traces=keep_tile_traces,
            resilience=aligner.resilience,
        )
        alignments: List[Alignment] = []
        workload = None
        for state in states:
            alignments.extend(state.alignments)
            if workload is None:
                workload = state.workload
            else:
                workload.merge(state.workload)
        extend_span.inc("extension_tiles", workload.extension_tiles)
        extend_span.inc("extension_cells", workload.extension_cells)
        extend_span.inc("absorbed_anchors", workload.absorbed_anchors)
        extend_span.inc("alignments", len(alignments))
        extend_span.set(
            occupancy=round(stats.occupancy(), 6),
            idle_tail_seconds=round(stats.idle_tail_seconds(), 6),
            backpressure_stalls=stats.backpressure_stalls,
            peak_in_flight=stats.peak_in_flight,
        )
    return alignments, workload, stats
