"""Darwin-WGA configuration (paper Table II).

Every stage parameter is collected here with the paper's defaults: the
LASTZ-default scoring scheme, the 12of19 transition-tolerant seed, D-SOFT
chunk/bin sizes, the banded-Smith-Waterman filter tile geometry, and the
GACT-X extension tile parameters.  The filter threshold defaults to
``H_f = 4000``: Table II lists 3000, but section VI-B shows that 3000
yields a 1.48% false-positive rate and selects 4000 as the default
operating point, which is what the headline results use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..align.matrices import lastz_default
from ..align.scoring import ScoringScheme
from ..seed.dsoft import DsoftParams
from ..seed.patterns import SpacedSeed


@dataclass(frozen=True)
class FilterParams:
    """Gapped (banded Smith-Waterman) filtering parameters."""

    tile_size: int = 320  # T_f
    band: int = 32  # B
    threshold: int = 4000  # H_f (see module docstring)

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if self.band < 0:
            raise ValueError("band must be non-negative")


@dataclass(frozen=True)
class ExtensionParams:
    """GACT-X extension parameters."""

    tile_size: int = 1920  # T_e
    overlap: int = 128  # O
    ydrop: int = 9430  # Y
    threshold: int = 4000  # H_e

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if not 0 <= self.overlap < self.tile_size:
            raise ValueError("overlap must lie in [0, tile_size)")
        if self.ydrop < 0:
            raise ValueError("ydrop must be non-negative")


@dataclass(frozen=True)
class DarwinWGAConfig:
    """Complete pipeline configuration with paper defaults."""

    scoring: ScoringScheme = field(default_factory=lastz_default)
    seed: SpacedSeed = field(default_factory=SpacedSeed)
    dsoft: DsoftParams = field(default_factory=DsoftParams)
    filtering: FilterParams = field(default_factory=FilterParams)
    extension: ExtensionParams = field(default_factory=ExtensionParams)
    both_strands: bool = True
    #: Coverage-grid granularity for anchor absorption (section III-D).
    absorb_granularity: int = 64

    def scaled(self, factor: float) -> "DarwinWGAConfig":
        """A configuration with tile geometry scaled by ``factor``.

        Convenient for small synthetic genomes where the full 320/1920
        tiles would span a large fraction of the sequence.  Thresholds are
        scaled with the same factor so score densities stay comparable.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        filtering = replace(
            self.filtering,
            tile_size=max(16, int(self.filtering.tile_size * factor)),
            band=max(4, int(self.filtering.band * factor)),
            threshold=int(self.filtering.threshold * factor),
        )
        extension = replace(
            self.extension,
            tile_size=max(64, int(self.extension.tile_size * factor)),
            overlap=max(8, int(self.extension.overlap * factor)),
            threshold=int(self.extension.threshold * factor),
        )
        return replace(self, filtering=filtering, extension=extension)
