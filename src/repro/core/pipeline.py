"""The Darwin-WGA pipeline: D-SOFT seeding -> gapped filter -> GACT-X.

This is the paper's primary contribution assembled end to end (Figure 4
and Figure 6): software seeding with diagonal-band D-SOFT, hardware-style
banded-Smith-Waterman gapped filtering, and GACT-X tiled extension with
anchor absorption.  Per-stage workload counters (seeds, filter tiles,
extension tiles — the paper's Table V columns) are collected on every run
and consumed by the performance models in :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..align.alignment import Alignment, AnchorHit
from ..genome.sequence import Sequence
from ..seed.dsoft import dsoft_seed
from ..seed.index import SeedIndex
from .anchors import CoverageGrid
from .config import DarwinWGAConfig
from .gact_x import TileTrace, gact_x_extend
from .gapped_filter import gapped_filter


@dataclass
class Workload:
    """Per-stage work counters (the paper's Table V workload columns)."""

    seed_hits: int = 0
    filter_tiles: int = 0
    filter_cells: int = 0
    extension_tiles: int = 0
    extension_cells: int = 0
    anchors: int = 0
    absorbed_anchors: int = 0
    extension_tile_traces: List[TileTrace] = field(default_factory=list)

    def merge(self, other: "Workload") -> None:
        self.seed_hits += other.seed_hits
        self.filter_tiles += other.filter_tiles
        self.filter_cells += other.filter_cells
        self.extension_tiles += other.extension_tiles
        self.extension_cells += other.extension_cells
        self.anchors += other.anchors
        self.absorbed_anchors += other.absorbed_anchors
        self.extension_tile_traces.extend(other.extension_tile_traces)


@dataclass
class WGAResult:
    """Alignments plus the workload that produced them."""

    alignments: List[Alignment]
    workload: Workload

    @property
    def total_matches(self) -> int:
        return sum(a.matches for a in self.alignments)


class DarwinWGA:
    """Whole genome aligner with gapped filtering and GACT-X extension.

    >>> from repro.genome import make_species_pair
    >>> import numpy as np
    >>> pair = make_species_pair(3000, 0.2, np.random.default_rng(0))
    >>> aligner = DarwinWGA()
    >>> result = aligner.align(pair.target.genome, pair.query.genome)
    """

    def __init__(self, config: DarwinWGAConfig = None) -> None:
        self.config = config or DarwinWGAConfig()

    def align(self, target: Sequence, query: Sequence) -> WGAResult:
        """Align ``query`` against ``target`` on both strands."""
        config = self.config
        index = SeedIndex.build(target, config.seed)
        strands = (1, -1) if config.both_strands else (1,)
        alignments: List[Alignment] = []
        workload = Workload()
        for strand in strands:
            oriented = query if strand == 1 else query.reverse_complement()
            strand_result = self._align_strand(
                target, oriented, index, strand
            )
            alignments.extend(strand_result.alignments)
            workload.merge(strand_result.workload)
        alignments.sort(key=lambda a: -a.score)
        return WGAResult(alignments=alignments, workload=workload)

    def _align_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
    ) -> WGAResult:
        config = self.config
        seeding = dsoft_seed(index, query, config.dsoft)
        filter_result = gapped_filter(
            target,
            query,
            seeding.target_positions,
            seeding.query_positions,
            config.scoring,
            config.filtering,
            strand=strand,
        )
        workload = Workload(
            seed_hits=seeding.raw_hit_count,
            filter_tiles=filter_result.tiles,
            filter_cells=filter_result.cells,
            anchors=len(filter_result.anchors),
        )

        grid = CoverageGrid(config.absorb_granularity)
        alignments: List[Alignment] = []
        seen_spans = set()
        # Extend best-filter-score first so absorption keeps the anchors
        # most likely to seed the strongest alignments.
        ordered = sorted(
            filter_result.anchors, key=lambda a: -a.filter_score
        )
        for anchor in ordered:
            if grid.absorbs(anchor):
                workload.absorbed_anchors += 1
                continue
            extension = gact_x_extend(
                target, query, anchor, config.scoring, config.extension
            )
            workload.extension_tiles += extension.tile_count
            workload.extension_cells += extension.cells
            workload.extension_tile_traces.extend(extension.tiles)
            alignment = extension.alignment
            if alignment is not None:
                span = (
                    alignment.target_start,
                    alignment.target_end,
                    alignment.query_start,
                    alignment.query_end,
                )
                grid.add_alignment(alignment)
                if span not in seen_spans:
                    seen_spans.add(span)
                    alignments.append(alignment)
        return WGAResult(alignments=alignments, workload=workload)


def align_pair(
    target: Sequence, query: Sequence, config: DarwinWGAConfig = None
) -> WGAResult:
    """One-call convenience wrapper around :class:`DarwinWGA`."""
    return DarwinWGA(config).align(target, query)


def align_assemblies(
    target_assembly,
    query_assembly,
    config: DarwinWGAConfig = None,
    aligner_class=DarwinWGA,
) -> WGAResult:
    """Whole-assembly WGA: every target chromosome vs every query
    chromosome (the paper's actual task — its species have multiple
    nuclear chromosomes).

    Each chromosome pair is aligned independently; alignments keep their
    chromosome names so chains partition correctly per
    (target chromosome, query chromosome, strand).
    """
    aligner = aligner_class(config)
    alignments: List[Alignment] = []
    workload = Workload()
    for target in target_assembly:
        for query in query_assembly:
            result = aligner.align(target, query)
            alignments.extend(result.alignments)
            workload.merge(result.workload)
    alignments.sort(key=lambda a: -a.score)
    return WGAResult(alignments=alignments, workload=workload)
