"""The Darwin-WGA pipeline: D-SOFT seeding -> gapped filter -> GACT-X.

This is the paper's primary contribution assembled end to end (Figure 4
and Figure 6): software seeding with diagonal-band D-SOFT, hardware-style
banded-Smith-Waterman gapped filtering, and GACT-X tiled extension with
anchor absorption.  Per-stage workload counters (seeds, filter tiles,
extension tiles — the paper's Table V columns) are collected on every run
and consumed by the performance models in :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union


from ..align.alignment import Alignment
from ..genome.sequence import Sequence
from ..obs.export import graft_span_dicts
from ..obs.progress import NO_PROGRESS
from ..obs.session import TelemetryOptions
from ..obs.tracer import NULL_TRACER
from ..resilience.checkpoint import (
    RunManifest,
    config_digest,
    sequences_digest,
)
from ..obs.occupancy import StreamStats
from ..resilience.policy import ResilienceOptions
from ..seed.cache import SeedIndexCache
from ..seed.dsoft import dsoft_seed
from ..seed.index import SeedIndex
from .anchors import CoverageGrid
from .config import DarwinWGAConfig
from .extension import extend_anchors
from .gact_x import TileTrace
from .gapped_filter import gapped_filter
from .stream import (
    BoundedQueue,
    StreamParams,
    _stall_if_planned,
    streamed_strand_align,
)
from .worker import align_unit_task

if TYPE_CHECKING:  # repro.parallel sits above core in the layer DAG
    from ..parallel.engine import ExecutionEngine


def _make_engine(
    workers: int,
    resilience: Optional[ResilienceOptions] = None,
    telemetry: Optional[TelemetryOptions] = None,
) -> "ExecutionEngine":
    """Construct the multiprocess engine.

    Deferred import: ``repro.parallel`` is a higher layer than
    ``core``, so the pipelines only reach up at call time, when the
    caller actually asked for workers (see LAY001 in repro.analysis).
    """
    from ..parallel.engine import ExecutionEngine

    return ExecutionEngine(
        workers, resilience=resilience, telemetry=telemetry
    )


def _bind_telemetry(
    telemetry: Optional[TelemetryOptions], tracer
) -> None:
    """Stand the telemetry bus up for a traced run and attach it.

    Must happen before the engine's pool runs its first task — the bus
    queue only reaches workers through the pool initializer.  Untraced
    runs skip the bus entirely (workers would have no spans to stream),
    so NullTracer benchmarks pay nothing.
    """
    if telemetry is None:
        return
    if tracer.enabled:
        telemetry.ensure_bus()
    telemetry.attach(tracer)


def _resolve_cache(
    index_cache: Union[SeedIndexCache, str, Path, None],
    resilience: Optional[ResilienceOptions] = None,
) -> Optional[SeedIndexCache]:
    if index_cache is None:
        return None
    if isinstance(index_cache, SeedIndexCache):
        if resilience is not None and index_cache.resilience is None:
            index_cache.resilience = resilience
        return index_cache
    return SeedIndexCache(index_cache, resilience=resilience)


@dataclass
class Workload:
    """Per-stage work counters (the paper's Table V workload columns)."""

    seed_hits: int = 0
    filter_tiles: int = 0
    filter_cells: int = 0
    extension_tiles: int = 0
    extension_cells: int = 0
    anchors: int = 0
    absorbed_anchors: int = 0
    extension_tile_traces: List[TileTrace] = field(default_factory=list)

    def merge(self, other: "Workload") -> None:
        self.seed_hits += other.seed_hits
        self.filter_tiles += other.filter_tiles
        self.filter_cells += other.filter_cells
        self.extension_tiles += other.extension_tiles
        self.extension_cells += other.extension_cells
        self.anchors += other.anchors
        self.absorbed_anchors += other.absorbed_anchors
        self.extension_tile_traces.extend(other.extension_tile_traces)


@dataclass
class WGAResult:
    """Alignments plus the workload that produced them."""

    alignments: List[Alignment]
    workload: Workload

    @property
    def total_matches(self) -> int:
        return sum(a.matches for a in self.alignments)


class DarwinWGA:
    """Whole genome aligner with gapped filtering and GACT-X extension.

    >>> from repro.genome import make_species_pair
    >>> import numpy as np
    >>> pair = make_species_pair(3000, 0.2, np.random.default_rng(0))
    >>> aligner = DarwinWGA()
    >>> result = aligner.align(pair.target.genome, pair.query.genome)

    Pass a :class:`repro.obs.Tracer` to record per-stage spans (seed /
    filter / per-anchor extension); the default :data:`NULL_TRACER` makes
    instrumentation free.

    ``workers > 1`` fans the extension stage out over a process pool
    (deterministically — output is byte-identical to ``workers=1``);
    an externally owned :class:`~repro.parallel.engine.ExecutionEngine`
    may be passed instead to share one pool across aligners.  Parallel
    runs use the streamed dataflow (:mod:`repro.core.stream`) by
    default: seeding/filtering of later strands overlaps in-flight
    extensions under a bounded in-flight watermark.  ``streaming=False``
    keeps the legacy barrier schedule (all seed+filter, then all
    extension, per strand) — the output is byte-identical either way;
    only the schedule (and the idle tail) differs.
    ``index_cache`` (a directory path or
    :class:`~repro.seed.cache.SeedIndexCache`) persists seed indexes
    across runs.  ``telemetry`` (a
    :class:`~repro.obs.session.TelemetryOptions`) adds live progress,
    metric collection and — for traced parallel runs — the
    cross-process telemetry bus.  Aligners that own their engine should
    be closed (:meth:`close` or a ``with`` block) when ``workers > 1``.
    """

    def __init__(
        self,
        config: Optional[DarwinWGAConfig] = None,
        tracer=None,
        workers: int = 1,
        engine: Optional[ExecutionEngine] = None,
        index_cache: Union[SeedIndexCache, str, Path, None] = None,
        resilience: Optional[ResilienceOptions] = None,
        telemetry: Optional[TelemetryOptions] = None,
        streaming: Optional[bool] = None,
        stream_params: Optional[StreamParams] = None,
    ) -> None:
        self.config = config or DarwinWGAConfig()
        self.streaming = streaming
        self.stream_params = stream_params
        #: Occupancy/backpressure summary of the last parallel align()
        #: (a :meth:`repro.obs.occupancy.StreamStats.summary` dict), or
        #: None for serial runs.
        self.last_stream = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.workers = engine.workers if engine is not None else workers
        if resilience is None and engine is not None:
            resilience = engine.resilience
        self.resilience = resilience
        self.index_cache = _resolve_cache(index_cache, resilience)
        if engine is not None and telemetry is not None:
            engine.adopt_telemetry(telemetry)
        self.telemetry = telemetry
        self._engine = engine
        self._owns_engine = False

    @property
    def engine(self) -> Optional[ExecutionEngine]:
        """The execution engine, created lazily when ``workers > 1``."""
        if self._engine is None and self.workers > 1:
            _bind_telemetry(self.telemetry, self.tracer)
            self._engine = _make_engine(
                self.workers, self.resilience, self.telemetry
            )
            self._owns_engine = True
        return self._engine

    def close(self) -> None:
        """Release the engine if this aligner created it."""
        if self._owns_engine and self._engine is not None:
            self._engine.close()
            self._engine = None
            self._owns_engine = False

    def __enter__(self) -> "DarwinWGA":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _build_index(self, target: Sequence) -> SeedIndex:
        """Build (or load from the cache) the target's seed index."""
        if self.index_cache is not None:
            return self.index_cache.get_or_build(
                target, self.config.seed, tracer=self.tracer
            )
        with self.tracer.span("build_index", target=target.name or "target"):
            return SeedIndex.build(target, self.config.seed)

    def align(
        self,
        target: Sequence,
        query: Sequence,
        index: Optional[SeedIndex] = None,
    ) -> WGAResult:
        """Align ``query`` against ``target`` on both strands.

        ``index`` is an optional prebuilt :class:`SeedIndex` of
        ``target`` (with this config's seed pattern); passing one lets
        callers aligning many queries against the same target — e.g.
        :func:`align_assemblies` — amortise index construction.
        """
        config = self.config
        tracer = self.tracer
        with tracer.span(
            "align",
            aligner="darwin",
            target=target.name or "target",
            query=query.name or "query",
            target_bp=len(target),
            query_bp=len(query),
        ) as span:
            if index is None:
                index = self._build_index(target)
            strands = (1, -1) if config.both_strands else (1,)
            engine = self.engine
            parallel = engine is not None and engine.active
            if parallel and self.streaming is not False:
                alignments, workload, stats = streamed_strand_align(
                    self, target, query, index, strands,
                    keep_tile_traces=True,
                )
                self.last_stream = stats.summary()
            else:
                observer = (
                    StreamStats(slots=engine.workers) if parallel else None
                )
                alignments = []
                workload = Workload()
                for strand in strands:
                    oriented = (
                        query if strand == 1 else query.reverse_complement()
                    )
                    with tracer.span(
                        "strand", strand="+" if strand == 1 else "-"
                    ):
                        strand_result = self._align_strand(
                            target, oriented, index, strand,
                            observer=observer,
                        )
                    alignments.extend(strand_result.alignments)
                    workload.merge(strand_result.workload)
                if observer is not None:
                    observer.close()
                self.last_stream = (
                    observer.summary() if observer is not None else None
                )
            alignments.sort(key=lambda a: -a.score)
            span.inc("seed_hits", workload.seed_hits)
            span.inc("filter_tiles", workload.filter_tiles)
            span.inc("filter_cells", workload.filter_cells)
            span.inc("extension_tiles", workload.extension_tiles)
            span.inc("extension_cells", workload.extension_cells)
            span.inc("anchors", workload.anchors)
            span.inc("absorbed_anchors", workload.absorbed_anchors)
            span.inc("alignments", len(alignments))
            return WGAResult(alignments=alignments, workload=workload)

    def _seed_filter_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
    ):
        """One strand's producer stage: seed, filter, order anchors.

        Returns ``(ordered_anchors, workload, grid)`` — everything the
        extension stage (serial, barrier-parallel or streamed) needs.
        The sort by filter score is a deliberate per-strand ordering
        barrier: extension priority determines absorption, so it is
        part of the byte-identical-output contract.
        """
        config = self.config
        tracer = self.tracer
        seeding = dsoft_seed(index, query, config.dsoft, tracer=tracer)
        filter_result = gapped_filter(
            target,
            query,
            seeding.target_positions,
            seeding.query_positions,
            config.scoring,
            config.filtering,
            strand=strand,
            tracer=tracer,
        )
        workload = Workload(
            seed_hits=seeding.raw_hit_count,
            filter_tiles=filter_result.tiles,
            filter_cells=filter_result.cells,
            anchors=len(filter_result.anchors),
        )
        grid = CoverageGrid(config.absorb_granularity)
        # Extend best-filter-score first so absorption keeps the anchors
        # most likely to seed the strongest alignments.
        ordered = sorted(
            filter_result.anchors, key=lambda a: -a.filter_score
        )
        return ordered, workload, grid

    def _align_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
        observer: Optional[StreamStats] = None,
    ) -> WGAResult:
        ordered, workload, grid = self._seed_filter_strand(
            target, query, index, strand
        )
        alignments = extend_anchors(
            target,
            query,
            ordered,
            self.config.scoring,
            self.config.extension,
            grid,
            workload,
            tracer=self.tracer,
            engine=self.engine,
            keep_tile_traces=True,
            observer=observer,
        )
        return WGAResult(alignments=alignments, workload=workload)


def align_pair(
    target: Sequence,
    query: Sequence,
    config: Optional[DarwinWGAConfig] = None,
    tracer=None,
    workers: int = 1,
    index_cache=None,
    telemetry: Optional[TelemetryOptions] = None,
) -> WGAResult:
    """One-call convenience wrapper around :class:`DarwinWGA`."""
    with DarwinWGA(
        config,
        tracer=tracer,
        workers=workers,
        index_cache=index_cache,
        telemetry=telemetry,
    ) as aligner:
        return aligner.align(target, query)


def _unit_key(ti: int, target: Sequence, qi: int, query: Sequence) -> str:
    """Stable identity of one (target, query) chromosome-pair unit."""
    return f"{ti}:{target.name or 'target'}|{qi}:{query.name or 'query'}"


def _attach_manifest(
    checkpoint,
    resume: bool,
    aligner_class,
    resolved_config,
    target_assembly,
    query_assembly,
) -> Optional[RunManifest]:
    if checkpoint is None:
        return None
    return RunManifest.attach(
        checkpoint,
        aligner=aligner_class.__name__,
        config=config_digest(resolved_config),
        target=sequences_digest(target_assembly),
        query=sequences_digest(query_assembly),
        resume=resume,
    )


def align_assemblies(
    target_assembly,
    query_assembly,
    config=None,
    aligner_class=DarwinWGA,
    tracer=None,
    workers: int = 1,
    engine: Optional[ExecutionEngine] = None,
    index_cache: Union[SeedIndexCache, str, Path, None] = None,
    checkpoint: Union[str, Path, None] = None,
    resume: bool = False,
    resilience: Optional[ResilienceOptions] = None,
    telemetry: Optional[TelemetryOptions] = None,
    stream: Optional[StreamParams] = None,
) -> WGAResult:
    """Whole-assembly WGA: every target chromosome vs every query
    chromosome (the paper's actual task — its species have multiple
    nuclear chromosomes).

    Each chromosome pair is aligned independently; alignments keep their
    chromosome names so chains partition correctly per
    (target chromosome, query chromosome, strand).  The target seed
    index is built once per target chromosome and shared across all
    query chromosomes (and both strands), so index construction cost is
    O(target) rather than O(target x queries).

    ``workers > 1`` (or an external ``engine``) distributes whole
    (target chromosome, query chromosome) units across worker processes
    — units are gathered in submission order and the final sort is
    stable, so the result is byte-identical to the serial run.  With an
    ``index_cache`` the parent warms each target's seed index once and
    workers load it from disk instead of rebuilding per unit.

    ``checkpoint`` journals every completed unit to a
    :class:`~repro.resilience.checkpoint.RunManifest`; ``resume=True``
    replays journaled units from an existing manifest (after verifying
    it was written by this exact aligner/config/input combination)
    instead of recomputing them.  Because journaled results are merged
    back at their original positions, a resumed run's output is
    byte-identical to an uninterrupted one.  ``resilience`` supplies the
    retry policy, fault-injection plan and recovery counters for
    supervised parallel dispatch.

    ``telemetry`` adds live progress reporting and metric collection;
    for traced parallel runs it also stands up the cross-process
    telemetry bus, over which workers stream their span trees, funnel
    counters and resource samples as each unit completes.  None of it
    changes the result: telemetry rides alongside the dispatch/gather
    order, never in it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    cache = _resolve_cache(index_cache, resilience)
    resolved_config = config if config is not None else aligner_class().config
    manifest = _attach_manifest(
        checkpoint,
        resume,
        aligner_class,
        resolved_config,
        target_assembly,
        query_assembly,
    )
    stats = resilience.stats if resilience is not None else None
    progress = telemetry.progress if telemetry is not None else NO_PROGRESS
    pool = engine
    owns_engine = False
    if pool is None and workers > 1:
        _bind_telemetry(telemetry, tracer)
        pool = _make_engine(workers, resilience, telemetry)
        owns_engine = True
    elif pool is not None and telemetry is not None:
        # An externally owned engine adopts the telemetry bundle only
        # while its pool is still unbuilt (the bus must ride the pool
        # initializer); otherwise progress still works parent-side.
        if pool.adopt_telemetry(telemetry):
            _bind_telemetry(telemetry, tracer)
    try:
        if pool is not None and pool.active:
            return _align_assemblies_parallel(
                target_assembly,
                query_assembly,
                resolved_config,
                aligner_class,
                tracer,
                pool,
                cache,
                manifest,
                stats,
                resilience,
                stream,
            )
        aligner = aligner_class(
            resolved_config,
            tracer=tracer,
            index_cache=cache,
            resilience=resilience,
        )
        alignments: List[Alignment] = []
        workload = Workload()
        with tracer.span("align_assemblies") as span:
            for ti, target in enumerate(target_assembly):
                # Built on first non-journaled unit: a fully resumed
                # target never pays for index construction.
                index = None
                for qi, query in enumerate(query_assembly):
                    key = _unit_key(ti, target, qi, query)
                    if manifest is not None and key in manifest:
                        result = manifest.result_for(key)
                        span.inc("resumed_units")
                        if stats is not None:
                            stats.resumed_units += 1
                    else:
                        if index is None:
                            index = aligner._build_index(target)
                        result = aligner.align(target, query, index=index)
                        if manifest is not None:
                            manifest.record(key, result)
                            if stats is not None:
                                stats.journaled_units += 1
                    alignments.extend(result.alignments)
                    workload.merge(result.workload)
                    span.inc("chromosome_pairs")
                    progress.advance(
                        units=1,
                        cells=result.workload.filter_cells
                        + result.workload.extension_cells,
                    )
        alignments.sort(key=lambda a: -a.score)
        return WGAResult(alignments=alignments, workload=workload)
    finally:
        if owns_engine:
            pool.close()


def _assembly_units(target_assembly, query_assembly):
    """Lazy serial-order unit stream (the producer stage)."""
    for ti, target in enumerate(target_assembly):
        for qi, query in enumerate(query_assembly):
            yield ti, target, qi, query


def _align_assemblies_parallel(
    target_assembly,
    query_assembly,
    resolved_config,
    aligner_class,
    tracer,
    engine: ExecutionEngine,
    cache: Optional[SeedIndexCache],
    manifest: Optional[RunManifest],
    stats,
    resilience: Optional[ResilienceOptions] = None,
    stream: Optional[StreamParams] = None,
) -> WGAResult:
    """Stream (target chromosome, query chromosome) units over the engine.

    Units flow through a bounded in-flight window (a
    :class:`~repro.core.stream.BoundedQueue` of ``unit_window`` slots)
    instead of being dispatched wholesale up front: the producer shares
    sequences and dispatches lazily, throttled whenever the window is
    full, so pending pickled results stay bounded and memory flat at
    any assembly size.  Submission and result gathering both follow the
    serial iteration order, and each unit is internally serial, so
    alignments, workload counters and the final stable sort reproduce
    the serial run exactly — including under supervised recovery
    (retries, pool rebuilds and serial fallbacks change where a unit
    runs, never its value or its position in the gather order) and
    under resume (journaled units are replayed at their original
    positions, passing through the window without occupying a slot).
    """
    traced = tracer.enabled
    cache_dir = str(cache.directory) if cache is not None else None
    telemetry = engine.telemetry
    registry = telemetry.registry if telemetry is not None else None
    bus = engine.bus
    progress = engine.progress
    stream = stream or StreamParams()
    window = stream.unit_window_for(engine.workers)
    occupancy = StreamStats(slots=engine.workers)
    alignments: List[Alignment] = []
    workload = Workload()
    with tracer.span("align_assemblies") as span:
        units = _assembly_units(target_assembly, query_assembly)
        queue = BoundedQueue("assembly_units", capacity=window)
        target_handles: dict = {}
        outstanding = 0
        exhausted = False

        def _dispatch_next() -> bool:
            """Produce + dispatch one unit; False when none remain."""
            nonlocal exhausted, outstanding
            entry = next(units, None)
            if entry is None:
                exhausted = True
                return False
            ti, target, qi, query = entry
            key = _unit_key(ti, target, qi, query)
            if manifest is not None and key in manifest:
                # Journaled units cost no worker: they ride the queue
                # as markers so they merge at their original position.
                queue.offer((key, None, None))
                return True
            if ti not in target_handles:
                if cache is not None:
                    # Warm the on-disk index once per target so every
                    # worker unit loads it as a cache hit.
                    cache.get_or_build(
                        target, resolved_config.seed, tracer=tracer
                    )
                target_handles[ti] = engine.share(target)
            base = tracer.now()
            if bus is not None:
                # Workers stream this unit's spans with relative
                # timestamps; the bus grafts them onto the parent
                # timeline at the unit's dispatch offset.
                bus.register_unit(key, base)
            ticket = engine.dispatch(
                align_unit_task,
                aligner_class,
                resolved_config,
                target_handles[ti],
                engine.share(query),
                cache_dir,
                traced,
                key,
                key=key,
            )
            queue.offer((key, ticket, base))
            outstanding += 1
            occupancy.dispatched()
            progress.set_in_flight(outstanding)
            return True

        while True:
            # Fill the window; stop at capacity (backpressure) or when
            # the producer runs dry.
            while not exhausted and outstanding < window and not queue.full:
                _dispatch_next()
            if not exhausted and outstanding >= window:
                occupancy.stalled()
            if not len(queue):
                break
            key, ticket, base = queue.take()
            if ticket is None:
                result = manifest.result_for(key)
                span.inc("resumed_units")
                if stats is not None:
                    stats.resumed_units += 1
            else:
                _stall_if_planned(resilience, key)
                result, span_dicts, ack = engine.result(
                    ticket, tracer=tracer
                )
                outstanding -= 1
                occupancy.collected()
                collected = tracer.now()
                if registry is not None:
                    registry.histogram("queue_depth").observe(outstanding)
                    if ack is not None:
                        latency = collected - base - ack.get("busy", 0.0)
                        registry.histogram(
                            "dispatch_latency_seconds"
                        ).observe(max(0.0, latency))
                if bus is not None and ack is not None:
                    bus.record_ack(ack, done_at=collected)
                if traced and span_dicts is not None:
                    # Bus-less engine: spans came back inline; tag them
                    # the way the bus would so trace consumers see one
                    # shape.
                    for grafted in graft_span_dicts(
                        tracer, span_dicts, base=base
                    ):
                        grafted.attrs.setdefault("unit", key)
                if manifest is not None:
                    manifest.record(key, result)
                    if stats is not None:
                        stats.journaled_units += 1
                progress.set_in_flight(outstanding)
            alignments.extend(result.alignments)
            workload.merge(result.workload)
            span.inc("chromosome_pairs")
            progress.advance(
                units=1,
                cells=result.workload.filter_cells
                + result.workload.extension_cells,
            )
        occupancy.close()
        span.set(
            occupancy=round(occupancy.occupancy(), 6),
            backpressure_stalls=occupancy.backpressure_stalls,
            peak_in_flight=occupancy.peak_in_flight,
        )
        if registry is not None:
            registry.counter("stream_backpressure_stalls").inc(
                occupancy.backpressure_stalls
            )
            registry.gauge("stream_occupancy").set(occupancy.occupancy())
            registry.gauge("stream_peak_in_flight").set(
                occupancy.peak_in_flight
            )
        if bus is not None:
            missing = bus.drain()
            idle_tail = bus.idle_tail_seconds(tracer.now())
            span.set(
                idle_tail_seconds=round(idle_tail, 6),
                undelivered_events=missing,
            )
            if registry is not None:
                registry.gauge("idle_tail_seconds").set(idle_tail)
    alignments.sort(key=lambda a: -a.score)
    return WGAResult(alignments=alignments, workload=workload)
