"""The Darwin-WGA pipeline: D-SOFT seeding -> gapped filter -> GACT-X.

This is the paper's primary contribution assembled end to end (Figure 4
and Figure 6): software seeding with diagonal-band D-SOFT, hardware-style
banded-Smith-Waterman gapped filtering, and GACT-X tiled extension with
anchor absorption.  Per-stage workload counters (seeds, filter tiles,
extension tiles — the paper's Table V columns) are collected on every run
and consumed by the performance models in :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union


from ..align.alignment import Alignment
from ..genome.sequence import Sequence
from ..obs.export import graft_span_dicts
from ..obs.progress import NO_PROGRESS
from ..obs.session import TelemetryOptions
from ..obs.tracer import NULL_TRACER
from ..resilience.checkpoint import (
    RunManifest,
    config_digest,
    sequences_digest,
)
from ..resilience.policy import ResilienceOptions
from ..seed.cache import SeedIndexCache
from ..seed.dsoft import dsoft_seed
from ..seed.index import SeedIndex
from .anchors import CoverageGrid
from .config import DarwinWGAConfig
from .extension import extend_anchors
from .gact_x import TileTrace
from .gapped_filter import gapped_filter
from .worker import align_unit_task

if TYPE_CHECKING:  # repro.parallel sits above core in the layer DAG
    from ..parallel.engine import ExecutionEngine


def _make_engine(
    workers: int,
    resilience: Optional[ResilienceOptions] = None,
    telemetry: Optional[TelemetryOptions] = None,
) -> "ExecutionEngine":
    """Construct the multiprocess engine.

    Deferred import: ``repro.parallel`` is a higher layer than
    ``core``, so the pipelines only reach up at call time, when the
    caller actually asked for workers (see LAY001 in repro.analysis).
    """
    from ..parallel.engine import ExecutionEngine

    return ExecutionEngine(
        workers, resilience=resilience, telemetry=telemetry
    )


def _bind_telemetry(
    telemetry: Optional[TelemetryOptions], tracer
) -> None:
    """Stand the telemetry bus up for a traced run and attach it.

    Must happen before the engine's pool runs its first task — the bus
    queue only reaches workers through the pool initializer.  Untraced
    runs skip the bus entirely (workers would have no spans to stream),
    so NullTracer benchmarks pay nothing.
    """
    if telemetry is None:
        return
    if tracer.enabled:
        telemetry.ensure_bus()
    telemetry.attach(tracer)


def _resolve_cache(
    index_cache: Union[SeedIndexCache, str, Path, None],
    resilience: Optional[ResilienceOptions] = None,
) -> Optional[SeedIndexCache]:
    if index_cache is None:
        return None
    if isinstance(index_cache, SeedIndexCache):
        if resilience is not None and index_cache.resilience is None:
            index_cache.resilience = resilience
        return index_cache
    return SeedIndexCache(index_cache, resilience=resilience)


@dataclass
class Workload:
    """Per-stage work counters (the paper's Table V workload columns)."""

    seed_hits: int = 0
    filter_tiles: int = 0
    filter_cells: int = 0
    extension_tiles: int = 0
    extension_cells: int = 0
    anchors: int = 0
    absorbed_anchors: int = 0
    extension_tile_traces: List[TileTrace] = field(default_factory=list)

    def merge(self, other: "Workload") -> None:
        self.seed_hits += other.seed_hits
        self.filter_tiles += other.filter_tiles
        self.filter_cells += other.filter_cells
        self.extension_tiles += other.extension_tiles
        self.extension_cells += other.extension_cells
        self.anchors += other.anchors
        self.absorbed_anchors += other.absorbed_anchors
        self.extension_tile_traces.extend(other.extension_tile_traces)


@dataclass
class WGAResult:
    """Alignments plus the workload that produced them."""

    alignments: List[Alignment]
    workload: Workload

    @property
    def total_matches(self) -> int:
        return sum(a.matches for a in self.alignments)


class DarwinWGA:
    """Whole genome aligner with gapped filtering and GACT-X extension.

    >>> from repro.genome import make_species_pair
    >>> import numpy as np
    >>> pair = make_species_pair(3000, 0.2, np.random.default_rng(0))
    >>> aligner = DarwinWGA()
    >>> result = aligner.align(pair.target.genome, pair.query.genome)

    Pass a :class:`repro.obs.Tracer` to record per-stage spans (seed /
    filter / per-anchor extension); the default :data:`NULL_TRACER` makes
    instrumentation free.

    ``workers > 1`` fans the extension stage out over a process pool
    (deterministically — output is byte-identical to ``workers=1``);
    an externally owned :class:`~repro.parallel.engine.ExecutionEngine`
    may be passed instead to share one pool across aligners.
    ``index_cache`` (a directory path or
    :class:`~repro.seed.cache.SeedIndexCache`) persists seed indexes
    across runs.  ``telemetry`` (a
    :class:`~repro.obs.session.TelemetryOptions`) adds live progress,
    metric collection and — for traced parallel runs — the
    cross-process telemetry bus.  Aligners that own their engine should
    be closed (:meth:`close` or a ``with`` block) when ``workers > 1``.
    """

    def __init__(
        self,
        config: Optional[DarwinWGAConfig] = None,
        tracer=None,
        workers: int = 1,
        engine: Optional[ExecutionEngine] = None,
        index_cache: Union[SeedIndexCache, str, Path, None] = None,
        resilience: Optional[ResilienceOptions] = None,
        telemetry: Optional[TelemetryOptions] = None,
    ) -> None:
        self.config = config or DarwinWGAConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.workers = engine.workers if engine is not None else workers
        if resilience is None and engine is not None:
            resilience = engine.resilience
        self.resilience = resilience
        self.index_cache = _resolve_cache(index_cache, resilience)
        if engine is not None and telemetry is not None:
            engine.adopt_telemetry(telemetry)
        self.telemetry = telemetry
        self._engine = engine
        self._owns_engine = False

    @property
    def engine(self) -> Optional[ExecutionEngine]:
        """The execution engine, created lazily when ``workers > 1``."""
        if self._engine is None and self.workers > 1:
            _bind_telemetry(self.telemetry, self.tracer)
            self._engine = _make_engine(
                self.workers, self.resilience, self.telemetry
            )
            self._owns_engine = True
        return self._engine

    def close(self) -> None:
        """Release the engine if this aligner created it."""
        if self._owns_engine and self._engine is not None:
            self._engine.close()
            self._engine = None
            self._owns_engine = False

    def __enter__(self) -> "DarwinWGA":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _build_index(self, target: Sequence) -> SeedIndex:
        """Build (or load from the cache) the target's seed index."""
        if self.index_cache is not None:
            return self.index_cache.get_or_build(
                target, self.config.seed, tracer=self.tracer
            )
        with self.tracer.span("build_index", target=target.name or "target"):
            return SeedIndex.build(target, self.config.seed)

    def align(
        self,
        target: Sequence,
        query: Sequence,
        index: Optional[SeedIndex] = None,
    ) -> WGAResult:
        """Align ``query`` against ``target`` on both strands.

        ``index`` is an optional prebuilt :class:`SeedIndex` of
        ``target`` (with this config's seed pattern); passing one lets
        callers aligning many queries against the same target — e.g.
        :func:`align_assemblies` — amortise index construction.
        """
        config = self.config
        tracer = self.tracer
        with tracer.span(
            "align",
            aligner="darwin",
            target=target.name or "target",
            query=query.name or "query",
            target_bp=len(target),
            query_bp=len(query),
        ) as span:
            if index is None:
                index = self._build_index(target)
            strands = (1, -1) if config.both_strands else (1,)
            alignments: List[Alignment] = []
            workload = Workload()
            for strand in strands:
                oriented = (
                    query if strand == 1 else query.reverse_complement()
                )
                with tracer.span(
                    "strand", strand="+" if strand == 1 else "-"
                ):
                    strand_result = self._align_strand(
                        target, oriented, index, strand
                    )
                alignments.extend(strand_result.alignments)
                workload.merge(strand_result.workload)
            alignments.sort(key=lambda a: -a.score)
            span.inc("seed_hits", workload.seed_hits)
            span.inc("filter_tiles", workload.filter_tiles)
            span.inc("filter_cells", workload.filter_cells)
            span.inc("extension_tiles", workload.extension_tiles)
            span.inc("extension_cells", workload.extension_cells)
            span.inc("anchors", workload.anchors)
            span.inc("absorbed_anchors", workload.absorbed_anchors)
            span.inc("alignments", len(alignments))
            return WGAResult(alignments=alignments, workload=workload)

    def _align_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
    ) -> WGAResult:
        config = self.config
        tracer = self.tracer
        seeding = dsoft_seed(index, query, config.dsoft, tracer=tracer)
        filter_result = gapped_filter(
            target,
            query,
            seeding.target_positions,
            seeding.query_positions,
            config.scoring,
            config.filtering,
            strand=strand,
            tracer=tracer,
        )
        workload = Workload(
            seed_hits=seeding.raw_hit_count,
            filter_tiles=filter_result.tiles,
            filter_cells=filter_result.cells,
            anchors=len(filter_result.anchors),
        )

        grid = CoverageGrid(config.absorb_granularity)
        # Extend best-filter-score first so absorption keeps the anchors
        # most likely to seed the strongest alignments.
        ordered = sorted(
            filter_result.anchors, key=lambda a: -a.filter_score
        )
        alignments = extend_anchors(
            target,
            query,
            ordered,
            config.scoring,
            config.extension,
            grid,
            workload,
            tracer=tracer,
            engine=self.engine,
            keep_tile_traces=True,
        )
        return WGAResult(alignments=alignments, workload=workload)


def align_pair(
    target: Sequence,
    query: Sequence,
    config: Optional[DarwinWGAConfig] = None,
    tracer=None,
    workers: int = 1,
    index_cache=None,
    telemetry: Optional[TelemetryOptions] = None,
) -> WGAResult:
    """One-call convenience wrapper around :class:`DarwinWGA`."""
    with DarwinWGA(
        config,
        tracer=tracer,
        workers=workers,
        index_cache=index_cache,
        telemetry=telemetry,
    ) as aligner:
        return aligner.align(target, query)


def _unit_key(ti: int, target: Sequence, qi: int, query: Sequence) -> str:
    """Stable identity of one (target, query) chromosome-pair unit."""
    return f"{ti}:{target.name or 'target'}|{qi}:{query.name or 'query'}"


def _attach_manifest(
    checkpoint,
    resume: bool,
    aligner_class,
    resolved_config,
    target_assembly,
    query_assembly,
) -> Optional[RunManifest]:
    if checkpoint is None:
        return None
    return RunManifest.attach(
        checkpoint,
        aligner=aligner_class.__name__,
        config=config_digest(resolved_config),
        target=sequences_digest(target_assembly),
        query=sequences_digest(query_assembly),
        resume=resume,
    )


def align_assemblies(
    target_assembly,
    query_assembly,
    config=None,
    aligner_class=DarwinWGA,
    tracer=None,
    workers: int = 1,
    engine: Optional[ExecutionEngine] = None,
    index_cache: Union[SeedIndexCache, str, Path, None] = None,
    checkpoint: Union[str, Path, None] = None,
    resume: bool = False,
    resilience: Optional[ResilienceOptions] = None,
    telemetry: Optional[TelemetryOptions] = None,
) -> WGAResult:
    """Whole-assembly WGA: every target chromosome vs every query
    chromosome (the paper's actual task — its species have multiple
    nuclear chromosomes).

    Each chromosome pair is aligned independently; alignments keep their
    chromosome names so chains partition correctly per
    (target chromosome, query chromosome, strand).  The target seed
    index is built once per target chromosome and shared across all
    query chromosomes (and both strands), so index construction cost is
    O(target) rather than O(target x queries).

    ``workers > 1`` (or an external ``engine``) distributes whole
    (target chromosome, query chromosome) units across worker processes
    — units are gathered in submission order and the final sort is
    stable, so the result is byte-identical to the serial run.  With an
    ``index_cache`` the parent warms each target's seed index once and
    workers load it from disk instead of rebuilding per unit.

    ``checkpoint`` journals every completed unit to a
    :class:`~repro.resilience.checkpoint.RunManifest`; ``resume=True``
    replays journaled units from an existing manifest (after verifying
    it was written by this exact aligner/config/input combination)
    instead of recomputing them.  Because journaled results are merged
    back at their original positions, a resumed run's output is
    byte-identical to an uninterrupted one.  ``resilience`` supplies the
    retry policy, fault-injection plan and recovery counters for
    supervised parallel dispatch.

    ``telemetry`` adds live progress reporting and metric collection;
    for traced parallel runs it also stands up the cross-process
    telemetry bus, over which workers stream their span trees, funnel
    counters and resource samples as each unit completes.  None of it
    changes the result: telemetry rides alongside the dispatch/gather
    order, never in it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    cache = _resolve_cache(index_cache, resilience)
    resolved_config = config if config is not None else aligner_class().config
    manifest = _attach_manifest(
        checkpoint,
        resume,
        aligner_class,
        resolved_config,
        target_assembly,
        query_assembly,
    )
    stats = resilience.stats if resilience is not None else None
    progress = telemetry.progress if telemetry is not None else NO_PROGRESS
    pool = engine
    owns_engine = False
    if pool is None and workers > 1:
        _bind_telemetry(telemetry, tracer)
        pool = _make_engine(workers, resilience, telemetry)
        owns_engine = True
    elif pool is not None and telemetry is not None:
        # An externally owned engine adopts the telemetry bundle only
        # while its pool is still unbuilt (the bus must ride the pool
        # initializer); otherwise progress still works parent-side.
        if pool.adopt_telemetry(telemetry):
            _bind_telemetry(telemetry, tracer)
    try:
        if pool is not None and pool.active:
            return _align_assemblies_parallel(
                target_assembly,
                query_assembly,
                resolved_config,
                aligner_class,
                tracer,
                pool,
                cache,
                manifest,
                stats,
            )
        aligner = aligner_class(
            resolved_config,
            tracer=tracer,
            index_cache=cache,
            resilience=resilience,
        )
        alignments: List[Alignment] = []
        workload = Workload()
        with tracer.span("align_assemblies") as span:
            for ti, target in enumerate(target_assembly):
                # Built on first non-journaled unit: a fully resumed
                # target never pays for index construction.
                index = None
                for qi, query in enumerate(query_assembly):
                    key = _unit_key(ti, target, qi, query)
                    if manifest is not None and key in manifest:
                        result = manifest.result_for(key)
                        span.inc("resumed_units")
                        if stats is not None:
                            stats.resumed_units += 1
                    else:
                        if index is None:
                            index = aligner._build_index(target)
                        result = aligner.align(target, query, index=index)
                        if manifest is not None:
                            manifest.record(key, result)
                            if stats is not None:
                                stats.journaled_units += 1
                    alignments.extend(result.alignments)
                    workload.merge(result.workload)
                    span.inc("chromosome_pairs")
                    progress.advance(
                        units=1,
                        cells=result.workload.filter_cells
                        + result.workload.extension_cells,
                    )
        alignments.sort(key=lambda a: -a.score)
        return WGAResult(alignments=alignments, workload=workload)
    finally:
        if owns_engine:
            pool.close()


def _align_assemblies_parallel(
    target_assembly,
    query_assembly,
    resolved_config,
    aligner_class,
    tracer,
    engine: ExecutionEngine,
    cache: Optional[SeedIndexCache],
    manifest: Optional[RunManifest],
    stats,
) -> WGAResult:
    """Fan (target chromosome, query chromosome) units over the engine.

    Submission and result gathering both follow the serial iteration
    order, and each unit is internally serial, so alignments, workload
    counters and the final stable sort reproduce the serial run exactly
    — including under supervised recovery (retries, pool rebuilds and
    serial fallbacks change where a unit runs, never its value or its
    position in the gather order) and under resume (journaled units are
    replayed at their original positions).
    """
    traced = tracer.enabled
    cache_dir = str(cache.directory) if cache is not None else None
    telemetry = engine.telemetry
    registry = telemetry.registry if telemetry is not None else None
    bus = engine.bus
    progress = engine.progress
    alignments: List[Alignment] = []
    workload = Workload()
    with tracer.span("align_assemblies") as span:
        units = []
        for ti, target in enumerate(target_assembly):
            target_handle = None
            for qi, query in enumerate(query_assembly):
                key = _unit_key(ti, target, qi, query)
                if manifest is not None and key in manifest:
                    units.append((key, None, None))
                    continue
                if target_handle is None:
                    if cache is not None:
                        # Warm the on-disk index once per target so
                        # every worker unit loads it as a cache hit.
                        cache.get_or_build(
                            target, resolved_config.seed, tracer=tracer
                        )
                    target_handle = engine.share(target)
                base = tracer.now()
                if bus is not None:
                    # Workers stream this unit's spans with relative
                    # timestamps; the bus grafts them onto the parent
                    # timeline at the unit's dispatch offset.
                    bus.register_unit(key, base)
                ticket = engine.dispatch(
                    align_unit_task,
                    aligner_class,
                    resolved_config,
                    target_handle,
                    engine.share(query),
                    cache_dir,
                    traced,
                    key,
                    key=key,
                )
                units.append((key, ticket, base))
        outstanding = sum(1 for _, ticket, _ in units if ticket is not None)
        progress.set_in_flight(outstanding)
        for key, ticket, base in units:
            if ticket is None:
                result = manifest.result_for(key)
                span.inc("resumed_units")
                if stats is not None:
                    stats.resumed_units += 1
            else:
                result, span_dicts, ack = engine.result(
                    ticket, tracer=tracer
                )
                outstanding -= 1
                collected = tracer.now()
                if registry is not None:
                    registry.histogram("queue_depth").observe(outstanding)
                    if ack is not None:
                        latency = collected - base - ack.get("busy", 0.0)
                        registry.histogram(
                            "dispatch_latency_seconds"
                        ).observe(max(0.0, latency))
                if bus is not None and ack is not None:
                    bus.record_ack(ack, done_at=collected)
                if traced and span_dicts is not None:
                    # Bus-less engine: spans came back inline; tag them
                    # the way the bus would so trace consumers see one
                    # shape.
                    for grafted in graft_span_dicts(
                        tracer, span_dicts, base=base
                    ):
                        grafted.attrs.setdefault("unit", key)
                if manifest is not None:
                    manifest.record(key, result)
                    if stats is not None:
                        stats.journaled_units += 1
                progress.set_in_flight(outstanding)
            alignments.extend(result.alignments)
            workload.merge(result.workload)
            span.inc("chromosome_pairs")
            progress.advance(
                units=1,
                cells=result.workload.filter_cells
                + result.workload.extension_cells,
            )
        if bus is not None:
            missing = bus.drain()
            idle_tail = bus.idle_tail_seconds(tracer.now())
            span.set(
                idle_tail_seconds=round(idle_tail, 6),
                undelivered_events=missing,
            )
            if registry is not None:
                registry.gauge("idle_tail_seconds").set(idle_tail)
    alignments.sort(key=lambda a: -a.score)
    return WGAResult(alignments=alignments, workload=workload)
