"""The Darwin-WGA pipeline: D-SOFT seeding -> gapped filter -> GACT-X.

This is the paper's primary contribution assembled end to end (Figure 4
and Figure 6): software seeding with diagonal-band D-SOFT, hardware-style
banded-Smith-Waterman gapped filtering, and GACT-X tiled extension with
anchor absorption.  Per-stage workload counters (seeds, filter tiles,
extension tiles — the paper's Table V columns) are collected on every run
and consumed by the performance models in :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


from ..align.alignment import Alignment
from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from ..seed.dsoft import dsoft_seed
from ..seed.index import SeedIndex
from .anchors import CoverageGrid
from .config import DarwinWGAConfig
from .gact_x import TileTrace, gact_x_extend
from .gapped_filter import gapped_filter


@dataclass
class Workload:
    """Per-stage work counters (the paper's Table V workload columns)."""

    seed_hits: int = 0
    filter_tiles: int = 0
    filter_cells: int = 0
    extension_tiles: int = 0
    extension_cells: int = 0
    anchors: int = 0
    absorbed_anchors: int = 0
    extension_tile_traces: List[TileTrace] = field(default_factory=list)

    def merge(self, other: "Workload") -> None:
        self.seed_hits += other.seed_hits
        self.filter_tiles += other.filter_tiles
        self.filter_cells += other.filter_cells
        self.extension_tiles += other.extension_tiles
        self.extension_cells += other.extension_cells
        self.anchors += other.anchors
        self.absorbed_anchors += other.absorbed_anchors
        self.extension_tile_traces.extend(other.extension_tile_traces)


@dataclass
class WGAResult:
    """Alignments plus the workload that produced them."""

    alignments: List[Alignment]
    workload: Workload

    @property
    def total_matches(self) -> int:
        return sum(a.matches for a in self.alignments)


class DarwinWGA:
    """Whole genome aligner with gapped filtering and GACT-X extension.

    >>> from repro.genome import make_species_pair
    >>> import numpy as np
    >>> pair = make_species_pair(3000, 0.2, np.random.default_rng(0))
    >>> aligner = DarwinWGA()
    >>> result = aligner.align(pair.target.genome, pair.query.genome)

    Pass a :class:`repro.obs.Tracer` to record per-stage spans (seed /
    filter / per-anchor extension); the default :data:`NULL_TRACER` makes
    instrumentation free.
    """

    def __init__(
        self,
        config: Optional[DarwinWGAConfig] = None,
        tracer=None,
    ) -> None:
        self.config = config or DarwinWGAConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def align(
        self,
        target: Sequence,
        query: Sequence,
        index: Optional[SeedIndex] = None,
    ) -> WGAResult:
        """Align ``query`` against ``target`` on both strands.

        ``index`` is an optional prebuilt :class:`SeedIndex` of
        ``target`` (with this config's seed pattern); passing one lets
        callers aligning many queries against the same target — e.g.
        :func:`align_assemblies` — amortise index construction.
        """
        config = self.config
        tracer = self.tracer
        with tracer.span(
            "align",
            aligner="darwin",
            target=target.name or "target",
            query=query.name or "query",
            target_bp=len(target),
            query_bp=len(query),
        ) as span:
            if index is None:
                with tracer.span("build_index"):
                    index = SeedIndex.build(target, config.seed)
            strands = (1, -1) if config.both_strands else (1,)
            alignments: List[Alignment] = []
            workload = Workload()
            for strand in strands:
                oriented = (
                    query if strand == 1 else query.reverse_complement()
                )
                with tracer.span(
                    "strand", strand="+" if strand == 1 else "-"
                ):
                    strand_result = self._align_strand(
                        target, oriented, index, strand
                    )
                alignments.extend(strand_result.alignments)
                workload.merge(strand_result.workload)
            alignments.sort(key=lambda a: -a.score)
            span.inc("seed_hits", workload.seed_hits)
            span.inc("filter_tiles", workload.filter_tiles)
            span.inc("filter_cells", workload.filter_cells)
            span.inc("extension_tiles", workload.extension_tiles)
            span.inc("extension_cells", workload.extension_cells)
            span.inc("anchors", workload.anchors)
            span.inc("absorbed_anchors", workload.absorbed_anchors)
            span.inc("alignments", len(alignments))
            return WGAResult(alignments=alignments, workload=workload)

    def _align_strand(
        self,
        target: Sequence,
        query: Sequence,
        index: SeedIndex,
        strand: int,
    ) -> WGAResult:
        config = self.config
        tracer = self.tracer
        seeding = dsoft_seed(index, query, config.dsoft, tracer=tracer)
        filter_result = gapped_filter(
            target,
            query,
            seeding.target_positions,
            seeding.query_positions,
            config.scoring,
            config.filtering,
            strand=strand,
            tracer=tracer,
        )
        workload = Workload(
            seed_hits=seeding.raw_hit_count,
            filter_tiles=filter_result.tiles,
            filter_cells=filter_result.cells,
            anchors=len(filter_result.anchors),
        )

        grid = CoverageGrid(config.absorb_granularity)
        alignments: List[Alignment] = []
        seen_spans = set()
        # Extend best-filter-score first so absorption keeps the anchors
        # most likely to seed the strongest alignments.
        ordered = sorted(
            filter_result.anchors, key=lambda a: -a.filter_score
        )
        with tracer.span("extend") as extend_span:
            for anchor in ordered:
                if grid.absorbs(anchor):
                    workload.absorbed_anchors += 1
                    continue
                extension = gact_x_extend(
                    target,
                    query,
                    anchor,
                    config.scoring,
                    config.extension,
                    tracer=tracer,
                )
                workload.extension_tiles += extension.tile_count
                workload.extension_cells += extension.cells
                workload.extension_tile_traces.extend(extension.tiles)
                alignment = extension.alignment
                if alignment is not None:
                    span = (
                        alignment.target_start,
                        alignment.target_end,
                        alignment.query_start,
                        alignment.query_end,
                    )
                    grid.add_alignment(alignment)
                    if span not in seen_spans:
                        seen_spans.add(span)
                        alignments.append(alignment)
            extend_span.inc("extension_tiles", workload.extension_tiles)
            extend_span.inc("extension_cells", workload.extension_cells)
            extend_span.inc(
                "absorbed_anchors", workload.absorbed_anchors
            )
            extend_span.inc("alignments", len(alignments))
        return WGAResult(alignments=alignments, workload=workload)


def align_pair(
    target: Sequence,
    query: Sequence,
    config: Optional[DarwinWGAConfig] = None,
    tracer=None,
) -> WGAResult:
    """One-call convenience wrapper around :class:`DarwinWGA`."""
    return DarwinWGA(config, tracer=tracer).align(target, query)


def align_assemblies(
    target_assembly,
    query_assembly,
    config=None,
    aligner_class=DarwinWGA,
    tracer=None,
) -> WGAResult:
    """Whole-assembly WGA: every target chromosome vs every query
    chromosome (the paper's actual task — its species have multiple
    nuclear chromosomes).

    Each chromosome pair is aligned independently; alignments keep their
    chromosome names so chains partition correctly per
    (target chromosome, query chromosome, strand).  The target seed
    index is built once per target chromosome and shared across all
    query chromosomes (and both strands), so index construction cost is
    O(target) rather than O(target x queries).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    aligner = aligner_class(config, tracer=tracer)
    alignments: List[Alignment] = []
    workload = Workload()
    with tracer.span("align_assemblies") as span:
        for target in target_assembly:
            with tracer.span(
                "build_index", target=target.name or "target"
            ):
                index = SeedIndex.build(target, aligner.config.seed)
            for query in query_assembly:
                result = aligner.align(target, query, index=index)
                alignments.extend(result.alignments)
                workload.merge(result.workload)
                span.inc("chromosome_pairs")
    alignments.sort(key=lambda a: -a.score)
    return WGAResult(alignments=alignments, workload=workload)
