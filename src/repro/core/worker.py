"""Task functions executed inside worker processes.

Everything here is a module-level function (picklable by reference) that
receives :class:`~repro.parallel.engine.SequenceHandle` objects instead
of sequences, attaches the shared-memory blocks once per process, and —
when the parent is tracing — records its work on a worker-local
:class:`~repro.obs.tracer.Tracer`.

Telemetry travels one of two ways.  With a bus publisher installed in
this process (the engine's pool initializer did it), span trees, funnel
counters and resource samples **stream** over the bus as each task
finishes, and the task returns a small delivery ack instead of the
span payload.  Without a publisher — workers of a bus-less engine, or
the parent process running a serial fallback — spans return inline with
the result exactly as before.  Either way every task returns the same
``(value, span_dicts_or_None, ack_or_None)`` shape.

Worker output discipline: tasks never write to stdout (the parent owns
the terminal); anything a worker wants seen goes through the bus.  Rule
OBS002 in :mod:`repro.analysis` enforces this.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..genome.sequence import Sequence
from ..obs.bus import current_publisher
from ..obs.export import serialize_spans
from ..obs.profiling import flush_worker_profile, worker_profile_active
from ..obs.resource import sample_resources
from ..obs.tracer import NULL_TRACER, Tracer
from ..seed.cache import SeedIndexCache
from .gact_x import gact_x_extend

if TYPE_CHECKING:  # repro.parallel sits above core in the layer DAG
    from ..parallel.engine import SequenceHandle

__all__ = ["align_unit_task", "extend_batch_task", "resolve_sequence"]

#: Shared-memory attachments held for the worker's lifetime, keyed by
#: block name.  Attaching once per process (not per task) keeps the
#: per-batch dispatch cost at a dictionary lookup.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


@atexit.register
def _detach_attached() -> None:
    """Drop numpy views, then close attachments, in that order.

    Without this, interpreter shutdown garbage-collects the
    :class:`SharedMemory` objects while their exported buffers are
    still referenced by the cached arrays, and every ``__del__`` prints
    an ignored ``BufferError``.  Runs in workers and — because the
    serial-fallback path resolves handles in-process — in the parent.
    """
    while _ATTACHED:
        _, (block, codes) = _ATTACHED.popitem()
        del codes
        try:
            block.close()
        except BufferError:
            # A view escaped into a long-lived object; leave the block
            # mapped — the OS reclaims it when the process exits.
            pass


def resolve_sequence(handle: SequenceHandle) -> Sequence:
    """Materialise a :class:`Sequence` from its transport handle."""
    if handle.kind == "bytes":
        codes = np.frombuffer(handle.payload, dtype=np.uint8)
        return Sequence(codes[: handle.length], name=handle.name)
    if handle.kind != "shm":
        raise ValueError(f"unknown sequence handle kind {handle.kind!r}")
    cached = _ATTACHED.get(handle.payload)
    if cached is None:
        block = shared_memory.SharedMemory(name=handle.payload)
        codes = np.frombuffer(block.buf, dtype=np.uint8)
        _ATTACHED[handle.payload] = (block, codes)
    else:
        codes = cached[1]
    return Sequence(codes[: handle.length], name=handle.name)


def _worker_tracer(traced: bool) -> Tracer:
    return Tracer() if traced else NULL_TRACER


def _task_busy(tracer) -> float:
    """Wall seconds this task spent, from its own root spans."""
    if not getattr(tracer, "enabled", False):
        return 0.0
    return sum(span.duration for span in tracer.roots)


def _finish_task(tracer, traced: bool, unit: str = "", funnel=None):
    """Common task epilogue: stream or return spans, flush profiling.

    Returns ``(span_dicts_or_None, ack_or_None)``.  When a bus
    publisher is installed the span payload streams over the bus (the
    return slot is None) and the ack carries the delivery receipt the
    parent's drain step verifies against.
    """
    if worker_profile_active():
        flush_worker_profile()
    publisher = current_publisher()
    span_dicts = serialize_spans(tracer) if traced else None
    if publisher is None:
        return span_dicts, None
    if funnel:
        publisher.emit_funnel(unit, funnel)
    publisher.emit_resource(sample_resources())
    if span_dicts is not None:
        publisher.emit_spans(span_dicts, unit=unit)
        span_dicts = None
    return span_dicts, publisher.ack(busy=_task_busy(tracer))


def extend_batch_task(
    target_handle: SequenceHandle,
    query_handle: SequenceHandle,
    anchors: tuple,
    scoring,
    params,
    traced: bool,
    unit: str = "",
) -> Tuple[list, Optional[List[dict]], Optional[dict]]:
    """Speculatively extend a batch of anchors.

    Returns the per-anchor :class:`~repro.core.gact_x.ExtensionResult`
    list plus (when ``traced``) one serialized ``extend_anchor`` span
    dict per anchor, parallel to the results, so the parent can graft
    exactly the spans of anchors that survive the absorption replay.
    Span dicts always travel in the return value here — never over the
    bus — because the parent must drop the spans of absorbed anchors;
    the bus carries only the resource sample and the ack.
    """
    target = resolve_sequence(target_handle)
    query = resolve_sequence(query_handle)
    tracer = _worker_tracer(traced)
    results = [
        gact_x_extend(target, query, anchor, scoring, params, tracer=tracer)
        for anchor in anchors
    ]
    if worker_profile_active():
        flush_worker_profile()
    span_dicts = serialize_spans(tracer) if traced else None
    publisher = current_publisher()
    ack = None
    if publisher is not None:
        publisher.emit_resource(sample_resources())
        ack = publisher.ack(busy=_task_busy(tracer))
    return results, span_dicts, ack


def align_unit_task(
    aligner_class,
    config,
    target_handle: SequenceHandle,
    query_handle: SequenceHandle,
    index_cache_dir: Optional[str],
    traced: bool,
    unit: str = "",
) -> Tuple[object, Optional[List[dict]], Optional[dict]]:
    """Align one (target chromosome, query chromosome) unit serially.

    Both strands run inside the worker; with an index-cache directory
    the worker loads the target's seed index from disk (the parent warms
    the cache first, so this is a hit) instead of rebuilding it.  The
    unit's funnel counters and span tree stream over the telemetry bus
    when one is installed (see :func:`_finish_task`).
    """
    target = resolve_sequence(target_handle)
    query = resolve_sequence(query_handle)
    tracer = _worker_tracer(traced)
    aligner = aligner_class(config, tracer=tracer)
    index = None
    if index_cache_dir is not None:
        index = SeedIndexCache(index_cache_dir).get_or_build(
            target, aligner.config.seed, tracer=tracer
        )
    result = aligner.align(target, query, index=index)
    workload = result.workload
    funnel = {
        "seed_hits": workload.seed_hits,
        "filter_tiles": workload.filter_tiles,
        "anchors": workload.anchors,
        "anchors_extended": workload.anchors - workload.absorbed_anchors,
        "absorbed_anchors": workload.absorbed_anchors,
        "alignments": len(result.alignments),
    }
    span_dicts, ack = _finish_task(
        tracer, traced, unit=unit, funnel=funnel
    )
    return result, span_dicts, ack
