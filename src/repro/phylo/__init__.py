"""Phylogenetics: distance estimators and neighbour-joining trees."""

from .distance import (
    SiteCounts,
    count_sites,
    estimate_distance,
    jc69_distance,
    k80_distance,
    k80_kappa,
)
from .tree import TreeNode, neighbour_joining, tree_distance

__all__ = [
    "SiteCounts",
    "count_sites",
    "estimate_distance",
    "jc69_distance",
    "k80_distance",
    "k80_kappa",
    "TreeNode",
    "neighbour_joining",
    "tree_distance",
]
