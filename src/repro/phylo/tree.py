"""Neighbour-joining trees from pairwise distances (paper Figure 8).

The paper shows the phylogenetic trees of its two species groups with
PHAST-computed branch lengths; this module reconstructs such trees from a
pairwise distance matrix with Saitou & Nei's neighbour-joining algorithm
and renders them in Newick format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence as TypingSequence, Tuple

import numpy as np


@dataclass
class TreeNode:
    """A node of an (unrooted, represented as rooted) phylogenetic tree."""

    name: str = ""
    children: List[Tuple["TreeNode", float]] = None

    def __post_init__(self) -> None:
        if self.children is None:
            self.children = []

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> List[str]:
        if self.is_leaf:
            return [self.name]
        names: List[str] = []
        for child, _ in self.children:
            names.extend(child.leaves())
        return names

    def newick(self) -> str:
        """Render the subtree in Newick format (with branch lengths)."""
        return self._newick_inner() + ";"

    def _newick_inner(self) -> str:
        if self.is_leaf:
            return self.name
        parts = [
            f"{child._newick_inner()}:{length:.4f}"
            for child, length in self.children
        ]
        label = self.name or ""
        return f"({','.join(parts)}){label}"

    def leaf_distances(self) -> Dict[str, float]:
        """Path lengths from this node to every leaf below it."""
        distances: Dict[str, float] = {}
        if self.is_leaf:
            distances[self.name] = 0.0
            return distances
        for child, length in self.children:
            for leaf, below in child.leaf_distances().items():
                distances[leaf] = below + length
        return distances


def tree_distance(root: TreeNode, a: str, b: str) -> float:
    """Patristic (path) distance between two leaves of the tree."""
    node = _lca(root, a, b)
    if node is None:
        raise KeyError(f"leaves {a!r}/{b!r} not found under one node")
    distances = node.leaf_distances()
    return distances[a] + distances[b]


def _lca(node: TreeNode, a: str, b: str) -> Optional[TreeNode]:
    leaves = set(node.leaves())
    if a not in leaves or b not in leaves:
        return None
    for child, _ in node.children:
        candidate = _lca(child, a, b)
        if candidate is not None:
            return candidate
    return node


def neighbour_joining(
    names: TypingSequence[str], distances: np.ndarray
) -> TreeNode:
    """Build a neighbour-joining tree from a symmetric distance matrix.

    Negative branch lengths (possible on noisy inputs) are clamped to 0,
    the common practice.
    """
    n = len(names)
    matrix = np.asarray(distances, dtype=float)
    if matrix.shape != (n, n):
        raise ValueError("distance matrix shape must match names")
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    nodes: List[TreeNode] = [TreeNode(name=name) for name in names]
    active = list(range(n))
    dist = {
        (i, j): float(matrix[i, j]) for i in range(n) for j in range(n)
    }
    next_id = n

    def d(i: int, j: int) -> float:
        return dist[(i, j)] if (i, j) in dist else dist[(j, i)]

    node_of: Dict[int, TreeNode] = {i: nodes[i] for i in range(n)}

    while len(active) > 2:
        m = len(active)
        totals = {i: sum(d(i, k) for k in active if k != i) for i in active}
        best: Optional[Tuple[float, int, int]] = None
        for ai in range(m):
            for bi in range(ai + 1, m):
                i, j = active[ai], active[bi]
                q = (m - 2) * d(i, j) - totals[i] - totals[j]
                if best is None or q < best[0]:
                    best = (q, i, j)
        _, i, j = best
        dij = d(i, j)
        li = 0.5 * dij + (totals[i] - totals[j]) / (2 * (m - 2))
        lj = dij - li
        li, lj = max(0.0, li), max(0.0, lj)
        parent = TreeNode(name=f"n{next_id}")
        parent.children = [(node_of[i], li), (node_of[j], lj)]
        for k in active:
            if k in (i, j):
                continue
            dist[(next_id, k)] = 0.5 * (d(i, k) + d(j, k) - dij)
        node_of[next_id] = parent
        active = [k for k in active if k not in (i, j)] + [next_id]
        next_id += 1

    i, j = active
    root = TreeNode(name="root")
    final = max(0.0, d(i, j))
    root.children = [(node_of[i], final / 2), (node_of[j], final / 2)]
    return root
