"""Phylogenetic distance estimation from alignments (PHAST substitute).

The paper reports pairwise distances in substitutions/site computed with
PHAST (Figure 8).  Here distances are estimated directly from the WGA
output: aligned base pairs are classified into matches, transitions and
transversions, and the Jukes-Cantor (JC69) or Kimura two-parameter (K80)
corrections convert the observed difference fractions into evolutionary
distances.  Because the evolution simulator *is* a K80 process, the K80
estimator recovers the planted branch lengths — a closed loop the tests
exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence as TypingSequence

from ..align.alignment import Alignment
from ..genome import alphabet
from ..genome.sequence import Sequence


@dataclass(frozen=True)
class SiteCounts:
    """Classification of aligned sites."""

    pairs: int
    transitions: int
    transversions: int

    @property
    def p(self) -> float:
        """Observed transition fraction."""
        return self.transitions / self.pairs if self.pairs else 0.0

    @property
    def q(self) -> float:
        """Observed transversion fraction."""
        return self.transversions / self.pairs if self.pairs else 0.0

    @property
    def difference_fraction(self) -> float:
        return self.p + self.q


def count_sites(
    target: Sequence,
    query: Sequence,
    alignments: TypingSequence[Alignment],
) -> SiteCounts:
    """Classify every aligned column of the given alignments."""
    pairs = transitions = transversions = 0
    t_codes = target.codes
    for alignment in alignments:
        q_seq = (
            query.reverse_complement()
            if alignment.strand == -1
            else query
        )
        q_codes = q_seq.codes
        ti = alignment.target_start
        qi = alignment.query_start
        for op, length in alignment.cigar:
            if op in ("=", "X"):
                for k in range(length):
                    a = int(t_codes[ti + k])
                    b = int(q_codes[qi + k])
                    if a >= alphabet.NUM_NUCLEOTIDES:
                        continue
                    if b >= alphabet.NUM_NUCLEOTIDES:
                        continue
                    pairs += 1
                    if a != b:
                        if alphabet.is_transition(a, b):
                            transitions += 1
                        else:
                            transversions += 1
                ti += length
                qi += length
            elif op == "D":
                ti += length
            else:
                qi += length
    return SiteCounts(
        pairs=pairs, transitions=transitions, transversions=transversions
    )


def jc69_distance(difference_fraction: float) -> float:
    """Jukes-Cantor distance from the observed difference fraction."""
    if difference_fraction < 0:
        raise ValueError("difference fraction must be non-negative")
    if difference_fraction >= 0.75:
        return math.inf
    return -0.75 * math.log(1.0 - 4.0 * difference_fraction / 3.0)


def k80_distance(p: float, q: float) -> float:
    """Kimura two-parameter distance from transition/transversion
    fractions ``p`` and ``q``."""
    a = 1.0 - 2.0 * p - q
    b = 1.0 - 2.0 * q
    if a <= 0 or b <= 0:
        return math.inf
    return -0.5 * math.log(a) - 0.25 * math.log(b)


def k80_kappa(p: float, q: float) -> float:
    """Estimated transition/transversion rate ratio."""
    a = 1.0 - 2.0 * p - q
    b = 1.0 - 2.0 * q
    if a <= 0 or b <= 0 or q == 0:
        return math.inf
    alpha = -0.5 * math.log(a) + 0.25 * math.log(b)
    beta = -0.25 * math.log(b)
    return alpha / beta if beta else math.inf


def estimate_distance(
    target: Sequence,
    query: Sequence,
    alignments: TypingSequence[Alignment],
    model: str = "k80",
) -> float:
    """Distance (substitutions/site) between two aligned genomes."""
    if model not in ("jc69", "k80"):
        raise ValueError(f"unknown model {model!r}")
    counts = count_sites(target, query, alignments)
    if counts.pairs == 0:
        return math.inf
    if model == "jc69":
        return jc69_distance(counts.difference_fraction)
    return k80_distance(counts.p, counts.q)
