"""Command-line interface for the Darwin-WGA reproduction.

Subcommands mirror a typical WGA workflow::

    repro generate --length 30000 --distance 0.8 --out-dir genomes/
    repro align genomes/target.fa genomes/query.fa --out alignments.maf
    repro align --aligner lastz genomes/target.fa genomes/query.fa
    repro chain alignments.maf genomes/target.fa genomes/query.fa
    repro model --filter-tiles 14585000000 --extension-tiles 4400000

``repro model`` runs the hardware cost model directly on a workload
description and prints the Table V-style numbers.

Observability: ``align`` and ``chain`` accept ``--trace-out PATH`` to
record per-stage spans into a structured JSON run report, and ``repro
trace PATH`` renders a saved report (``--chrome OUT`` converts it to a
Chrome ``trace_event`` file for chrome://tracing or Perfetto).  Both
commands render a live status line on a TTY (``--progress`` /
``--no-progress`` override the auto-detection); ``align --profile DIR``
captures cProfile data for the parent and every worker; ``repro bench
check`` gates a fresh ``BENCH_PIPELINE.json`` against the committed
baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from .analysis.app import add_lint_arguments, run_lint
from .chain import GapCosts, build_chains, top_chain_scores, total_matches
from .core import DarwinWGA, DarwinWGAConfig, Workload, align_assemblies
from .genome import make_species_pair, read_fasta, write_fasta
from .hw import CostModel, asic_estimate
from .io import write_assembly_maf, write_chains, write_maf
from .lastz import LastzAligner
from .obs import (
    NO_PROGRESS,
    NULL_TRACER,
    ProgressRenderer,
    TelemetryOptions,
    Tracer,
    compare_artifacts,
    load_artifact,
    load_run_report,
    profile_capture,
    render_run,
    write_chrome_trace,
    write_run_report,
)
from .obs.gate import render_gate
from .resilience import FaultPlan, ResilienceOptions, RetryPolicy


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="generate a synthetic species pair"
    )
    parser.add_argument("--length", type=int, default=30_000)
    parser.add_argument(
        "--distance",
        type=float,
        default=0.6,
        help="substitutions/site separating the two species",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--exons", type=int, default=10)
    parser.add_argument(
        "--alignable-fraction",
        type=float,
        default=0.35,
        help="fraction of the genome in conserved islands",
    )
    parser.add_argument(
        "--chromosomes",
        type=int,
        default=1,
        help="chromosomes per species (--length is per chromosome); "
        "values > 1 write multi-record FASTAs for assembly alignment",
    )
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.set_defaults(func=_cmd_generate)


def _cmd_generate(args) -> int:
    if args.chromosomes < 1:
        raise SystemExit("--chromosomes must be at least 1")
    rng = np.random.default_rng(args.seed)
    targets = []
    queries = []
    exon_records = []
    for number in range(1, args.chromosomes + 1):
        single = args.chromosomes == 1
        pair = make_species_pair(
            args.length,
            args.distance,
            rng,
            exon_count=args.exons,
            alignable_fraction=args.alignable_fraction,
            target_name="target" if single else f"target_chr{number}",
            query_name="query" if single else f"query_chr{number}",
        )
        targets.append(pair.target.genome)
        queries.append(pair.query.genome)
        for exon in pair.target.exons:
            exon_records.append((pair.target.genome.name, exon))
    args.out_dir.mkdir(parents=True, exist_ok=True)
    target_path = args.out_dir / "target.fa"
    query_path = args.out_dir / "query.fa"
    write_fasta(targets, target_path)
    write_fasta(queries, query_path)
    target_bp = sum(len(seq) for seq in targets)
    query_bp = sum(len(seq) for seq in queries)
    print(f"wrote {target_path} ({target_bp:,} bp, {len(targets)} records)")
    print(f"wrote {query_path} ({query_bp:,} bp, {len(queries)} records)")
    if exon_records:
        bed = args.out_dir / "target_exons.bed"
        with open(bed, "w") as handle:
            for name, exon in exon_records:
                handle.write(
                    f"{name}\t{exon.start}\t{exon.end}\t{exon.name}\n"
                )
        print(f"wrote {bed} ({len(exon_records)} exons)")
    return 0


def _add_align(subparsers) -> None:
    parser = subparsers.add_parser(
        "align", help="whole genome alignment of two FASTA files"
    )
    parser.add_argument("target", type=Path)
    parser.add_argument("query", type=Path)
    parser.add_argument(
        "--aligner",
        choices=("darwin", "lastz"),
        default="darwin",
        help="gapped (Darwin-WGA) or ungapped (LASTZ-like) filtering",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--plus-only", action="store_true")
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a structured JSON trace of the run (see `repro trace`)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the extension stage "
        "(output is byte-identical for any value)",
    )
    parser.add_argument(
        "--no-streaming",
        dest="streaming",
        action="store_false",
        default=None,
        help="run parallel strand extension as barrier phases instead "
        "of the streamed seed->filter->extend dataflow (A/B lever; "
        "output is byte-identical either way)",
    )
    parser.add_argument(
        "--index-cache",
        type=Path,
        default=None,
        help="directory for the persistent seed-index cache",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="journal completed chromosome-pair units to this manifest",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip units already journaled in --checkpoint (after "
        "verifying it matches this run's inputs and configuration)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SEED[:kind=rate,...]",
        default=None,
        help="deterministic chaos testing: seeded schedule of worker "
        "crashes / task errors / timeouts / cache corruption "
        "(output stays byte-identical; see repro.resilience)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-dispatches per work unit before serial in-process "
        "fallback",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-attempt deadline in seconds for dispatched work units",
    )
    _add_progress_flags(parser)
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="DIR",
        help="write cProfile captures (parent + every worker) into DIR",
    )
    parser.set_defaults(func=_cmd_align)


def _add_progress_flags(parser) -> None:
    parser.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        default=None,
        help="force the live status line on (default: on when stderr "
        "is a terminal)",
    )
    parser.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="disable the live status line",
    )


def _progress_from_args(args):
    """Resolve the --progress tri-state to a progress sink."""
    if args.progress is False:
        return NO_PROGRESS
    renderer = ProgressRenderer(enabled=args.progress)
    return renderer if renderer.enabled else NO_PROGRESS


def _print_telemetry(summary) -> None:
    bus = summary.get("bus") if summary else None
    if not bus:
        return
    print(
        f"telemetry: {bus['events']:,} events from "
        f"{bus['workers']} workers; "
        f"{bus['dropped_events']} dropped, "
        f"{bus['lost_events']} lost, "
        f"{bus['gap_events']} gaps"
    )


def _load_single(path: Path):
    records = read_fasta(path)
    if not records:
        raise SystemExit(f"{path}: no FASTA records")
    if len(records) > 1:
        print(
            f"warning: {path} has {len(records)} records; using the first",
            file=sys.stderr,
        )
    return records[0]


def _load_records(path: Path):
    records = read_fasta(path)
    if not records:
        raise SystemExit(f"{path}: no FASTA records")
    return records


def _resilience_from_args(args) -> ResilienceOptions:
    if args.max_retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    plan = None
    if args.inject_faults is not None:
        try:
            plan = FaultPlan.parse(args.inject_faults)
        except ValueError as error:
            raise SystemExit(str(error))
    return ResilienceOptions(
        policy=RetryPolicy(
            max_retries=args.max_retries, timeout=args.task_timeout
        ),
        fault_plan=plan,
    )


def _print_recovery(stats) -> None:
    if not stats.recovered and not stats.injected_faults:
        return
    injected = (
        ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(stats.injected_faults.items())
        )
        or "none"
    )
    print(
        f"recovery: {stats.retries} retries, "
        f"{stats.timeouts} timeouts, "
        f"{stats.pool_rebuilds} pool rebuilds, "
        f"{stats.serial_fallbacks} serial fallbacks, "
        f"{stats.quarantined_entries} quarantined cache entries, "
        f"{stats.resumed_units} resumed / "
        f"{stats.journaled_units} journaled units; "
        f"injected: {injected}"
    )


def _print_stream(summary) -> None:
    if not summary:
        return
    print(
        f"stream: occupancy {summary['occupancy']:.3f}, "
        f"idle tail {summary['idle_tail_seconds']:.3f}s, "
        f"peak in-flight {summary['peak_in_flight']}, "
        f"{summary['backpressure_stalls']} backpressure stalls, "
        f"{summary['dispatched_tasks']} dispatched / "
        f"{summary['collected_tasks']} collected tasks"
    )


def _cmd_align(args) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint")
    targets = _load_records(args.target)
    queries = _load_records(args.query)
    tracer = Tracer() if args.trace_out is not None else NULL_TRACER
    resilience = _resilience_from_args(args)
    progress = _progress_from_args(args)
    telemetry = TelemetryOptions(progress=progress, profile_dir=args.profile)
    if args.workers > 1:
        from .parallel import install_signal_cleanup

        install_signal_cleanup()
    if args.aligner == "darwin":
        config = DarwinWGAConfig(both_strands=not args.plus_only)
        aligner_class = DarwinWGA
    else:
        from .lastz import LastzConfig

        config = LastzConfig(both_strands=not args.plus_only)
        aligner_class = LastzAligner
    assembly_mode = (
        len(targets) > 1 or len(queries) > 1 or args.checkpoint is not None
    )
    if args.profile is not None:
        args.profile.mkdir(parents=True, exist_ok=True)
        capture = profile_capture(args.profile / "profile-main.pstats")
    else:
        capture = nullcontext()
    with capture:
        if assembly_mode:
            progress.begin("align", total=len(targets) * len(queries))
            result = align_assemblies(
                targets,
                queries,
                config=config,
                aligner_class=aligner_class,
                tracer=tracer,
                workers=args.workers,
                index_cache=args.index_cache,
                checkpoint=args.checkpoint,
                resume=args.resume,
                resilience=resilience,
                telemetry=telemetry,
            )
        else:
            progress.begin("align", total=1)
            aligner = aligner_class(
                config,
                tracer=tracer,
                workers=args.workers,
                index_cache=args.index_cache,
                resilience=resilience,
                telemetry=telemetry,
                streaming=args.streaming,
            )
            with aligner:
                result = aligner.align(targets[0], queries[0])
            progress.advance(units=1)
            _print_stream(aligner.last_stream)
    telemetry_summary = telemetry.finish()
    telemetry.close()
    progress.close()
    workload = result.workload
    print(
        f"{len(result.alignments)} alignments "
        f"({result.total_matches:,} matched bp); "
        f"workload: {workload.seed_hits:,} seed hits, "
        f"{workload.filter_tiles:,} filter tiles, "
        f"{workload.extension_tiles:,} extension tiles"
    )
    _print_recovery(resilience.stats)
    _print_telemetry(telemetry_summary)
    if args.profile is not None:
        print(f"wrote profiles to {args.profile}")
    if args.out is not None:
        if assembly_mode:
            write_assembly_maf(result.alignments, targets, queries, args.out)
        else:
            write_maf(result.alignments, targets[0], queries[0], args.out)
        print(f"wrote {args.out}")
    if args.trace_out is not None:
        write_run_report(
            args.trace_out,
            tracer,
            result=result,
            meta={
                "command": "align",
                "aligner": args.aligner,
                "target": str(args.target),
                "query": str(args.query),
                "resilience": resilience.stats.as_dict(),
            },
            telemetry=telemetry_summary,
        )
        print(f"wrote trace {args.trace_out}")
    return 0


def _add_chain(subparsers) -> None:
    parser = subparsers.add_parser(
        "chain", help="chain a MAF into UCSC chains (axtChain-like)"
    )
    parser.add_argument("maf", type=Path)
    parser.add_argument("target", type=Path)
    parser.add_argument("query", type=Path)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--linear-gap", choices=("loose", "medium"), default="loose"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a structured JSON trace of the run (see `repro trace`)",
    )
    _add_progress_flags(parser)
    parser.set_defaults(func=_cmd_chain)


def _cmd_chain(args) -> int:
    from .io import read_maf

    alignments = read_maf(args.maf)
    target = _load_single(args.target)
    query = _load_single(args.query)
    gap_costs = (
        GapCosts.loose() if args.linear_gap == "loose" else GapCosts.medium()
    )
    tracer = Tracer() if args.trace_out is not None else NULL_TRACER
    progress = _progress_from_args(args)
    progress.begin("chain")
    chains = build_chains(
        alignments, gap_costs, tracer=tracer, progress=progress
    )
    progress.close()
    if args.trace_out is not None:
        write_run_report(
            args.trace_out,
            tracer,
            meta={
                "command": "chain",
                "maf": str(args.maf),
                "linear_gap": args.linear_gap,
            },
        )
        print(f"wrote trace {args.trace_out}")
    print(
        f"{len(chains)} chains, {total_matches(chains):,} matched bp; "
        f"top-10 scores: "
        f"{[round(s) for s in top_chain_scores(chains, 10)]}"
    )
    if args.out is not None:
        write_chains(
            chains,
            target.name or "target",
            len(target),
            query.name or "query",
            len(query),
            args.out,
        )
        print(f"wrote {args.out}")
    return 0


def _add_model(subparsers) -> None:
    parser = subparsers.add_parser(
        "model", help="run the hardware cost model on a workload"
    )
    parser.add_argument("--seed-hits", type=int, default=1_362_000_000)
    parser.add_argument(
        "--filter-tiles", type=int, default=14_585_000_000
    )
    parser.add_argument("--extension-tiles", type=int, default=4_400_000)
    parser.add_argument(
        "--asic-table", action="store_true", help="print Table IV"
    )
    parser.set_defaults(func=_cmd_model)


def _cmd_model(args) -> int:
    workload = Workload(
        seed_hits=args.seed_hits,
        filter_tiles=args.filter_tiles,
        filter_cells=args.filter_tiles * 320 * 65,
        extension_tiles=args.extension_tiles,
    )
    model = CostModel.default()
    iso = model.iso_software_runtime(workload)
    fpga = model.fpga_runtime(workload)
    asic = model.asic_runtime(workload)
    print(f"iso-sensitive software : {iso:,.0f} s")
    print(
        f"Darwin-WGA FPGA        : {fpga.total:,.0f} s "
        f"(seed {fpga.seeding:,.0f} / filter {fpga.filtering:,.0f} / "
        f"extend {fpga.extension:,.0f})"
    )
    print(f"Darwin-WGA ASIC        : {asic.total:,.0f} s")
    print(
        f"FPGA performance/$     : "
        f"{model.fpga_perf_per_dollar_improvement(workload):.1f}x"
    )
    print(
        f"ASIC performance/W     : "
        f"{model.asic_perf_per_watt_improvement(workload):.0f}x"
    )
    if args.asic_table:
        print()
        print(asic_estimate().table())
    return 0


def _add_mask(subparsers) -> None:
    parser = subparsers.add_parser(
        "mask", help="soft-mask repeats/low-complexity in a FASTA"
    )
    parser.add_argument("fasta", type=Path)
    parser.add_argument("--out", type=Path, required=True)
    parser.add_argument(
        "--method", choices=("entropy", "frequency"), default="frequency"
    )
    parser.add_argument("--word-length", type=int, default=12)
    parser.add_argument("--threshold-multiple", type=float, default=50.0)
    parser.set_defaults(func=_cmd_mask)


def _cmd_mask(args) -> int:
    from .genome import (
        apply_soft_mask,
        entropy_mask,
        frequency_mask,
        mask_stats,
        read_fasta,
    )

    masked = []
    for record in read_fasta(args.fasta):
        if args.method == "entropy":
            mask = entropy_mask(record)
        else:
            mask = frequency_mask(
                record,
                word_length=args.word_length,
                threshold_multiple=args.threshold_multiple,
            )
        stats = mask_stats(mask)
        print(
            f"{record.name}: {stats.fraction:.2%} masked "
            f"({len(stats.intervals)} intervals)"
        )
        masked.append(apply_soft_mask(record, mask))
    write_fasta(masked, args.out)
    print(f"wrote {args.out}")
    return 0


def _add_net(subparsers) -> None:
    parser = subparsers.add_parser(
        "net", help="net chains over the target (chainNet-like)"
    )
    parser.add_argument("maf", type=Path)
    parser.add_argument("target", type=Path)
    parser.add_argument("query", type=Path)
    parser.add_argument("--min-span", type=int, default=25)
    parser.set_defaults(func=_cmd_net)


def _cmd_net(args) -> int:
    from .chain import build_net
    from .io import read_maf

    alignments = read_maf(args.maf)
    target = _load_single(args.target)
    chains = build_chains(alignments)
    net = build_net(chains, len(target), min_span=args.min_span)
    print(
        f"{len(net.entries)} top-level entries, "
        f"{len(net.all_entries())} total, "
        f"fill {net.fill_fraction():.1%} of target"
    )
    for entry in net.all_entries():
        indent = "  " * (entry.level - 1)
        print(
            f"{indent}level {entry.level}: "
            f"[{entry.target_start:,}, {entry.target_end:,}) "
            f"score={entry.chain.score:,.0f}"
        )
    return 0


def _add_tblastx(subparsers) -> None:
    parser = subparsers.add_parser(
        "tblastx",
        help="translated homology search between two FASTA files",
    )
    parser.add_argument("target", type=Path)
    parser.add_argument("query", type=Path)
    parser.add_argument("--threshold", type=int, default=60)
    parser.add_argument("--max-hits", type=int, default=20)
    parser.set_defaults(func=_cmd_tblastx)


def _cmd_tblastx(args) -> int:
    from .annotate import TblastxParams, translated_search

    target = _load_single(args.target)
    query = _load_single(args.query)
    hits = translated_search(
        target,
        query,
        TblastxParams(threshold=args.threshold),
        max_hits=args.max_hits,
    )
    print(f"{len(hits)} translated hits (threshold {args.threshold})")
    for hit in hits:
        print(
            f"  score={hit.score:>5} "
            f"target[{hit.target_start:,}, {hit.target_end:,}) "
            f"frame {hit.target_frame} <-> "
            f"query[{hit.query_start:,}, {hit.query_end:,}) "
            f"frame {hit.query_frame}"
        )
    return 0


def _add_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="benchmark-artifact utilities (perf-regression gating)",
    )
    bench_sub = parser.add_subparsers(dest="bench_command", required=True)
    check = bench_sub.add_parser(
        "check",
        help="compare a fresh benchmark artifact against the committed "
        "baseline with per-metric tolerance bands",
    )
    check.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_PIPELINE.json"),
        help="freshly generated benchmark artifact",
    )
    check.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baseline.json"),
        help="committed baseline artifact",
    )
    check.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.5,
        help="allowed fractional wall-time slowdown per stage",
    )
    check.add_argument(
        "--rate-tolerance",
        type=float,
        default=0.4,
        help="allowed fractional throughput drop per stage rate",
    )
    check.add_argument(
        "--warn-only",
        action="store_true",
        help="report failures but exit 0 (for noisy shared runners)",
    )
    check.add_argument(
        "--json",
        dest="json_out",
        type=Path,
        default=None,
        help="also write the machine-readable verdict to this path",
    )
    check.add_argument(
        "--verbose",
        action="store_true",
        help="print passing checks too, not just failures",
    )
    check.set_defaults(func=_cmd_bench_check)


def _cmd_bench_check(args) -> int:
    try:
        current = load_artifact(args.current)
    except (OSError, ValueError) as error:
        raise SystemExit(f"{args.current}: {error}")
    try:
        baseline = load_artifact(args.baseline)
    except (OSError, ValueError) as error:
        raise SystemExit(f"{args.baseline}: {error}")
    result = compare_artifacts(
        current,
        baseline,
        wall_tolerance=args.wall_tolerance,
        rate_tolerance=args.rate_tolerance,
    )
    print(render_gate(result, verbose=args.verbose))
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(result.as_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json_out}")
    if result.verdict == "fail" and not args.warn_only:
        return 1
    return 0


def _add_lint(subparsers) -> None:
    parser = subparsers.add_parser(
        "lint",
        help="project-specific static analysis (determinism / layering "
        "/ kernel invariants)",
    )
    add_lint_arguments(parser)
    parser.set_defaults(func=run_lint)


def _add_trace(subparsers) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="inspect or convert a JSON run trace (from --trace-out)",
    )
    parser.add_argument("report", type=Path)
    parser.add_argument(
        "--chrome",
        type=Path,
        default=None,
        help="also write a Chrome trace_event file "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--max-spans",
        type=int,
        default=200,
        help="span-tree lines to print before truncating",
    )
    parser.set_defaults(func=_cmd_trace)


def _cmd_trace(args) -> int:
    report = load_run_report(args.report)
    meta = report.get("meta", {})
    if meta:
        print(
            "meta: "
            + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )
        print()
    print(render_run(report, max_spans=args.max_spans))
    if args.chrome is not None:
        write_chrome_trace(args.chrome, report)
        print(f"\nwrote Chrome trace {args.chrome}")
    return 0


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the alignment service daemon (crash-safe job queue)",
    )
    parser.add_argument(
        "state_dir",
        type=Path,
        help="service state directory (job journal, per-job "
        "checkpoints and outputs); restart with the same directory "
        "to resume journaled work",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8753,
        help="listen port (0 binds an ephemeral port; see --port-file)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes shared by every job "
        "(output is byte-identical for any value)",
    )
    parser.add_argument(
        "--index-cache",
        type=Path,
        default=None,
        help="persistent seed-index cache directory shared across jobs",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=16,
        help="bounded admission: jobs beyond this are shed with "
        "HTTP 429 + Retry-After",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="workers publish liveness beats at this interval; the "
        "sentinel escalates workers silent past the deadline",
    )
    parser.add_argument(
        "--heartbeat-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="silence that marks a worker hung "
        "(default: 4x the heartbeat interval)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-dispatches per work unit before serial fallback",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-attempt deadline in seconds for dispatched work units",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SEED[:kind=rate,...]",
        default=None,
        help="deterministic chaos testing, including kind `hang` "
        "(see repro.resilience)",
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (CI rendezvous)",
    )
    parser.set_defaults(func=_cmd_serve)


def _cmd_serve(args) -> int:
    from .service import ServeConfig, ServeDaemon

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.max_queued < 1:
        raise SystemExit("--max-queued must be at least 1")
    if args.inject_faults is not None:
        try:
            FaultPlan.parse(args.inject_faults)
        except ValueError as error:
            raise SystemExit(str(error))
    config = ServeConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        index_cache=args.index_cache,
        max_queued=args.max_queued,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_deadline=args.heartbeat_deadline,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        inject_faults=args.inject_faults,
        port_file=args.port_file,
    )
    daemon = ServeDaemon(config, log=print)
    return daemon.serve_forever()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Darwin-WGA reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_align(subparsers)
    _add_chain(subparsers)
    _add_model(subparsers)
    _add_mask(subparsers)
    _add_net(subparsers)
    _add_tblastx(subparsers)
    _add_trace(subparsers)
    _add_bench(subparsers)
    _add_lint(subparsers)
    _add_serve(subparsers)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
