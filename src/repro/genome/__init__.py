"""Genome substrate: sequences, I/O, synthesis, evolution, shuffles."""

from . import alphabet
from .assembly import Assembly, split_into_chromosomes
from .masking import (
    MaskStats,
    apply_soft_mask,
    entropy_mask,
    frequency_mask,
    mask_intervals,
    mask_stats,
)
from .evolution import (
    sample_islands,
    EvolutionParams,
    Interval,
    Lineage,
    SpeciesPair,
    evolve,
    k80_difference_probabilities,
    make_species_pair,
    plant_exons,
)
from .fasta import fasta_string, iter_fasta, read_fasta, write_fasta
from .sequence import Sequence
from .shuffle import kmer_counts, shuffle_preserving_kmers
from .synthesis import (
    DEFAULT_DINUCLEOTIDE_MODEL,
    dinucleotide_counts,
    markov_genome,
    plant_repeats,
    uniform_genome,
)

__all__ = [
    "alphabet",
    "Assembly",
    "split_into_chromosomes",
    "MaskStats",
    "apply_soft_mask",
    "entropy_mask",
    "frequency_mask",
    "mask_intervals",
    "mask_stats",
    "Sequence",
    "EvolutionParams",
    "Interval",
    "Lineage",
    "SpeciesPair",
    "evolve",
    "k80_difference_probabilities",
    "make_species_pair",
    "plant_exons",
    "sample_islands",
    "fasta_string",
    "iter_fasta",
    "read_fasta",
    "write_fasta",
    "kmer_counts",
    "shuffle_preserving_kmers",
    "DEFAULT_DINUCLEOTIDE_MODEL",
    "dinucleotide_counts",
    "markov_genome",
    "plant_repeats",
    "uniform_genome",
]
