"""Repeat and low-complexity masking.

Whole genome aligners mask repetitive sequence before seeding: tandem and
interspersed repeats otherwise flood the seed table with false hits (the
paper's section III-A notes the high false-positive seed rate).  This
module provides two standard maskers:

* **entropy masking** (DUST-like): windows whose k-mer entropy falls
  below a threshold are low-complexity;
* **frequency masking** (WindowMasker-like): positions whose seed word
  occurs more often than a multiple of the genome-wide expectation.

Masks are boolean arrays; :func:`apply_soft_mask` produces a sequence
with masked positions replaced by ``N`` so they can never seed (LASTZ's
hard-masking mode), while the D-SOFT seeding layer can alternatively
consult the mask directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from . import alphabet
from .sequence import Sequence
from .shuffle import kmer_counts


@dataclass(frozen=True)
class MaskStats:
    """Summary of a masking pass."""

    masked_bases: int
    total_bases: int
    intervals: Tuple[Tuple[int, int], ...]

    @property
    def fraction(self) -> float:
        return (
            self.masked_bases / self.total_bases if self.total_bases else 0.0
        )


def window_entropy(seq: Sequence, window: int, k: int = 2) -> np.ndarray:
    """Per-window k-mer Shannon entropy (bits), one value per window
    start position."""
    if window <= k:
        raise ValueError("window must exceed k")
    codes = seq.codes
    n = len(seq) - window + 1
    if n <= 0:
        return np.empty(0)
    entropies = np.empty(n)
    # Sliding entropy via incremental counts would be exact; a strided
    # recomputation every ``stride`` positions is enough for masking.
    for start in range(n):
        counts = kmer_counts(
            Sequence(codes[start : start + window]), k
        ).astype(float)
        total = counts.sum()
        if total == 0:
            entropies[start] = 0.0
            continue
        p = counts[counts > 0] / total
        entropies[start] = float(-(p * np.log2(p)).sum())
    return entropies


def entropy_mask(
    seq: Sequence,
    window: int = 32,
    k: int = 2,
    min_entropy: float = 2.2,
    stride: int = 8,
) -> np.ndarray:
    """Boolean mask of low-complexity positions (DUST-like).

    Windows are evaluated every ``stride`` positions; a window below
    ``min_entropy`` bits masks its whole span.
    """
    codes = seq.codes
    mask = np.zeros(len(seq), dtype=bool)
    if len(seq) < window:
        return mask
    for start in range(0, len(seq) - window + 1, stride):
        counts = kmer_counts(
            Sequence(codes[start : start + window]), k
        ).astype(float)
        total = counts.sum()
        if total == 0:
            continue
        p = counts[counts > 0] / total
        entropy = float(-(p * np.log2(p)).sum())
        if entropy < min_entropy:
            mask[start : start + window] = True
    return mask


def frequency_mask(
    seq: Sequence,
    word_length: int = 12,
    threshold_multiple: float = 50.0,
) -> np.ndarray:
    """Boolean mask of over-represented words (WindowMasker-like).

    A position is masked when the ``word_length``-mer starting there
    occurs more than ``threshold_multiple`` times its uniform-random
    expectation in the sequence.
    """
    codes = seq.codes.astype(np.int64)
    n = len(seq) - word_length + 1
    mask = np.zeros(len(seq), dtype=bool)
    if n <= 0:
        return mask
    weights = np.int64(4) ** np.arange(
        word_length - 1, -1, -1, dtype=np.int64
    )
    windows = np.lib.stride_tricks.sliding_window_view(codes, word_length)
    valid = (windows < alphabet.NUM_NUCLEOTIDES).all(axis=1)
    words = (windows & 3) @ weights
    unique, inverse, counts = np.unique(
        words[valid], return_inverse=True, return_counts=True
    )
    occurrences = np.zeros(words.size, dtype=np.int64)
    occurrences[valid] = counts[inverse]
    expected = max(n / 4.0**word_length, 1e-9)
    limit = max(threshold_multiple * expected, 2.0)
    for pos in np.flatnonzero(occurrences > limit):
        mask[pos : pos + word_length] = True
    return mask


def mask_intervals(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal runs of True in a boolean mask, as half-open intervals."""
    if mask.size == 0:
        return []
    padded = np.concatenate([[False], mask, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    return list(zip(changes[::2].tolist(), changes[1::2].tolist()))


def apply_soft_mask(seq: Sequence, mask: np.ndarray) -> Sequence:
    """Replace masked positions with ``N`` (they can no longer seed)."""
    if mask.shape != (len(seq),):
        raise ValueError("mask length must equal sequence length")
    codes = seq.codes.copy()
    codes[mask] = alphabet.N
    return Sequence(codes, name=seq.name)


def mask_stats(mask: np.ndarray) -> MaskStats:
    return MaskStats(
        masked_bases=int(mask.sum()),
        total_bases=int(mask.size),
        intervals=tuple(mask_intervals(mask)),
    )
