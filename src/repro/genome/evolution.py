"""Molecular-evolution simulator producing species pairs at known distances.

The paper evaluates on genome pairs spanning a range of phylogenetic
distances (Figure 8: ce11-cb4 at ~1.32 substitutions/site down to
dm6-droSim1 at ~0.11).  Real assemblies are unavailable offline, so this
module evolves a common ancestor into two descendant genomes under an
explicit model:

* **Substitutions** follow Kimura's two-parameter (K80) model with a
  transition/transversion bias, so transition-tolerant seeds (Figure 5)
  have the signal they exploit in real genomes.
* **Indels** occur at a per-site rate with a short-geometric /
  long-exponential length mixture; their density relative to substitutions
  grows with divergence, which is exactly the effect behind the paper's
  Figure 2 (mean ungapped block length shrinks from ~641 bp for close pairs
  to ~31 bp for distant ones) and the motivation for gapped filtering.
* **Structural events** — segmental duplications (creating paralogs) and
  inversions — model the large-scale changes GACT-X must align across.
* **Planted exons** are conserved intervals evolving at a reduced rate with
  no indels, standing in for the Ensembl protein-coding exons used in the
  paper's TBLASTX sensitivity metric.  Their coordinates are tracked
  through every edit, giving exact orthology ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from . import alphabet
from .sequence import Sequence
from .synthesis import markov_genome


@dataclass(frozen=True)
class Interval:
    """A half-open annotated interval ``[start, end)`` on a genome."""

    start: int
    end: int
    name: str = ""
    strand: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval end before start")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def shifted(self, offset: int) -> "Interval":
        return replace(self, start=self.start + offset, end=self.end + offset)


@dataclass(frozen=True)
class EvolutionParams:
    """Parameters of one lineage's evolution (a single tree branch).

    ``distance`` is the expected number of substitutions per neutral site
    on this branch.  The indel rate is tied to the substitution distance by
    ``indel_per_substitution`` so that more divergent pairs have denser
    indels, matching the trend in the paper's Figure 2.
    """

    distance: float
    kappa: float = 2.0
    indel_per_substitution: float = 0.06
    indel_extend: float = 0.7
    long_indel_prob: float = 0.05
    long_indel_mean: float = 80.0
    max_indel_length: int = 400
    inversion_count: int = 0
    inversion_length: int = 2000
    duplication_count: int = 0
    duplication_length: int = 1500
    conserved_multiplier: float = 0.15
    #: Rate of codon-aligned indels *inside* exons (events per site per
    #: substitution distance).  Real protein-coding exons accumulate
    #: frame-preserving (length % 3 == 0) indels; these are exactly what
    #: defeats ungapped filtering around exonic seed hits in the paper's
    #: Figure 9 while TBLASTX still confirms protein-level orthology.
    exon_indel_per_substitution: float = 0.0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError("distance must be non-negative")
        if self.kappa <= 0:
            raise ValueError("kappa must be positive")
        if not 0 <= self.indel_extend < 1:
            raise ValueError("indel_extend must lie in [0, 1)")


@dataclass
class Lineage:
    """A descendant genome plus the surviving annotation coordinates."""

    genome: Sequence
    exons: List[Interval] = field(default_factory=list)
    paralogs: List[Interval] = field(default_factory=list)
    islands: List[Interval] = field(default_factory=list)


@dataclass
class SpeciesPair:
    """Two genomes evolved from a shared ancestor.

    ``distance`` is the total expected substitutions/site separating the two
    species (the sum of both branch lengths), the same quantity the paper
    reports from PHAST in Figure 8.
    """

    target: Lineage
    query: Lineage
    ancestor: Sequence
    ancestor_exons: List[Interval]
    distance: float


def k80_difference_probabilities(
    distance: float, kappa: float
) -> Tuple[float, float]:
    """Return ``(P, Q)``: transition and total transversion difference
    probabilities after evolving for ``distance`` substitutions/site under
    K80 with transition/transversion rate ratio ``kappa``.
    """
    if distance == 0:
        return 0.0, 0.0
    beta_t = distance / (kappa + 2.0)
    alpha_t = kappa * beta_t
    p = (
        0.25
        + 0.25 * np.exp(-4.0 * beta_t)
        - 0.5 * np.exp(-2.0 * (alpha_t + beta_t))
    )
    q = 0.5 - 0.5 * np.exp(-4.0 * beta_t)
    return float(p), float(q)


def _apply_substitutions(
    codes: np.ndarray,
    class_distances: List[Tuple[np.ndarray, float]],
    params: EvolutionParams,
    rng: np.random.Generator,
) -> np.ndarray:
    """Substitute bases in place according to K80; returns the same array.

    ``class_distances`` pairs a boolean site mask with the substitution
    distance applying to those sites (rate heterogeneity: conserved exons,
    alignable islands, saturated background).
    """
    for mask, distance in class_distances:
        p, q = k80_difference_probabilities(distance, params.kappa)
        sites = np.flatnonzero(mask & (codes < alphabet.NUM_NUCLEOTIDES))
        if sites.size == 0:
            continue
        u = rng.random(sites.size)
        transition_sites = sites[u < p]
        tv1 = sites[(u >= p) & (u < p + q / 2)]
        tv2 = sites[(u >= p + q / 2) & (u < p + q)]
        # codes 0..3 are laid out so that ^2 is the transition partner and
        # ^1 / ^3 are the two transversions (see repro.genome.alphabet).
        codes[transition_sites] ^= 2
        codes[tv1] ^= 1
        codes[tv2] ^= 3
    return codes


def _sample_indel_length(
    params: EvolutionParams, rng: np.random.Generator
) -> int:
    if rng.random() < params.long_indel_prob:
        length = int(rng.exponential(params.long_indel_mean)) + 1
    else:
        length = int(rng.geometric(1.0 - params.indel_extend))
    return min(max(1, length), params.max_indel_length)


def _exon_mask(length: int, exons: List[Interval]) -> np.ndarray:
    mask = np.zeros(length, dtype=bool)
    for exon in exons:
        mask[exon.start : exon.end] = True
    return mask


def _find_clear_position(
    length: int,
    span: int,
    exons: List[Interval],
    rng: np.random.Generator,
    attempts: int = 50,
) -> Optional[int]:
    """Pick a start so that ``[start, start+span)`` avoids every exon."""
    if span >= length:
        return None
    for _ in range(attempts):
        start = int(rng.integers(length - span))
        probe = Interval(start, start + span)
        if not any(probe.overlaps(e) for e in exons):
            return start
    return None


def _apply_indels(
    codes: np.ndarray,
    exons: List[Interval],
    islands: List[Interval],
    params: EvolutionParams,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, List[Interval], List[Interval]]:
    """Apply indel events outside exons, tracking annotation coordinates.

    Exons exclude indels entirely (purifying selection); islands may
    contain indels, and their boundaries are remapped through the edits.
    """
    length = codes.size
    expected = params.distance * params.indel_per_substitution * length
    n_events = rng.poisson(expected) if expected > 0 else 0
    if n_events == 0 and not (
        params.exon_indel_per_substitution > 0 and exons
    ):
        return codes, list(exons), list(islands)

    events = []  # (position, deleted_len, inserted_codes)
    occupied = sorted(exons, key=lambda e: e.start)
    claimed: List[Interval] = list(occupied)

    # Codon-aligned indels inside exons (frame-preserving).
    if params.exon_indel_per_substitution > 0:
        for exon in exons:
            rate = (
                params.distance
                * params.exon_indel_per_substitution
                * exon.length
            )
            exon_claimed: List[Interval] = []
            for _ in range(rng.poisson(rate)):
                size = 3 * int(rng.geometric(0.6))
                margin = 3
                if exon.length < size + 2 * margin + 3:
                    continue
                lo = exon.start + margin
                hi = exon.end - margin - size
                if hi <= lo:
                    continue
                start = lo + 3 * int(rng.integers((hi - lo) // 3 + 1))
                probe = Interval(start, start + max(size, 1))
                if any(probe.overlaps(c) for c in exon_claimed):
                    continue
                exon_claimed.append(probe)
                if rng.random() < 0.5:
                    events.append((start, size, None))
                else:
                    inserted = rng.integers(
                        alphabet.NUM_NUCLEOTIDES, size=size, dtype=np.uint8
                    )
                    events.append((start, 0, inserted))

    for _ in range(n_events):
        size = _sample_indel_length(params, rng)
        if rng.random() < 0.5:
            # Deletion: the deleted span must not touch an exon or another
            # pending deletion, to keep coordinate tracking exact.
            start = _find_clear_position(length, size, claimed, rng)
            if start is None:
                continue
            claimed.append(Interval(start, start + size))
            events.append((start, size, None))
        else:
            start = _find_clear_position(length, 1, claimed, rng)
            if start is None:
                continue
            inserted = rng.integers(
                alphabet.NUM_NUCLEOTIDES, size=size, dtype=np.uint8
            )
            # Claim the insertion point too, so a later deletion cannot
            # span it (which would corrupt the coordinate mapping).
            claimed.append(Interval(start, start + 1))
            events.append((start, 0, inserted))

    events.sort(key=lambda ev: ev[0])
    pieces: List[np.ndarray] = []
    breakpoints: List[Tuple[int, int]] = []  # (ancestor_pos, cumulative shift)
    cursor = 0
    shift = 0
    for position, deleted, inserted in events:
        if position < cursor:
            raise AssertionError(
                "indel events overlap; coordinate tracking would corrupt"
            )
        pieces.append(codes[cursor:position])
        if inserted is None:
            cursor = position + deleted
            shift -= deleted
        else:
            pieces.append(inserted)
            cursor = position
            shift += len(inserted)
        breakpoints.append((position, shift))
    pieces.append(codes[cursor:])
    new_codes = np.concatenate(pieces)

    positions = np.array([b[0] for b in breakpoints])
    shifts = np.array([b[1] for b in breakpoints])

    total = int(new_codes.size)

    def map_coord(pos: int) -> int:
        idx = np.searchsorted(positions, pos, side="right") - 1
        mapped = pos + (int(shifts[idx]) if idx >= 0 else 0)
        return min(max(mapped, 0), total)

    new_exons = [
        replace(e, start=map_coord(e.start), end=map_coord(e.end - 1) + 1)
        for e in exons
    ]
    new_islands = []
    for island in islands:
        start = map_coord(island.start)
        end = max(start, map_coord(island.end))
        new_islands.append(replace(island, start=start, end=end))
    return new_codes, new_exons, new_islands


def _apply_inversions(
    codes: np.ndarray,
    exons: List[Interval],
    params: EvolutionParams,
    rng: np.random.Generator,
) -> np.ndarray:
    for _ in range(params.inversion_count):
        span = min(params.inversion_length, codes.size // 4)
        if span < 2:
            break
        start = _find_clear_position(codes.size, span, exons, rng)
        if start is None:
            continue
        segment = codes[start : start + span]
        codes[start : start + span] = alphabet.COMPLEMENT[segment][::-1]
    return codes


def _apply_duplications(
    codes: np.ndarray,
    exons: List[Interval],
    islands: List[Interval],
    params: EvolutionParams,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, List[Interval], List[Interval], List[Interval]]:
    """Insert copies of random segments, producing paralogous intervals."""

    def shift_after(intervals: List[Interval], point: int, span: int):
        return [
            iv.shifted(span) if iv.start >= point else iv
            for iv in intervals
        ]

    paralogs: List[Interval] = []
    for _ in range(params.duplication_count):
        span = min(params.duplication_length, codes.size // 4)
        if span < 2:
            break
        source = int(rng.integers(codes.size - span))
        insert_at = _find_clear_position(codes.size, 1, exons, rng)
        if insert_at is None:
            continue
        segment = codes[source : source + span].copy()
        codes = np.concatenate(
            [codes[:insert_at], segment, codes[insert_at:]]
        )
        exons = shift_after(exons, insert_at, span)
        islands = shift_after(islands, insert_at, span)
        paralogs = shift_after(paralogs, insert_at, span)
        paralogs.append(Interval(insert_at, insert_at + span, name="paralog"))
        # The duplicated copy is alignable sequence in its own right.
        islands.append(
            Interval(insert_at, insert_at + span, name="paralog-island")
        )
    return codes, exons, islands, paralogs


def evolve(
    ancestor: Sequence,
    exons: List[Interval],
    params: EvolutionParams,
    rng: np.random.Generator,
    name: str,
    islands: Optional[List[Interval]] = None,
    background_distance: Optional[float] = None,
    island_distance: Optional[float] = None,
) -> Lineage:
    """Evolve ``ancestor`` along one branch, returning the descendant.

    Event order is structural (inversions, duplications) -> indels ->
    substitutions; substitutions never move coordinates so the exon
    intervals returned are exact.

    With ``islands`` and ``background_distance`` set, sites outside the
    islands (and exons) substitute at ``background_distance`` instead of
    ``params.distance`` — the mosaic rate model: real genomes at these
    phylogenetic distances are alignable only in conserved islands
    floating in diverged-beyond-recognition background.
    """
    codes = ancestor.codes.copy()
    current_exons = list(exons)
    current_islands = list(islands) if islands else []
    codes = _apply_inversions(codes, current_exons, params, rng)
    codes, current_exons, current_islands, paralogs = _apply_duplications(
        codes, current_exons, current_islands, params, rng
    )
    codes, current_exons, current_islands = _apply_indels(
        codes, current_exons, current_islands, params, rng
    )

    exon_mask = _exon_mask(codes.size, current_exons)
    island_rate = (
        island_distance if island_distance is not None else params.distance
    )
    if islands is not None and background_distance is not None:
        island_mask = _exon_mask(codes.size, current_islands)
        island_mask &= ~exon_mask
        background_mask = ~exon_mask & ~island_mask
        classes = [
            (exon_mask, island_rate * params.conserved_multiplier),
            (island_mask, island_rate),
            (background_mask, background_distance),
        ]
    else:
        classes = [
            (exon_mask, island_rate * params.conserved_multiplier),
            (~exon_mask, island_rate),
        ]
    codes = _apply_substitutions(codes, classes, params, rng)
    return Lineage(
        genome=Sequence(codes, name=name),
        exons=current_exons,
        paralogs=paralogs,
        islands=current_islands,
    )


def plant_exons(
    length: int,
    rng: np.random.Generator,
    count: int,
    min_length: int = 90,
    max_length: int = 300,
) -> List[Interval]:
    """Choose non-overlapping codon-aligned exon intervals on a genome."""
    exons: List[Interval] = []
    attempts = 0
    while len(exons) < count and attempts < count * 50:
        attempts += 1
        span = int(rng.integers(min_length // 3, max_length // 3 + 1)) * 3
        if span >= length:
            continue
        start = int(rng.integers(length - span))
        candidate = Interval(start, start + span, name=f"exon{len(exons)}")
        if not any(candidate.overlaps(e) for e in exons):
            exons.append(candidate)
    return sorted(exons, key=lambda e: e.start)


def sample_islands(
    length: int,
    fraction: float,
    mean_length: int,
    rng: np.random.Generator,
) -> List[Interval]:
    """Sample non-overlapping alignable islands covering ``fraction``.

    Island lengths are exponential around ``mean_length`` (floored at
    100 bp); placement is rejection-sampled to avoid overlap.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    budget = int(length * fraction)
    islands: List[Interval] = []
    covered = 0
    attempts = 0
    while covered < budget and attempts < 100 + 10 * len(islands):
        attempts += 1
        span = max(100, int(rng.exponential(mean_length)))
        span = min(span, budget - covered + 100, length - 1)
        start = int(rng.integers(length - span))
        candidate = Interval(
            start, start + span, name=f"island{len(islands)}"
        )
        if any(candidate.overlaps(existing) for existing in islands):
            continue
        islands.append(candidate)
        covered += span
        attempts = 0
    return sorted(islands, key=lambda iv: iv.start)


def make_species_pair(
    length: int,
    distance: float,
    rng: np.random.Generator,
    exon_count: int = 0,
    kappa: float = 2.0,
    inversion_count: int = 0,
    duplication_count: int = 0,
    alignable_fraction: float = 1.0,
    island_mean_length: int = 800,
    background_distance: Optional[float] = None,
    island_distance_cap: float = 0.5,
    indel_distance_cap: float = 0.6,
    target_name: str = "target",
    query_name: str = "query",
    **param_overrides,
) -> SpeciesPair:
    """Generate a species pair separated by ``distance`` subs/site.

    The distance is split evenly across the two branches.  Structural
    events are applied to the query branch only (one rearranged lineage is
    enough to exercise inversion/duplication handling).

    With ``alignable_fraction < 1`` the genome becomes a mosaic: only that
    fraction (in islands of mean ``island_mean_length``, plus all exons)
    stays alignable, while the rest substitutes at ``background_distance``
    (default: saturation) — the regime real WGA operates in, where each
    alignable island must be seeded and filtered on its own.  Island
    *substitution* divergence is capped at ``island_distance_cap`` (what
    survives as alignable is by definition the conserved tail), while the
    *indel* density keeps tracking the full ``distance`` — exactly the
    trend of the paper's Figure 2, where greater phylogenetic distance
    shows up mainly as ever-shorter ungapped blocks.
    """
    ancestor = markov_genome(length, rng, name="ancestor")
    exons = plant_exons(length, rng, exon_count) if exon_count else []
    branch = distance / 2.0
    if alignable_fraction < 1.0:
        islands = sample_islands(
            length, alignable_fraction, island_mean_length, rng
        )
        if background_distance is None:
            background_distance = max(3.0, 2.0 * distance)
        background_branch = background_distance / 2.0
        # Indel density in surviving alignable sequence saturates with
        # distance just like substitution divergence does: regions whose
        # indel load kept growing would no longer be alignable at all.
        if branch > 0:
            indel_scale = min(branch, indel_distance_cap / 2.0) / branch
            for key in (
                "indel_per_substitution",
                "exon_indel_per_substitution",
            ):
                base = param_overrides.get(
                    key, EvolutionParams.__dataclass_fields__[key].default
                )
                param_overrides[key] = base * indel_scale
    else:
        islands = None
        background_branch = None
    target_params = EvolutionParams(
        distance=branch, kappa=kappa, **param_overrides
    )
    query_params = EvolutionParams(
        distance=branch,
        kappa=kappa,
        inversion_count=inversion_count,
        duplication_count=duplication_count,
        **param_overrides,
    )
    island_branch = (
        min(branch, island_distance_cap / 2.0)
        if islands is not None
        else None
    )
    target = evolve(
        ancestor,
        exons,
        target_params,
        rng,
        name=target_name,
        islands=islands,
        background_distance=background_branch,
        island_distance=island_branch,
    )
    query = evolve(
        ancestor,
        exons,
        query_params,
        rng,
        name=query_name,
        islands=islands,
        background_distance=background_branch,
        island_distance=island_branch,
    )
    return SpeciesPair(
        target=target,
        query=query,
        ancestor=ancestor,
        ancestor_exons=exons,
        distance=distance,
    )
