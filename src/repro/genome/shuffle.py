"""k-mer-preserving sequence shuffles for false-positive-rate analysis.

The paper's noise analysis (section V-E) builds a null-model target genome
by shuffling the 2-mer sequences of ce11 with ``fasta-shuffle-letters``:
the shuffle preserves dinucleotide statistics — which are pronounced in
real genomes — while destroying any evolutionary signal.  Every alignment
found against the shuffled genome is, by construction, a false positive.

This module implements the same operation via the classic Altschul-Erickson
doublet-shuffle formulation: build the multigraph whose edges are the
observed k-1 -> next-base transitions, draw a random arborescence toward the
terminal vertex, and emit a random Eulerian walk.  For k=2 we use the
simpler (and equivalent in distribution over last-edge choices) repeated
attempt approach: shuffle edge lists per vertex and retry until the walk
consumes every edge.
"""

from __future__ import annotations

from typing import List

import numpy as np

from . import alphabet
from .sequence import Sequence


def shuffle_preserving_kmers(
    seq: Sequence,
    rng: np.random.Generator,
    k: int = 2,
    max_attempts: int = 200,
) -> Sequence:
    """Shuffle ``seq`` preserving exact (k)-mer counts (default doublets).

    The result has identical k-mer composition to the input (hence
    identical (k-1)-mer composition, base composition, and length) but a
    random order otherwise.  Raises ``ValueError`` if a valid Eulerian
    rearrangement cannot be found, which for genuine DNA essentially never
    happens.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = len(seq)
    if n <= k:
        return Sequence(seq.codes.copy(), name=f"{seq.name}-shuffled")
    if k == 1:
        codes = seq.codes.copy()
        rng.shuffle(codes)
        return Sequence(codes, name=f"{seq.name}-shuffled")

    codes = seq.codes
    order = k - 1
    # Vertices are (k-1)-mers encoded as integers base ALPHABET_SIZE.
    base = alphabet.ALPHABET_SIZE
    weights = base ** np.arange(order - 1, -1, -1, dtype=np.int64)

    def vertex_at(i: int) -> int:
        return int(codes[i : i + order].astype(np.int64) @ weights)

    # Edge list per vertex: the base that follows each occurrence.
    n_vertices = base**order
    out_edges: List[List[int]] = [[] for _ in range(n_vertices)]
    vertices = (
        np.lib.stride_tricks.sliding_window_view(codes, order).astype(
            np.int64
        )
        @ weights
    )
    followers = codes[order:]
    for v, nxt in zip(vertices[:-1].tolist(), followers.tolist()):
        out_edges[v].append(int(nxt))

    start_vertex = vertex_at(0)
    total_edges = sum(len(e) for e in out_edges)

    for _ in range(max_attempts):
        pools = [list(edges) for edges in out_edges]
        for pool in pools:
            rng.shuffle(pool)
        walk = list(codes[:order])
        vertex = start_vertex
        emitted = 0
        while pools[vertex]:
            nxt = pools[vertex].pop()
            walk.append(nxt)
            emitted += 1
            # Advance the vertex: drop the leading base, append the new one.
            vertex = (vertex % (base ** (order - 1))) * base + nxt
        if emitted == total_edges:
            return Sequence(
                np.array(walk, dtype=np.uint8), name=f"{seq.name}-shuffled"
            )
    raise ValueError("failed to find an Eulerian shuffle; increase attempts")


def kmer_counts(seq: Sequence, k: int) -> np.ndarray:
    """Flat array of k-mer counts indexed base-``ALPHABET_SIZE``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    codes = seq.codes.astype(np.int64)
    if codes.size < k:
        return np.zeros(alphabet.ALPHABET_SIZE**k, dtype=np.int64)
    weights = alphabet.ALPHABET_SIZE ** np.arange(k - 1, -1, -1, dtype=np.int64)
    words = np.lib.stride_tricks.sliding_window_view(codes, k) @ weights
    return np.bincount(words, minlength=alphabet.ALPHABET_SIZE**k)
