"""Minimal FASTA reader/writer.

The paper's inputs are genome assemblies distributed as FASTA; this module
round-trips :class:`~repro.genome.sequence.Sequence` objects through the
format so that examples and benchmarks can persist synthetic genomes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from .sequence import Sequence

_PathOrFile = Union[str, Path, TextIO]


def _opened(source: _PathOrFile, mode: str):
    """Return ``(file_object, needs_close)`` for a path or file-like."""
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def iter_fasta(source: _PathOrFile) -> Iterator[Sequence]:
    """Yield sequences from a FASTA path or open text handle.

    Header lines keep only the first whitespace-separated token as the
    sequence name, matching common genomics-tool behaviour.
    """
    handle, needs_close = _opened(source, "r")
    try:
        name = None
        chunks: List[str] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield Sequence.from_string("".join(chunks), name=name)
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise ValueError("FASTA data before first header line")
                chunks.append(line)
        if name is not None:
            yield Sequence.from_string("".join(chunks), name=name)
    finally:
        if needs_close:
            handle.close()


def read_fasta(source: _PathOrFile) -> List[Sequence]:
    """Read every record of a FASTA file into a list."""
    return list(iter_fasta(source))


def write_fasta(
    sequences: Iterable[Sequence],
    destination: _PathOrFile,
    line_width: int = 60,
) -> None:
    """Write sequences in FASTA format with wrapped sequence lines."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    handle, needs_close = _opened(destination, "w")
    try:
        for seq in sequences:
            handle.write(f">{seq.name}\n")
            text = str(seq)
            for start in range(0, len(text), line_width):
                handle.write(text[start : start + line_width] + "\n")
    finally:
        if needs_close:
            handle.close()


def fasta_string(sequences: Iterable[Sequence], line_width: int = 60) -> str:
    """Render sequences as a FASTA-formatted string."""
    buffer = io.StringIO()
    write_fasta(sequences, buffer, line_width=line_width)
    return buffer.getvalue()
