"""DNA alphabet and numeric encodings.

Darwin-WGA stores sequence characters from the extended DNA alphabet
{A, C, G, T, N} in on-chip BRAM using 3 bits per base (paper section IV).
This module defines the canonical numeric encoding used across the library:
``A=0, C=1, G=2, T=3, N=4``.  The ordering matters: codes 0-3 index the
4x4 substitution matrices directly, complementation is ``3 - code``, and
transitions (A<->G, C<->T) are exactly the pairs whose codes differ by 2.
"""

from __future__ import annotations

import numpy as np

#: Number of bits per base in the hardware BRAM encoding.
BITS_PER_BASE = 3

#: Canonical base ordering; index in this string is the numeric code.
BASES = "ACGTN"

#: Numeric codes for the four unambiguous nucleotides.
A, C, G, T = 0, 1, 2, 3

#: Numeric code for the ambiguous nucleotide.
N = 4

#: Number of unambiguous nucleotides.
NUM_NUCLEOTIDES = 4

#: Alphabet size including ``N``.
ALPHABET_SIZE = 5

_ENCODE_TABLE = np.full(256, N, dtype=np.uint8)
for _code, _base in enumerate(BASES):
    _ENCODE_TABLE[ord(_base)] = _code
    _ENCODE_TABLE[ord(_base.lower())] = _code

_DECODE_TABLE = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8).copy()

#: Complement lookup: A<->T, C<->G, N->N.
COMPLEMENT = np.array([T, G, C, A, N], dtype=np.uint8)


def encode(text: str) -> np.ndarray:
    """Encode an ASCII DNA string into a ``uint8`` code array.

    Unknown characters (anything outside ``ACGTNacgtn``) become ``N``,
    mirroring how aligners treat ambiguity codes.

    >>> list(encode("ACGTN"))
    [0, 1, 2, 3, 4]
    """
    raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    return _ENCODE_TABLE[raw]


def decode(codes: np.ndarray) -> str:
    """Decode a code array back into an upper-case ASCII DNA string.

    >>> decode(encode("acgtn"))
    'ACGTN'
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() >= ALPHABET_SIZE:
        raise ValueError("code array contains values outside the alphabet")
    return _DECODE_TABLE[codes].tobytes().decode("ascii")


def complement(codes: np.ndarray) -> np.ndarray:
    """Return the element-wise complement of a code array."""
    return COMPLEMENT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array."""
    return complement(codes)[::-1]


def is_transition(a: int, b: int) -> bool:
    """True if substituting ``a`` for ``b`` is a transition (A<->G, C<->T).

    Transitions are purine<->purine or pyrimidine<->pyrimidine substitutions;
    they occur at higher-than-random frequency in real genomes, which is why
    LASTZ and Darwin-WGA seed patterns optionally tolerate one of them
    (paper Figure 5).
    """
    if a == b or a >= NUM_NUCLEOTIDES or b >= NUM_NUCLEOTIDES:
        return False
    return abs(int(a) - int(b)) == 2


def transition_partner(code: int) -> int:
    """Return the transition partner of an unambiguous base code."""
    if code >= NUM_NUCLEOTIDES:
        raise ValueError("N has no transition partner")
    return (int(code) + 2) % 4
