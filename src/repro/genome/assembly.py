"""Multi-chromosome genome assemblies.

The paper's inputs are assemblies with multiple nuclear chromosomes
(mitochondrial DNA and unmapped contigs removed, section V-A).  An
:class:`Assembly` is an ordered collection of named chromosomes with
whole-assembly statistics, FASTA round-tripping, and the bookkeeping the
whole-assembly aligner (:func:`repro.core.pipeline.align_assemblies`)
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from .fasta import read_fasta, write_fasta
from .sequence import Sequence


@dataclass
class Assembly:
    """A named, ordered set of chromosome sequences."""

    name: str
    chromosomes: List[Sequence] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for chrom in self.chromosomes:
            if not chrom.name:
                raise ValueError("assembly chromosomes must be named")
            if chrom.name in seen:
                raise ValueError(
                    f"duplicate chromosome name {chrom.name!r}"
                )
            seen.add(chrom.name)

    def __len__(self) -> int:
        """Number of chromosomes."""
        return len(self.chromosomes)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self.chromosomes)

    def __getitem__(self, name: str) -> Sequence:
        for chrom in self.chromosomes:
            if chrom.name == name:
                return chrom
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(chrom.name == name for chrom in self.chromosomes)

    @property
    def total_length(self) -> int:
        """Total assembly size in base pairs."""
        return sum(len(chrom) for chrom in self.chromosomes)

    def names(self) -> List[str]:
        return [chrom.name for chrom in self.chromosomes]

    def sizes(self) -> Dict[str, int]:
        """Chromosome name -> length mapping (for chain/MAF headers)."""
        return {chrom.name: len(chrom) for chrom in self.chromosomes}

    def add(self, chromosome: Sequence) -> None:
        if not chromosome.name:
            raise ValueError("chromosome must be named")
        if chromosome.name in self:
            raise ValueError(
                f"duplicate chromosome name {chromosome.name!r}"
            )
        self.chromosomes.append(chromosome)

    def gc_content(self) -> float:
        """Assembly-wide GC fraction."""
        if self.total_length == 0:
            return 0.0
        gc_weighted = sum(
            chrom.gc_content() * len(chrom) for chrom in self.chromosomes
        )
        return gc_weighted / self.total_length

    def n50(self) -> int:
        """The N50 contiguity statistic of the chromosome lengths."""
        lengths = sorted(
            (len(chrom) for chrom in self.chromosomes), reverse=True
        )
        if not lengths:
            return 0
        half = sum(lengths) / 2
        running = 0
        for length in lengths:
            running += length
            if running >= half:
                return length
        return lengths[-1]

    @classmethod
    def from_fasta(cls, path, name: str) -> "Assembly":
        """Load an assembly from a FASTA file."""
        return cls(name=name, chromosomes=read_fasta(path))

    def to_fasta(self, path) -> None:
        write_fasta(self.chromosomes, path)

    @classmethod
    def from_sequences(
        cls, name: str, sequences: Iterable[Sequence]
    ) -> "Assembly":
        return cls(name=name, chromosomes=list(sequences))


def split_into_chromosomes(
    genome: Sequence,
    count: int,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> Assembly:
    """Split one long sequence into a multi-chromosome assembly.

    Breakpoints are uniform-random (or evenly spaced when ``rng`` is
    None), modelling how a simulated genome maps onto karyotypes.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    length = len(genome)
    if count > max(1, length):
        raise ValueError("more chromosomes than bases")
    if rng is None:
        cuts = [length * i // count for i in range(1, count)]
    else:
        cuts = sorted(
            int(c) for c in rng.choice(length, size=count - 1, replace=False)
        )
    bounds = [0] + list(cuts) + [length]
    chromosomes = []
    for i, (start, end) in enumerate(zip(bounds, bounds[1:]), start=1):
        chrom = genome.slice(start, end)
        chromosomes.append(Sequence(chrom.codes, name=f"chr{i}"))
    return Assembly(
        name=name or genome.name or "assembly", chromosomes=chromosomes
    )
