"""The :class:`Sequence` type — an immutable, numerically encoded DNA string.

All pipeline stages operate on :class:`Sequence` objects rather than Python
strings: the numeric representation indexes substitution matrices directly
and supports vectorised dynamic programming via numpy.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from . import alphabet


class Sequence:
    """An immutable DNA sequence with a name.

    The underlying storage is a ``uint8`` numpy array of codes in
    ``{A=0, C=1, G=2, T=3, N=4}`` (see :mod:`repro.genome.alphabet`).

    >>> s = Sequence.from_string("ACGT", name="chr1")
    >>> len(s), str(s)
    (4, 'ACGT')
    >>> str(s.reverse_complement())
    'ACGT'
    """

    __slots__ = ("_codes", "name")

    def __init__(self, codes: np.ndarray, name: str = "") -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.ndim != 1:
            raise ValueError("sequence codes must be one-dimensional")
        if codes.size and codes.max() >= alphabet.ALPHABET_SIZE:
            raise ValueError("sequence contains codes outside the alphabet")
        codes.setflags(write=False)
        self._codes = codes
        self.name = name

    @classmethod
    def from_string(cls, text: str, name: str = "") -> "Sequence":
        """Build a sequence from an ASCII string (case-insensitive)."""
        return cls(alphabet.encode(text), name=name)

    @property
    def codes(self) -> np.ndarray:
        """The read-only ``uint8`` code array."""
        return self._codes

    def __len__(self) -> int:
        return int(self._codes.size)

    def __str__(self) -> str:
        return alphabet.decode(self._codes)

    def __repr__(self) -> str:
        label = self.name or "<unnamed>"
        preview = str(self[:12]) + ("..." if len(self) > 12 else "")
        return f"Sequence({label!r}, len={len(self)}, {preview!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return np.array_equal(self._codes, other._codes)

    def __hash__(self) -> int:
        return hash((self._codes.tobytes(), len(self)))

    def __iter__(self) -> Iterator[int]:
        return iter(self._codes.tolist())

    def __getitem__(self, item: Union[int, slice]) -> Union[int, "Sequence"]:
        if isinstance(item, slice):
            return Sequence(self._codes[item], name=self.name)
        return int(self._codes[item])

    def slice(self, start: int, end: int) -> "Sequence":
        """Return the clamped subsequence ``[start, end)``."""
        start = max(0, start)
        end = min(len(self), end)
        if end < start:
            end = start
        return Sequence(self._codes[start:end], name=self.name)

    def reverse_complement(self) -> "Sequence":
        """Return the reverse complement as a new sequence."""
        name = f"{self.name}(-)" if self.name else ""
        return Sequence(alphabet.reverse_complement(self._codes), name=name)

    def concat(self, other: "Sequence") -> "Sequence":
        """Return the concatenation ``self + other`` (keeps ``self.name``)."""
        return Sequence(
            np.concatenate([self._codes, other._codes]), name=self.name
        )

    def gc_content(self) -> float:
        """Fraction of unambiguous bases that are G or C."""
        unambiguous = self._codes[self._codes < alphabet.NUM_NUCLEOTIDES]
        if unambiguous.size == 0:
            return 0.0
        gc = np.count_nonzero(
            (unambiguous == alphabet.G) | (unambiguous == alphabet.C)
        )
        return gc / unambiguous.size

    def base_counts(self) -> np.ndarray:
        """Counts of A, C, G, T, N as a length-5 integer array."""
        return np.bincount(self._codes, minlength=alphabet.ALPHABET_SIZE)
