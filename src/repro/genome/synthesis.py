"""Synthetic genome generation.

Real assemblies (ce11, cb4, dm6, ...) are not available offline, so the
benchmarks generate ancestral genomes with realistic base composition and
then evolve them into species pairs (see :mod:`repro.genome.evolution`).
Genomes are generated with a first-order Markov model over dinucleotides
because dinucleotide statistics are pronounced in real genomes (the paper's
noise analysis explicitly preserves 2-mer statistics when shuffling).
"""

from __future__ import annotations

from typing import Optional, Sequence as TypingSequence

import numpy as np

from . import alphabet
from .sequence import Sequence

#: Dinucleotide transition matrix loosely modelled on the depletion of CpG
#: and enrichment of TpA-like patterns seen in animal genomes.  Rows are the
#: previous base (A, C, G, T), columns the next base; rows sum to 1.
DEFAULT_DINUCLEOTIDE_MODEL = np.array(
    [
        [0.32, 0.18, 0.22, 0.28],
        [0.30, 0.25, 0.06, 0.39],
        [0.26, 0.23, 0.25, 0.26],
        [0.22, 0.20, 0.26, 0.32],
    ]
)


def uniform_genome(
    length: int,
    rng: np.random.Generator,
    gc: float = 0.42,
    name: str = "synthetic",
) -> Sequence:
    """Generate an i.i.d. genome with the requested GC content."""
    if not 0.0 <= gc <= 1.0:
        raise ValueError("gc must lie in [0, 1]")
    at = (1.0 - gc) / 2.0
    probs = np.array([at, gc / 2.0, gc / 2.0, at])
    codes = rng.choice(alphabet.NUM_NUCLEOTIDES, size=length, p=probs)
    return Sequence(codes.astype(np.uint8), name=name)


def markov_genome(
    length: int,
    rng: np.random.Generator,
    transition_matrix: Optional[np.ndarray] = None,
    name: str = "synthetic",
) -> Sequence:
    """Generate a genome from a first-order Markov (dinucleotide) model.

    ``transition_matrix[prev, next]`` gives the probability of emitting
    ``next`` after ``prev``; rows must sum to 1.
    """
    if length <= 0:
        return Sequence(np.empty(0, dtype=np.uint8), name=name)
    matrix = (
        DEFAULT_DINUCLEOTIDE_MODEL
        if transition_matrix is None
        else np.asarray(transition_matrix, dtype=float)
    )
    if matrix.shape != (4, 4):
        raise ValueError("transition matrix must be 4x4")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("transition matrix rows must sum to 1")

    # Draw all uniforms up front and walk the chain with cumulative rows.
    cumulative = np.cumsum(matrix, axis=1)
    uniforms = rng.random(length)
    codes = np.empty(length, dtype=np.uint8)
    codes[0] = rng.integers(alphabet.NUM_NUCLEOTIDES)
    for i in range(1, length):
        codes[i] = np.searchsorted(cumulative[codes[i - 1]], uniforms[i])
    return Sequence(codes, name=name)


def plant_repeats(
    genome: Sequence,
    rng: np.random.Generator,
    count: int,
    repeat_length: int,
    family_size: int = 1,
) -> Sequence:
    """Overwrite random loci with copies of repeat elements.

    Repeats are what make seeding noisy (high false-positive seed-hit rates,
    paper section III-A), so benchmark genomes plant a configurable number
    of near-identical repeat copies drawn from ``family_size`` families.

    Returns a new genome; the input is unmodified.
    """
    if count <= 0 or repeat_length <= 0 or repeat_length > len(genome):
        return genome
    codes = genome.codes.copy()
    families = [
        rng.integers(
            alphabet.NUM_NUCLEOTIDES, size=repeat_length, dtype=np.uint8
        )
        for _ in range(max(1, family_size))
    ]
    max_start = len(genome) - repeat_length
    for _ in range(count):
        family = families[rng.integers(len(families))]
        start = int(rng.integers(max_start + 1))
        copy = family.copy()
        # Each copy diverges slightly from its family consensus.
        n_mut = rng.binomial(repeat_length, 0.05)
        if n_mut:
            sites = rng.choice(repeat_length, size=n_mut, replace=False)
            copy[sites] = rng.integers(
                alphabet.NUM_NUCLEOTIDES, size=n_mut, dtype=np.uint8
            )
        codes[start : start + repeat_length] = copy
    return Sequence(codes, name=genome.name)


def dinucleotide_counts(genome: Sequence) -> np.ndarray:
    """4x4 matrix of observed dinucleotide counts (N positions excluded)."""
    codes = genome.codes
    counts = np.zeros((4, 4), dtype=np.int64)
    if len(genome) < 2:
        return counts
    prev = codes[:-1]
    nxt = codes[1:]
    mask = (prev < alphabet.NUM_NUCLEOTIDES) & (nxt < alphabet.NUM_NUCLEOTIDES)
    np.add.at(counts, (prev[mask], nxt[mask]), 1)
    return counts


def concatenate(parts: TypingSequence[Sequence], name: str) -> Sequence:
    """Concatenate sequences into one named chromosome-like sequence."""
    if not parts:
        return Sequence(np.empty(0, dtype=np.uint8), name=name)
    codes = np.concatenate([p.codes for p in parts])
    return Sequence(codes, name=name)
