"""D-SOFT seeding with diagonal-band binning (paper section III-B).

Darwin-WGA uses a modified D-SOFT: the query is cut into *chunks* of size
``c``; target positions are grouped into *bins* of size ``b``; a chunk and
a bin together define a *diagonal band* (paper Figure 4a).  The threshold
``h`` is the number of seed hits a band must collect, and — unlike the
original D-SOFT — **at most one seed hit is extended per diagonal band**,
eliminating redundant filter tiles for nearby hits on the same diagonal.

The implementation is fully vectorised: chunk ids and band ids are computed
arithmetically for every raw hit, bands are aggregated with ``np.unique``,
and one representative hit (the first in query order) is emitted per
qualifying band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from .index import SeedIndex
from .patterns import SpacedSeed


@dataclass(frozen=True)
class DsoftParams:
    """D-SOFT seeding parameters.

    ``chunk_size``/``bin_size`` trade duplicate suppression against the
    risk of merging distinct nearby alignments; ``threshold`` is the
    minimum seed hits per diagonal band (``h``).
    """

    chunk_size: int = 128
    bin_size: int = 128
    threshold: int = 1

    def __post_init__(self) -> None:
        if self.chunk_size <= 0 or self.bin_size <= 0:
            raise ValueError("chunk and bin sizes must be positive")
        if self.threshold < 1:
            raise ValueError("threshold must be at least 1")


@dataclass(frozen=True)
class SeedingResult:
    """Output of the seeding stage.

    ``target_positions``/``query_positions`` are parallel arrays with one
    candidate (representative hit) per qualifying diagonal band.
    ``raw_hit_count`` counts every seed-table hit enumerated — the
    workload number reported in the paper's Table V "Seeds" column.
    """

    target_positions: np.ndarray
    query_positions: np.ndarray
    raw_hit_count: int
    band_count: int

    @property
    def candidate_count(self) -> int:
        return int(self.target_positions.size)


def query_seed_words(
    query: Sequence, seed: SpacedSeed
) -> Tuple[np.ndarray, np.ndarray]:
    """Seed words of the query, expanded with transition variants.

    Returns ``(words, positions)`` where each valid query position
    contributes one exact word plus — when the seed tolerates transitions —
    ``weight`` one-transition variants (the ``m + 1`` lookups per position
    of paper section III-B).
    """
    words, valid = seed.words(query)
    positions = np.flatnonzero(valid).astype(np.int64)
    words = words[positions]
    if not seed.transitions or words.size == 0:
        return words, positions
    variants = [words] + seed.transition_neighbours(words)
    all_words = np.concatenate(variants)
    all_positions = np.tile(positions, len(variants))
    return all_words, all_positions


def dsoft_seed(
    index: SeedIndex,
    query: Sequence,
    params: DsoftParams,
    tracer=NULL_TRACER,
) -> SeedingResult:
    """Run D-SOFT seeding of ``query`` against an indexed target.

    Returns one candidate hit per diagonal band with at least
    ``params.threshold`` seed hits.
    """
    with tracer.span("seed", method="dsoft") as span:
        words, positions = query_seed_words(query, index.seed)
        target_hits, query_hits = index.lookup_batch(words, positions)
        raw = int(target_hits.size)
        span.inc("seed_hits", raw)
        if raw == 0:
            empty = np.empty(0, dtype=np.int64)
            return SeedingResult(empty, empty.copy(), 0, 0)

        chunk_ids = query_hits // params.chunk_size
        # The band-defining coordinate: the target position shifted back
        # to the chunk origin, so hits on nearby diagonals within a chunk
        # share a band (Figure 4a).  Offset by the query length so ids
        # stay positive.
        band_coord = (
            target_hits - (query_hits % params.chunk_size) + len(query)
        )
        bin_ids = band_coord // params.bin_size
        n_bins = (index.target_length + len(query)) // params.bin_size + 2
        band_keys = chunk_ids * n_bins + bin_ids

        order = np.argsort(band_keys, kind="stable")
        sorted_keys = band_keys[order]
        unique_keys, first_index, counts = np.unique(
            sorted_keys, return_index=True, return_counts=True
        )
        qualifying = counts >= params.threshold
        representatives = order[first_index[qualifying]]
        span.inc("bands", int(unique_keys.size))
        span.inc("candidates", int(representatives.size))
        return SeedingResult(
            target_positions=target_hits[representatives],
            query_positions=query_hits[representatives],
            raw_hit_count=raw,
            band_count=int(unique_keys.size),
        )


def all_seed_hits(
    index: SeedIndex,
    query: Sequence,
    seed_limit: int = 0,
    tracer=NULL_TRACER,
) -> SeedingResult:
    """Enumerate every seed hit without band filtering (LASTZ-style).

    LASTZ does not use D-SOFT; its filter examines each seed hit
    individually.  ``seed_limit`` optionally discards words occurring more
    often than the limit in the target (LASTZ's word-count filtering of
    over-represented seeds), with 0 meaning unlimited.
    """
    with tracer.span("seed", method="all_hits") as span:
        words, positions = query_seed_words(query, index.seed)
        if seed_limit > 0 and words.size:
            left = np.searchsorted(index.sorted_words, words, side="left")
            right = np.searchsorted(
                index.sorted_words, words, side="right"
            )
            keep = (right - left) <= seed_limit
            words = words[keep]
            positions = positions[keep]
        target_hits, query_hits = index.lookup_batch(words, positions)
        span.inc("seed_hits", int(target_hits.size))
        span.inc("candidates", int(target_hits.size))
        return SeedingResult(
            target_positions=target_hits,
            query_positions=query_hits,
            raw_hit_count=int(target_hits.size),
            band_count=0,
        )
