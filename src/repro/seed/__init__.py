"""Seeding: spaced seed patterns, target index, and D-SOFT banding."""

from .analysis import (
    compare_patterns,
    expected_random_hits,
    hit_probability,
    monte_carlo_sensitivity,
)
from .dsoft import (
    DsoftParams,
    SeedingResult,
    all_seed_hits,
    dsoft_seed,
    query_seed_words,
)
from .cache import CACHE_VERSION, SeedIndexCache, index_cache_key
from .index import SeedIndex
from .patterns import DEFAULT_PATTERN, SpacedSeed

__all__ = [
    "CACHE_VERSION",
    "SeedIndexCache",
    "index_cache_key",
    "compare_patterns",
    "expected_random_hits",
    "hit_probability",
    "monte_carlo_sensitivity",
    "DsoftParams",
    "SeedingResult",
    "all_seed_hits",
    "dsoft_seed",
    "query_seed_words",
    "SeedIndex",
    "DEFAULT_PATTERN",
    "SpacedSeed",
]
