"""Seeding: spaced seed patterns, target index, and D-SOFT banding."""

from .analysis import (
    compare_patterns,
    expected_random_hits,
    hit_probability,
    monte_carlo_sensitivity,
)
from .dsoft import (
    DsoftParams,
    SeedingResult,
    all_seed_hits,
    dsoft_seed,
    query_seed_words,
)
from .index import SeedIndex
from .patterns import DEFAULT_PATTERN, SpacedSeed

__all__ = [
    "compare_patterns",
    "expected_random_hits",
    "hit_probability",
    "monte_carlo_sensitivity",
    "DsoftParams",
    "SeedingResult",
    "all_seed_hits",
    "dsoft_seed",
    "query_seed_words",
    "SeedIndex",
    "DEFAULT_PATTERN",
    "SpacedSeed",
]
