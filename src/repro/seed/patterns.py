"""Spaced seed patterns.

A spaced seed is a pattern over ``{1, 0}`` where ``1`` positions must match
exactly and ``0`` positions are "don't care".  LASTZ and Darwin-WGA share
the default ``12of19`` pattern (12 match positions spread over 19 bases,
paper Figure 5).  Optionally one match position may instead contain a
*transition* substitution (A<->G or C<->T): empirically transitions occur
at above-random frequency, so tolerating one raises sensitivity at the
cost of ``m + 1`` times more seed-word lookups.

Seed words pack the 2-bit base codes of the match positions; because the
code layout puts transition partners two apart (``code ^ 2``), a transition
at match slot ``k`` is exactly a flip of word bit ``2k + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..genome import alphabet
from ..genome.sequence import Sequence

#: LASTZ's default seed pattern: 12 match positions over 19 bases.
DEFAULT_PATTERN = "1110100110010101111"


@dataclass(frozen=True)
class SpacedSeed:
    """A spaced seed pattern with optional transition tolerance."""

    pattern: str = DEFAULT_PATTERN
    transitions: bool = True

    def __post_init__(self) -> None:
        if not self.pattern or set(self.pattern) - {"0", "1"}:
            raise ValueError("pattern must be a non-empty string of 0/1")
        if self.pattern[0] != "1" or self.pattern[-1] != "1":
            raise ValueError("pattern must start and end with a 1")

    @property
    def span(self) -> int:
        """Total pattern length in bases."""
        return len(self.pattern)

    @property
    def weight(self) -> int:
        """Number of match (``1``) positions."""
        return self.pattern.count("1")

    @property
    def match_offsets(self) -> Tuple[int, ...]:
        """Offsets of the match positions within the pattern."""
        return tuple(
            i for i, char in enumerate(self.pattern) if char == "1"
        )

    @property
    def word_bits(self) -> int:
        return 2 * self.weight

    def words(self, seq: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        """Seed words at every start position of ``seq``.

        Returns ``(words, valid)``: ``words[p]`` packs the match-position
        codes of the seed starting at ``p`` (two bits per position, first
        match position in the lowest bits); ``valid[p]`` is False when the
        window contains an ambiguous base at a match position or runs off
        the end.  Both arrays have length ``len(seq) - span + 1`` (empty
        when the sequence is shorter than the pattern).
        """
        n = len(seq) - self.span + 1
        if n <= 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        codes = seq.codes
        words = np.zeros(n, dtype=np.int64)
        valid = np.ones(n, dtype=bool)
        for k, offset in enumerate(self.match_offsets):
            window = codes[offset : offset + n].astype(np.int64)
            ambiguous = window >= alphabet.NUM_NUCLEOTIDES
            valid &= ~ambiguous
            words |= (window & 3) << (2 * k)
        return words, valid

    def transition_neighbours(self, words: np.ndarray) -> List[np.ndarray]:
        """All one-transition variants of each word (one array per slot).

        Flipping bit ``2k + 1`` of a word substitutes the base at match
        slot ``k`` with its transition partner.  The returned list has
        ``weight`` arrays; together with the original words this gives the
        ``m + 1`` lookups per position the paper describes.
        """
        return [
            words ^ (np.int64(2) << np.int64(2 * k))
            for k in range(self.weight)
        ]

    def word_of(self, text: str) -> int:
        """Seed word of a single ``span``-length string (for tests)."""
        seq = Sequence.from_string(text)
        if len(seq) != self.span:
            raise ValueError("text length must equal the pattern span")
        words, valid = self.words(seq)
        if not valid[0]:
            raise ValueError("window contains an ambiguous base")
        return int(words[0])
