"""Seed sensitivity analysis.

Sensitivity of the whole pipeline starts at the seeds: a conserved region
with no seed hit is invisible no matter how good the filter is (paper
section III-B).  This module quantifies that:

* :func:`hit_probability` — exact dynamic-programming computation of the
  probability that a region of given length and per-base identity
  contains at least one seed hit (the classic spaced-seed sensitivity
  recurrence of Keich et al., applied per-pattern);
* :func:`monte_carlo_sensitivity` — simulation under the K80 model,
  including transition tolerance, for cross-checking;
* :func:`compare_patterns` — the textbook result that spaced seeds beat
  contiguous seeds of equal weight, which is why LASTZ and Darwin-WGA use
  ``12of19`` rather than a contiguous 12-mer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence as TypingSequence, Tuple

import numpy as np

from ..genome.evolution import k80_difference_probabilities
from .patterns import SpacedSeed


def hit_probability(
    seed: SpacedSeed, length: int, identity: float
) -> float:
    """Probability that a ``length``-base region at the given per-base
    identity contains >= 1 (exact-match) seed hit.

    Bases match independently with probability ``identity``; a seed hit
    at offset ``i`` requires matches at every ``1`` position of the
    pattern.  Computed by DP over match/mismatch strings: states are the
    last ``span - 1`` match bits; for tractability the implementation
    tracks the probability of *no hit so far* with a run-compressed state
    (suffix bitmask), exact for pattern spans up to ~20.
    """
    if not 0.0 <= identity <= 1.0:
        raise ValueError("identity must lie in [0, 1]")
    span = seed.span
    if span > 14:
        raise ValueError(
            "exact DP is practical for pattern spans <= 14; use "
            "monte_carlo_sensitivity for longer patterns like 12of19"
        )
    if length < span:
        return 0.0
    if identity == 1.0:
        return 1.0
    # Mask of the pattern's required positions as a bitmask over the last
    # `span` bases (bit k = base k positions back).
    required = 0
    for offset in seed.match_offsets:
        required |= 1 << (span - 1 - offset)

    # DP over suffix bitmasks of the last `span` bases.  States: dict
    # bitmask -> probability of reaching it with no hit yet.  The mask
    # only needs `span` bits; transitions shift in a new match bit.
    mask_bits = span
    full = (1 << mask_bits) - 1
    states: Dict[int, float] = {0: 1.0}
    no_hit = 0.0
    p = identity
    for position in range(length):
        new_states: Dict[int, float] = {}
        for mask, prob in states.items():
            for bit, bit_prob in ((1, p), (0, 1.0 - p)):
                new_mask = ((mask << 1) | bit) & full
                if (
                    position + 1 >= span
                    and (new_mask & required) == required
                ):
                    # hit: drop from the no-hit ensemble
                    continue
                new_states[new_mask] = (
                    new_states.get(new_mask, 0.0) + prob * bit_prob
                )
        states = new_states
        # Prune negligible states to bound the state count.
        if len(states) > 1 << 16:
            states = {
                m: pr for m, pr in states.items() if pr > 1e-15
            }
    no_hit = sum(states.values())
    return 1.0 - no_hit


def monte_carlo_sensitivity(
    seed: SpacedSeed,
    length: int,
    distance: float,
    rng: np.random.Generator,
    kappa: float = 2.0,
    trials: int = 300,
) -> float:
    """Simulated probability of >= 1 seed hit on the true diagonal.

    A region pair is generated under K80 at the given distance; a hit at
    offset ``i`` requires every pattern ``1`` position to match exactly —
    or, when the seed tolerates transitions, to have at most one
    transition among them.
    """
    p_transition, p_transversion = k80_difference_probabilities(
        distance, kappa
    )
    offsets = np.array(seed.match_offsets)
    hits = 0
    n_windows = length - seed.span + 1
    if n_windows <= 0:
        return 0.0
    for _ in range(trials):
        u = rng.random(length)
        # site classes: 0 match, 1 transition, 2 transversion
        classes = np.zeros(length, dtype=np.int8)
        classes[u < p_transition] = 1
        classes[(u >= p_transition) & (u < p_transition + p_transversion)] = 2
        window_classes = np.lib.stride_tricks.sliding_window_view(
            classes, seed.span
        )[:, offsets]
        transversions = (window_classes == 2).sum(axis=1)
        transitions = (window_classes == 1).sum(axis=1)
        if seed.transitions:
            ok = (transversions == 0) & (transitions <= 1)
        else:
            ok = (transversions == 0) & (transitions == 0)
        if ok.any():
            hits += 1
    return hits / trials


def compare_patterns(
    patterns: TypingSequence[str],
    length: int,
    identity: float,
) -> List[Tuple[str, float]]:
    """Exact hit probabilities for several patterns (descending)."""
    results = [
        (
            pattern,
            hit_probability(
                SpacedSeed(pattern=pattern, transitions=False),
                length,
                identity,
            ),
        )
        for pattern in patterns
    ]
    results.sort(key=lambda item: -item[1])
    return results


def expected_random_hits(
    seed: SpacedSeed, target_length: int, query_length: int
) -> float:
    """Expected random (noise) seed hits between unrelated sequences.

    Each of the ``~target_length * query_length`` position pairs matches
    with probability ``4^-weight`` (uniform bases); transition tolerance
    multiplies by ``1 + weight / 2``-ish — computed exactly as
    ``(1 + weight * (1/3)) ...`` no: each of the ``weight`` one-transition
    variants adds another ``4^-weight`` event, giving
    ``(1 + weight) * 4^-weight`` per pair.
    """
    pairs = float(target_length) * float(query_length)
    per_pair = 4.0 ** (-seed.weight)
    if seed.transitions:
        per_pair *= 1 + seed.weight
    return pairs * per_pair
