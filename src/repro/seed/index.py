"""Positional seed-word index over the target genome.

The seeding stage looks up every query seed word in the target.  The index
stores the target's seed words in sorted order with their positions, so a
batch of query words resolves to position lists with two vectorised
``searchsorted`` calls — the software analogue of the seed-position table
Darwin-WGA's host software keeps in DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..genome.sequence import Sequence
from .patterns import SpacedSeed


@dataclass(frozen=True)
class SeedIndex:
    """Sorted seed-word table of one target sequence."""

    seed: SpacedSeed
    sorted_words: np.ndarray
    sorted_positions: np.ndarray
    target_length: int

    @classmethod
    def build(cls, target: Sequence, seed: SpacedSeed) -> "SeedIndex":
        """Index every valid seed position of ``target``."""
        words, valid = seed.words(target)
        positions = np.flatnonzero(valid)
        words = words[positions]
        order = np.argsort(words, kind="stable")
        return cls(
            seed=seed,
            sorted_words=words[order],
            sorted_positions=positions[order].astype(np.int64),
            target_length=len(target),
        )

    @property
    def size(self) -> int:
        """Number of indexed seed positions."""
        return int(self.sorted_words.size)

    def lookup_batch(
        self, query_words: np.ndarray, query_positions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve a batch of query seed words to seed hits.

        Args:
            query_words: words to look up.
            query_positions: the query position of each word (same length).

        Returns:
            ``(target_hits, query_hits)`` — parallel arrays with one entry
            per seed hit, in query order then target order.
        """
        if query_words.size != query_positions.size:
            raise ValueError("words and positions must be parallel arrays")
        left = np.searchsorted(self.sorted_words, query_words, side="left")
        right = np.searchsorted(self.sorted_words, query_words, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        # CSR-style expansion: for query word w with range [l, r) emit the
        # target positions sorted_positions[l:r].
        starts = np.repeat(left, counts)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        target_hits = self.sorted_positions[starts + offsets]
        query_hits = np.repeat(query_positions, counts)
        return target_hits, query_hits

    def word_frequency(self, word: int) -> int:
        """Number of target positions carrying ``word``."""
        left = np.searchsorted(self.sorted_words, word, side="left")
        right = np.searchsorted(self.sorted_words, word, side="right")
        return int(right - left)
