"""Content-addressed on-disk cache of seed indexes.

Building the :class:`~repro.seed.index.SeedIndex` is pure in the target
sequence and the seed pattern, so repeated runs over the same genomes
(benchmarks, parameter sweeps, and — crucially — every worker process of
a parallel run) can load the sorted word/position tables from disk
instead of rebuilding them.  Entries are ``.npz`` files named by a
SHA-256 over the target's code array and the seed parameters;
:data:`CACHE_VERSION` is mixed into the key, so bumping it when the
index layout changes invalidates every stale entry without any cleanup
logic.  Writes are atomic (temp file + ``os.replace``) so concurrent
processes warming the same key never observe a torn file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from .index import SeedIndex
from .patterns import SpacedSeed

__all__ = ["CACHE_VERSION", "SeedIndexCache", "index_cache_key"]

#: Bump when the on-disk entry layout or SeedIndex.build output changes.
CACHE_VERSION = 1


def index_cache_key(target: Sequence, seed: SpacedSeed) -> str:
    """Content hash identifying one (target, seed, format) combination."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}".encode())
    digest.update(b"|")
    digest.update(seed.pattern.encode())
    digest.update(b"|")
    digest.update(b"t" if seed.transitions else b"n")
    digest.update(b"|")
    digest.update(target.codes.tobytes())
    return digest.hexdigest()


class SeedIndexCache:
    """Directory of cached seed indexes, keyed by content hash.

    The cache only stores the arrays; the :class:`SpacedSeed` itself is
    re-supplied by the caller (it is part of the key, so a loaded entry
    always matches).  Corrupted or unreadable entries are treated as
    misses and rebuilt in place.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"seedindex-{key}.npz"

    def load(
        self, target: Sequence, seed: SpacedSeed
    ) -> Optional[SeedIndex]:
        """The cached index for ``(target, seed)``, or None on a miss."""
        path = self._entry_path(index_cache_key(target, seed))
        if not path.exists():
            return None
        try:
            with np.load(path) as entry:
                index = SeedIndex(
                    seed=seed,
                    sorted_words=entry["sorted_words"],
                    sorted_positions=entry["sorted_positions"],
                    target_length=int(entry["target_length"]),
                )
        except (OSError, ValueError, KeyError, EOFError):
            # Torn or truncated entry (e.g. an interrupted writer before
            # atomic replace existed in the tree): drop and rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if index.target_length != len(target):
            return None
        return index

    def store(
        self, target: Sequence, seed: SpacedSeed, index: SeedIndex
    ) -> Path:
        """Persist ``index`` under the content key; atomic vs. readers."""
        path = self._entry_path(index_cache_key(target, seed))
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    sorted_words=index.sorted_words,
                    sorted_positions=index.sorted_positions,
                    target_length=np.int64(index.target_length),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get_or_build(
        self,
        target: Sequence,
        seed: SpacedSeed,
        tracer=NULL_TRACER,
    ) -> SeedIndex:
        """Load the index from the cache, building and storing on a miss.

        Records a ``build_index`` span with a ``cache`` attribute of
        ``hit`` or ``miss``, so traces show exactly when a warm cache
        removed the build cost.
        """
        with tracer.span("build_index", target=target.name) as span:
            index = self.load(target, seed)
            if index is not None:
                self.hits += 1
                span.set(cache="hit")
                return index
            self.misses += 1
            span.set(cache="miss")
            index = SeedIndex.build(target, seed)
            span.inc("indexed_positions", index.size)
            self.store(target, seed, index)
            return index
