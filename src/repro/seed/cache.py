"""Content-addressed on-disk cache of seed indexes.

Building the :class:`~repro.seed.index.SeedIndex` is pure in the target
sequence and the seed pattern, so repeated runs over the same genomes
(benchmarks, parameter sweeps, and — crucially — every worker process of
a parallel run) can load the sorted word/position tables from disk
instead of rebuilding them.  Entries are ``.npz`` files named by a
SHA-256 over the target's code array and the seed parameters;
:data:`CACHE_VERSION` is mixed into the key, so bumping it when the
index layout changes invalidates every stale entry without any cleanup
logic.  Writes are atomic (temp file + ``os.replace``) so concurrent
processes warming the same key never observe a torn file.

Integrity: every entry carries a ``.sha256`` sidecar written after the
data file lands.  A load first verifies the sidecar digest against the
file's bytes; on mismatch the entry is **quarantined** (renamed to
``*.quarantined`` for post-mortem rather than silently deleted) and
rebuilt from the sequence.  A missing sidecar — an interrupted writer —
is an ordinary miss.  Either way a bit-flipped cache can cost a rebuild,
never a wrong alignment.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..genome.sequence import Sequence
from ..obs.tracer import NULL_TRACER
from ..resilience.faults import corrupt_file
from ..resilience.policy import ResilienceOptions
from .index import SeedIndex
from .patterns import SpacedSeed

__all__ = ["CACHE_VERSION", "SeedIndexCache", "index_cache_key"]

#: Bump when the on-disk entry layout or SeedIndex.build output changes.
#: v2: entries gained the .sha256 integrity sidecar.
CACHE_VERSION = 2


def index_cache_key(target: Sequence, seed: SpacedSeed) -> str:
    """Content hash identifying one (target, seed, format) combination."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}".encode())
    digest.update(b"|")
    digest.update(seed.pattern.encode())
    digest.update(b"|")
    digest.update(b"t" if seed.transitions else b"n")
    digest.update(b"|")
    digest.update(target.codes.tobytes())
    return digest.hexdigest()


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class SeedIndexCache:
    """Directory of cached seed indexes, keyed by content hash.

    The cache only stores the arrays; the :class:`SpacedSeed` itself is
    re-supplied by the caller (it is part of the key, so a loaded entry
    always matches).  Corrupted entries are quarantined and rebuilt;
    unreadable ones are treated as misses and rebuilt in place.

    ``resilience`` supplies the fault-injection plan (``corrupt`` faults
    flip a byte of freshly stored entries) and the counters that record
    quarantines; a cache without it behaves identically minus injection.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        resilience: Optional[ResilienceOptions] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.resilience = resilience
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        #: Stores per key, the "attempt" axis of corrupt-fault decisions
        #: (so a rebuild after quarantine re-rolls, and rate<1 plans
        #: cannot corrupt the same entry forever).
        self._store_counts: Dict[str, int] = {}

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"seedindex-{key}.npz"

    def _checksum_path(self, path: Path) -> Path:
        return Path(f"{path}.sha256")

    def _quarantine(self, path: Path, checksum_path: Path) -> None:
        """Move a corrupt entry aside (kept for post-mortem, not trusted)."""
        self.quarantined += 1
        if self.resilience is not None:
            self.resilience.stats.quarantined_entries += 1
        try:
            os.replace(path, f"{path}.quarantined")
        except OSError:  # pragma: no cover - lost a race with a writer
            pass
        try:
            checksum_path.unlink()
        except OSError:
            pass

    def load(
        self, target: Sequence, seed: SpacedSeed
    ) -> Optional[SeedIndex]:
        """The cached index for ``(target, seed)``, or None on a miss."""
        path = self._entry_path(index_cache_key(target, seed))
        if not path.exists():
            return None
        checksum_path = self._checksum_path(path)
        try:
            expected = checksum_path.read_text().strip()
        except OSError:
            # No sidecar: the writer died between data and checksum.
            # The data may well be fine, but unverifiable = a miss.
            return None
        if _file_digest(path) != expected:
            self._quarantine(path, checksum_path)
            return None
        try:
            with np.load(path) as entry:
                index = SeedIndex(
                    seed=seed,
                    sorted_words=entry["sorted_words"],
                    sorted_positions=entry["sorted_positions"],
                    target_length=int(entry["target_length"]),
                )
        except (OSError, ValueError, KeyError, EOFError):
            # Checksum matched but the payload predates this reader's
            # format expectations (or numpy cannot parse it): rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if index.target_length != len(target):
            return None
        return index

    def store(
        self, target: Sequence, seed: SpacedSeed, index: SeedIndex
    ) -> Path:
        """Persist ``index`` under the content key; atomic vs. readers.

        The data file is replaced first, then its ``.sha256`` sidecar:
        a reader interleaving with the replacement sees at worst a
        data/sidecar mismatch, which quarantines and rebuilds — never a
        silently wrong index.
        """
        key = index_cache_key(target, seed)
        path = self._entry_path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    sorted_words=index.sorted_words,
                    sorted_positions=index.sorted_positions,
                    target_length=np.int64(index.target_length),
                )
            digest = _file_digest(Path(tmp_name))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._checksum_path(path).write_text(digest + "\n")
        self._maybe_corrupt(key, path)
        return path

    def _maybe_corrupt(self, key: str, path: Path) -> None:
        """Apply a scheduled ``corrupt`` fault to a just-stored entry."""
        options = self.resilience
        if options is None or options.fault_plan is None:
            return
        attempt = self._store_counts.get(key, 0)
        self._store_counts[key] = attempt + 1
        if options.fault_plan.decide("corrupt", f"cache:{key}", attempt):
            # Flipping a byte *after* the sidecar lands models silent
            # media corruption; the next load must catch and quarantine.
            corrupt_file(path, seed=options.fault_plan.seed)
            options.stats.inject("corrupt")

    def get_or_build(
        self,
        target: Sequence,
        seed: SpacedSeed,
        tracer=NULL_TRACER,
    ) -> SeedIndex:
        """Load the index from the cache, building and storing on a miss.

        Records a ``build_index`` span with a ``cache`` attribute of
        ``hit`` or ``miss``, so traces show exactly when a warm cache
        removed the build cost.
        """
        with tracer.span("build_index", target=target.name) as span:
            index = self.load(target, seed)
            if index is not None:
                self.hits += 1
                span.set(cache="hit")
                return index
            self.misses += 1
            span.set(cache="miss")
            index = SeedIndex.build(target, seed)
            span.inc("indexed_positions", index.size)
            self.store(target, seed, index)
            return index
