"""Multiprocess execution engine with shared-memory sequence transport.

The pipelines are embarrassingly parallel across anchors, strands and
chromosome pairs (the independence Darwin-WGA's co-processor exploits
with thousands of concurrent tiles).  :class:`ExecutionEngine` wraps a
:class:`concurrent.futures.ProcessPoolExecutor` with the two pieces the
pipelines need on top of it:

* **shared-memory sequences** — a genome's code array is published once
  into :mod:`multiprocessing.shared_memory` and referenced by a small
  picklable :class:`SequenceHandle`, so dispatching a batch of anchors
  never re-pickles megabase arrays;
* **batch sizing** — anchors are dispatched in chunks large enough to
  amortise the per-task round trip but small enough to keep every
  worker busy.

Determinism is the callers' contract, not the engine's: result futures
are always consumed in submission order (see
:mod:`repro.core.extension`), so the engine itself only needs to be
an ordinary pool.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

from multiprocessing import shared_memory

from ..genome.sequence import Sequence

__all__ = ["ExecutionEngine", "SequenceHandle"]


@dataclass(frozen=True)
class SequenceHandle:
    """A picklable reference to a sequence living in shared memory.

    ``kind`` is ``"shm"`` (``payload`` is the shared-memory block name)
    or ``"bytes"`` (``payload`` carries the raw code bytes inline — the
    fallback used when a platform offers no shared memory).
    """

    kind: str
    payload: object
    length: int
    name: Optional[str]


def _default_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the warm interpreter) over spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ExecutionEngine:
    """A process pool plus shared-memory sequence registry.

    ``workers=1`` is a valid configuration: the engine reports itself
    inactive (:attr:`active` is False) and callers fall back to their
    serial code path, so one code path covers ``--workers N`` for all N.

    The engine owns every shared-memory block it publishes; call
    :meth:`close` (or use the engine as a context manager) to release
    the pool and unlink the blocks.
    """

    def __init__(
        self,
        workers: int,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self._context = mp_context or _default_context()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._handles: Dict[int, SequenceHandle] = {}
        self._blocks: List[shared_memory.SharedMemory] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether work should actually fan out (more than one worker)."""
        return self.workers > 1 and not self._closed

    def _pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context
            )
        return self._executor

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory block."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._blocks.clear()
        self._handles.clear()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- sequence transport ------------------------------------------
    def share(self, seq: Sequence) -> SequenceHandle:
        """Publish ``seq`` to workers; repeated calls reuse the block.

        Deduplication is by object identity — the pipelines hold onto
        their Sequence objects for a whole run, so each genome is copied
        into shared memory exactly once.
        """
        handle = self._handles.get(id(seq))
        if handle is not None:
            return handle
        codes = seq.codes
        try:
            block = shared_memory.SharedMemory(
                create=True, size=max(1, codes.nbytes)
            )
        except (OSError, FileNotFoundError):
            # No usable /dev/shm: fall back to shipping bytes inline.
            handle = SequenceHandle(
                kind="bytes",
                payload=codes.tobytes(),
                length=len(seq),
                name=seq.name,
            )
        else:
            block.buf[: codes.nbytes] = codes.tobytes()
            self._blocks.append(block)
            handle = SequenceHandle(
                kind="shm",
                payload=block.name,
                length=len(seq),
                name=seq.name,
            )
        self._handles[id(seq)] = handle
        return handle

    # -- dispatch ----------------------------------------------------
    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit one task to the pool."""
        return self._pool().submit(fn, *args, **kwargs)

    def batch_size_for(self, items: int, chunk_size: int = 0) -> int:
        """Anchors per dispatched batch.

        An explicit ``chunk_size`` wins; otherwise aim for ~8 batches
        per worker (so stragglers rebalance) capped at 32 anchors per
        round trip.
        """
        if chunk_size > 0:
            return chunk_size
        return max(1, min(32, items // (self.workers * 8) or 1))
