"""Multiprocess execution engine with shared-memory sequence transport.

The pipelines are embarrassingly parallel across anchors, strands and
chromosome pairs (the independence Darwin-WGA's co-processor exploits
with thousands of concurrent tiles).  :class:`ExecutionEngine` wraps a
:class:`concurrent.futures.ProcessPoolExecutor` with the pieces the
pipelines need on top of it:

* **shared-memory sequences** — a genome's code array is published once
  into :mod:`multiprocessing.shared_memory` and referenced by a small
  picklable :class:`SequenceHandle`, so dispatching a batch of anchors
  never re-pickles megabase arrays;
* **batch sizing** — anchors are dispatched in chunks large enough to
  amortise the per-task round trip but small enough to keep every
  worker busy;
* **supervised dispatch** — :meth:`dispatch`/:meth:`result` route work
  through a :class:`~repro.parallel.supervise.ResilientDispatcher`
  (retry/timeout/pool-rebuild/serial-fallback per the engine's
  :class:`~repro.resilience.policy.ResilienceOptions`), while
  :meth:`submit` stays the raw, unsupervised path.

Determinism is the callers' contract, not the engine's: result futures
are always consumed in submission order (see
:mod:`repro.core.extension`), so the engine itself only needs to be
an ordinary pool.

Crash hygiene: shared-memory blocks are OS-level files (``/dev/shm``)
that outlive a crashed process.  Every live engine registers with an
``atexit`` hook that unlinks its blocks on interpreter shutdown, and
:func:`install_signal_cleanup` chains the same release in front of the
existing SIGTERM/SIGINT handling for runs driven by the CLI.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from multiprocessing import shared_memory

from ..genome.sequence import Sequence
from ..obs.progress import NO_PROGRESS
from ..obs.session import TelemetryOptions
from ..obs.tracer import NULL_TRACER
from ..resilience.policy import ResilienceOptions

__all__ = [
    "ExecutionEngine",
    "SequenceHandle",
    "install_signal_cleanup",
]


@dataclass(frozen=True)
class SequenceHandle:
    """A picklable reference to a sequence living in shared memory.

    ``kind`` is ``"shm"`` (``payload`` is the shared-memory block name)
    or ``"bytes"`` (``payload`` carries the raw code bytes inline — the
    fallback used when a platform offers no shared memory).
    """

    kind: str
    payload: object
    length: int
    name: Optional[str]


def _default_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the warm interpreter) over spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


#: Engines with possibly-live shared-memory blocks, for emergency
#: cleanup on abnormal exit.  Weak references: a garbage-collected
#: engine has already been closed or leaked past help.
_LIVE_ENGINES: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_REGISTERED = False
#: Previously installed handlers for signals we chain in front of.
_CHAINED_SIGNALS: Dict[int, object] = {}


def _release_live_engines() -> None:
    """Unlink every live engine's shared-memory blocks (idempotent)."""
    for engine in list(_LIVE_ENGINES):
        engine.release_blocks()


def _ensure_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_release_live_engines)
        _ATEXIT_REGISTERED = True


def _signal_cleanup(signum, frame) -> None:
    _release_live_engines()
    previous = _CHAINED_SIGNALS.get(signum)
    if callable(previous):
        previous(signum, frame)
    else:
        # SIG_DFL/SIG_IGN: restore and re-raise so the process still
        # dies with the conventional signal exit status.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def install_signal_cleanup(signals=(signal.SIGTERM, signal.SIGINT)) -> None:
    """Release shared-memory blocks before the usual signal handling.

    Chains in front of whatever handler is installed (the default
    ``KeyboardInterrupt`` for SIGINT, process death for SIGTERM), so a
    killed run no longer strands its ``/dev/shm`` blocks.  Installing
    twice is a no-op; intended for process owners (the CLI), not
    library code.
    """
    for signum in signals:
        if signum in _CHAINED_SIGNALS:
            continue
        _CHAINED_SIGNALS[signum] = signal.getsignal(signum)
        signal.signal(signum, _signal_cleanup)


class ExecutionEngine:
    """A process pool plus shared-memory sequence registry.

    ``workers=1`` is a valid configuration: the engine reports itself
    inactive (:attr:`active` is False) and callers fall back to their
    serial code path, so one code path covers ``--workers N`` for all N.

    The engine owns every shared-memory block it publishes; call
    :meth:`close` (or use the engine as a context manager) to release
    the pool and unlink the blocks.  Blocks are additionally unlinked
    by an ``atexit`` hook if the process dies with the engine open.

    ``resilience`` carries the retry policy, optional fault-injection
    plan and recovery counters used by :meth:`dispatch`/:meth:`result`.
    ``telemetry`` (a :class:`~repro.obs.session.TelemetryOptions`)
    carries the progress sink, metric registry, optional telemetry bus
    and worker-profiling directory; when it holds a bus or a profile
    directory the pool's workers are initialized with the matching
    publisher/profiler.  It must be configured before the pool's first
    task (the executor is built lazily, so before the first
    ``submit``/``dispatch``).
    """

    def __init__(
        self,
        workers: int,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        resilience: Optional[ResilienceOptions] = None,
        telemetry: Optional[TelemetryOptions] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.resilience = resilience or ResilienceOptions()
        self.telemetry = telemetry
        self._context = mp_context or _default_context()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._dispatcher_obj = None
        #: id(seq) -> (seq, handle).  The strong sequence reference is
        #: deliberate: it pins the object so its id cannot be recycled
        #: by a new Sequence after garbage collection, which would
        #: silently alias a stale shared-memory block.
        self._shared: Dict[int, Tuple[Sequence, SequenceHandle]] = {}
        self._blocks: List[shared_memory.SharedMemory] = []
        self._closed = False
        self._owner_pid = os.getpid()
        _ensure_atexit()
        _LIVE_ENGINES.add(self)

    # -- lifecycle ---------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether work should actually fan out (more than one worker)."""
        return self.workers > 1 and not self._closed

    @property
    def bus(self):
        """The telemetry bus, or None when not configured."""
        return (
            self.telemetry.bus if self.telemetry is not None else None
        )

    @property
    def progress(self):
        """The progress sink (never None; defaults to the no-op one)."""
        return (
            self.telemetry.progress
            if self.telemetry is not None
            else NO_PROGRESS
        )

    def adopt_telemetry(self, telemetry: TelemetryOptions) -> bool:
        """Install ``telemetry`` on an engine that has none yet.

        Returns True on success.  Refused (False) once the executor is
        built — its workers were initialized without a bus publisher,
        so adopting one then would silently miss their events — or when
        a different telemetry bundle is already installed.
        """
        if self.telemetry is telemetry:
            return True
        if self.telemetry is not None or self._executor is not None:
            return False
        self.telemetry = telemetry
        return True

    def _worker_initializer(self):
        """(initializer, initargs) wiring telemetry into new workers.

        The bus queue can only cross a process boundary while the pool
        is constructing its workers, which is exactly what the
        ``initializer`` mechanism provides (under fork *and* spawn);
        passing the queue as a task argument would raise.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return None, ()
        endpoint = (
            telemetry.bus.endpoint()
            if telemetry.bus is not None
            else None
        )
        profile_dir = (
            str(telemetry.profile_dir) if telemetry.profile_dir else None
        )
        if endpoint is None and profile_dir is None:
            return None, ()
        from ..obs.bus import worker_init

        heartbeat = getattr(telemetry, "heartbeat_interval", None)
        return worker_init, (endpoint, profile_dir, heartbeat)

    def _pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._executor is None:
            initializer, initargs = self._worker_initializer()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._context,
                initializer=initializer,
                initargs=initargs,
            )
        return self._executor

    def rebuild(self, terminate: bool = False) -> None:
        """Replace a (typically broken) executor with a fresh pool.

        Shared-memory blocks belong to this process, not the pool, so
        they survive the rebuild; new workers simply re-attach.  The
        next :meth:`submit` lazily constructs the replacement pool.

        ``terminate=True`` force-kills the old pool's worker processes
        first.  Required for *hung* (not crashed) workers: a wedged or
        SIGSTOP'd worker never drains its queue, so without the kill the
        executor's manager thread — and eventually ``close()`` or
        interpreter shutdown — would wait on it forever.  SIGKILL acts
        even on a stopped process.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._executor is not None:
            if terminate:
                processes = getattr(self._executor, "_processes", None)
                for process in tuple((processes or {}).values()):
                    try:
                        process.kill()
                    except (OSError, ValueError, AttributeError):
                        pass  # pragma: no cover - already gone
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def release_blocks(self) -> None:
        """Unlink every published shared-memory block (idempotent).

        Only the creating process may unlink; forked children that
        inherited this engine object leave the blocks to their owner.
        """
        if os.getpid() != self._owner_pid:
            return
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._blocks.clear()
        self._shared.clear()

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory block."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.release_blocks()
        _LIVE_ENGINES.discard(self)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- sequence transport ------------------------------------------
    def share(self, seq: Sequence) -> SequenceHandle:
        """Publish ``seq`` to workers; repeated calls reuse the block.

        Deduplication is by object identity, with the engine holding a
        reference to every shared sequence so an id can never be
        recycled onto a different object while its entry is alive.
        """
        entry = self._shared.get(id(seq))
        if entry is not None:
            return entry[1]
        codes = seq.codes
        try:
            block = shared_memory.SharedMemory(
                create=True, size=max(1, codes.nbytes)
            )
        except (OSError, FileNotFoundError):
            # No usable /dev/shm: fall back to shipping bytes inline.
            handle = SequenceHandle(
                kind="bytes",
                payload=codes.tobytes(),
                length=len(seq),
                name=seq.name,
            )
        else:
            block.buf[: codes.nbytes] = codes.tobytes()
            self._blocks.append(block)
            handle = SequenceHandle(
                kind="shm",
                payload=block.name,
                length=len(seq),
                name=seq.name,
            )
        self._shared[id(seq)] = (seq, handle)
        return handle

    # -- dispatch ----------------------------------------------------
    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit one task to the pool (raw, unsupervised)."""
        return self._pool().submit(fn, *args, **kwargs)

    def dispatch(self, fn, /, *args, key: str = ""):
        """Submit one task under supervision; returns a ticket.

        ``key`` names the work unit for deterministic jitter and fault
        schedules; pass it to :meth:`result` to collect the value with
        retry/rebuild/serial-fallback recovery applied.
        """
        return self._dispatcher().submit(fn, *args, key=key)

    def result(self, ticket, tracer=NULL_TRACER):
        """Collect a dispatched ticket's result (see ``dispatch``).

        Collection points double as telemetry poll points: any events
        workers streamed while we waited are routed (and their spans
        grafted onto ``tracer``) before the value is returned.
        """
        value = self._dispatcher().result(ticket, tracer=tracer)
        bus = self.bus
        if bus is not None:
            bus.poll()
        return value

    def poll(self, ticket) -> bool:
        """Whether ``ticket`` has settled, without blocking.

        Advisory only: the streaming coordinator uses it for eager
        in-order replay (drain finished results before dispatching new
        speculation so commits see the freshest coverage grid).  All
        recovery still happens inside :meth:`result`.
        """
        return self._dispatcher().poll(ticket)

    def _dispatcher(self):
        if self._dispatcher_obj is None:
            # Deferred sibling import: supervise pulls in resilience
            # machinery that plain submit() users never need.
            from .supervise import ResilientDispatcher

            self._dispatcher_obj = ResilientDispatcher(
                self, self.resilience
            )
        return self._dispatcher_obj

    def batch_size_for(self, items: int, chunk_size: int = 0) -> int:
        """Anchors per dispatched batch.

        An explicit ``chunk_size`` wins; otherwise aim for ~8 batches
        per worker (so stragglers rebalance) capped at 32 anchors per
        round trip.  Small inputs are floored to one balanced batch per
        worker: ``min(items, workers)`` batches instead of ``items``
        single-anchor round trips.
        """
        if chunk_size > 0:
            return chunk_size
        if items <= 0:
            return 1
        size = items // (self.workers * 8)
        if size < 1:
            # Ceiling division: every available worker gets one batch.
            size = -(-items // min(items, self.workers))
        return max(1, min(32, size))
