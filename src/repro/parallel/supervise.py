"""Supervised dispatch: retries, deadlines, pool rebuilds, fallback.

:class:`ResilientDispatcher` wraps an
:class:`~repro.parallel.engine.ExecutionEngine` with the recovery
ladder a production run needs:

1. **retry** — a failed or timed-out attempt is re-dispatched with
   bounded exponential backoff (deterministic jitter, see
   :mod:`repro.resilience.policy`);
2. **rebuild** — ``BrokenProcessPool`` (a worker died abruptly) tears
   down the executor, builds a fresh one on the same shared-memory
   blocks, and re-dispatches *every* in-flight ticket — not just the
   one whose result raised;
3. **serial fallback** — a ticket that exhausts its retry budget is
   executed in-process.  The fallback runs the exact task function on
   the exact arguments, so a poisoned batch costs throughput, never
   correctness; a genuinely deterministic task error surfaces from the
   fallback with its original traceback.

Because callers consume results strictly in submission order (the
engine's existing determinism contract), recovery can replace *when*
and *where* a batch runs without ever changing *what* is committed:
output stays byte-identical to the serial run under any fault schedule.

Fault injection (:class:`~repro.resilience.faults.FaultPlan`) hooks in
at exactly two points — task submission (crash/error faults swap in a
sabotage task) and result collection (timeout faults) — so the recovery
paths exercised under injection are the identical code paths real
faults take.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER
from ..resilience.faults import (
    InjectedFault,
    injected_task_error,
    injected_worker_crash,
    injected_worker_hang,
)
from ..resilience.policy import ResilienceOptions, backoff_delay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ExecutionEngine

__all__ = ["ResilientDispatcher", "Ticket"]


class _WorkerHang(Exception):
    """Internal signal: the liveness sentinel declared a worker hung."""


class Ticket:
    """One supervised task: what to run, plus its live attempt state."""

    __slots__ = ("fn", "args", "key", "attempt", "future")

    def __init__(self, fn: Callable, args: Tuple, key: str) -> None:
        self.fn = fn
        self.args = args
        self.key = key
        self.attempt = 0
        self.future = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ticket(key={self.key!r}, attempt={self.attempt})"


class ResilientDispatcher:
    """Applies a :class:`RetryPolicy` to an execution engine's pool.

    ``sleep`` is injectable so tests can run retry storms without
    real backoff waits.
    """

    def __init__(
        self,
        engine: "ExecutionEngine",
        options: Optional[ResilienceOptions] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._engine = engine
        self.options = options or ResilienceOptions()
        self._sleep = sleep
        self._outstanding: List[Ticket] = []

    # -- submission --------------------------------------------------
    def submit(self, fn: Callable, /, *args, key: str = "") -> Ticket:
        """Dispatch a task under supervision; returns its ticket.

        A streamed caller interleaves submits with collections, so an
        asynchronously-dying worker (e.g. an injected crash still in
        flight) can break the pool *between* collections — the rebuild
        ladder therefore also runs here, not only in :meth:`result`.
        """
        ticket = Ticket(fn, args, key)
        self._outstanding.append(ticket)
        try:
            self._start(ticket)
        except BrokenProcessPool:
            self._rebuild_and_redispatch()
        return ticket

    def _start(self, ticket: Ticket) -> None:
        """(Re-)dispatch one ticket, applying crash/error injection."""
        plan = self.options.fault_plan
        stats = self.options.stats
        if plan is not None and plan.decide(
            "crash", ticket.key, ticket.attempt
        ):
            stats.inject("crash")
            ticket.future = self._engine.submit(injected_worker_crash)
        elif plan is not None and plan.decide(
            "error", ticket.key, ticket.attempt
        ):
            stats.inject("error")
            ticket.future = self._engine.submit(
                injected_task_error, ticket.key
            )
        elif plan is not None and plan.decide(
            "hang", ticket.key, ticket.attempt
        ):
            stats.inject("hang")
            ticket.future = self._engine.submit(injected_worker_hang)
        else:
            ticket.future = self._engine.submit(ticket.fn, *ticket.args)

    def _rebuild_and_redispatch(self) -> None:
        """Fresh pool, every outstanding ticket re-dispatched.

        Attempts are *not* incremented: no result was lost to a
        deadline or error, the substrate died — exactly the result-path
        ``broken_pool`` treatment, minus the per-ticket retry
        accounting (that still happens in :meth:`result` when a ticket
        actually observes the breakage).
        """
        self.options.stats.pool_rebuilds += 1
        self._engine.rebuild()
        for ticket in self._outstanding:
            try:
                self._start(ticket)
            except BrokenProcessPool:
                # A still-landing crash broke the fresh pool mid
                # re-dispatch; start over with another rebuild.
                return self._rebuild_and_redispatch()

    # -- collection --------------------------------------------------
    def poll(self, ticket: Ticket) -> bool:
        """Whether the ticket's current attempt has settled (no block).

        Advisory, for eager in-order replay in the streaming
        coordinator: True means :meth:`result` will not wait on the
        healthy-path future.  A future settled with a *task* exception
        still polls True and drives the retry/rebuild/fallback ladder
        inside :meth:`result`, and an injected timeout may still make
        :meth:`result` retry.

        One recovery action does run here: a future settled with
        ``BrokenProcessPool`` means a worker died while we were not
        looking, and every outstanding future died with it.  Surfacing
        that as "settled" would make a streamed caller drain a corpse
        — so, exactly as :meth:`submit` does for dispatch-time
        breakage, the pool is rebuilt and every outstanding ticket
        re-dispatched immediately (attempts unchanged: no deadline or
        task error was observed).  A serving loop polls far more often
        than it submits, so this is where asynchronous worker death is
        usually discovered first.
        """
        future = ticket.future
        if future is None or not future.done():
            return False
        if not future.cancelled():
            error = future.exception(timeout=0)
            if isinstance(error, BrokenProcessPool):
                self._rebuild_and_redispatch()
                future = ticket.future
                return future is not None and future.done()
        return True

    def _await(self, ticket: Ticket, monitor, timeout: Optional[float]):
        """Wait for the future, watching worker liveness between slices.

        Without a monitor this is a plain ``result(timeout)``.  With
        one, the wait proceeds in ``poll_interval`` slices; between
        slices the monitor is asked whether any beating worker has gone
        silent past its deadline, which raises :class:`_WorkerHang` —
        the only way a SIGSTOP'd or infinitely-looping worker (which
        neither errors nor breaks the pool) ever surfaces.
        """
        if monitor is None:
            return ticket.future.result(timeout=timeout)
        slice_seconds = monitor.poll_interval
        if timeout is not None:
            slice_seconds = min(slice_seconds, timeout)
        waited = 0.0
        while True:
            try:
                return ticket.future.result(timeout=slice_seconds)
            except FutureTimeout:
                if monitor.overdue():
                    ticket.future.cancel()
                    raise _WorkerHang(ticket.key) from None
                waited += slice_seconds
                if timeout is not None and waited >= timeout:
                    raise

    def result(self, ticket: Ticket, tracer=NULL_TRACER):
        """Block for a ticket's result, driving the recovery ladder."""
        policy = self.options.policy
        plan = self.options.fault_plan
        stats = self.options.stats
        monitor = self.options.liveness
        while True:
            cause = None
            if plan is not None and plan.decide(
                "timeout", ticket.key, ticket.attempt
            ):
                # Simulated deadline: don't wait for the (healthy)
                # future — recovery proceeds exactly as for a real one.
                stats.inject("timeout")
                cause = "timeout"
            else:
                try:
                    value = self._await(ticket, monitor, policy.timeout)
                except FutureTimeout:
                    cause = "timeout"
                except _WorkerHang:
                    cause = "hang"
                except BrokenProcessPool:
                    cause = "broken_pool"
                except InjectedFault:
                    cause = "task_error"
                except Exception:
                    # Transient task failures retry; a deterministic bug
                    # exhausts the budget and re-raises from the serial
                    # fallback with its original traceback.
                    cause = "task_error"
                else:
                    self._discard(ticket)
                    return value

            ticket.attempt += 1
            if cause == "timeout":
                stats.timeouts += 1
            if cause == "hang":
                # A wedged worker cannot be joined or reasoned with:
                # terminate it, rebuild the pool, and re-arm the
                # sentinel so a *still*-frozen replacement escalates
                # again on the next attempt.
                stats.hangs += 1
                stats.pool_rebuilds += 1
                self._engine.rebuild(terminate=True)
                if monitor is not None:
                    monitor.escalated()
            if cause == "broken_pool":
                stats.pool_rebuilds += 1
                self._engine.rebuild()
            progress = self._engine.progress
            if ticket.attempt > policy.max_retries:
                self._discard(ticket)
                stats.serial_fallbacks += 1
                progress.fell_back(ticket.key, cause)
                with tracer.span(
                    "recovery",
                    action="serial_fallback",
                    key=ticket.key,
                    cause=cause,
                ):
                    return ticket.fn(*ticket.args)
            stats.retries += 1
            progress.retried(ticket.key, cause, ticket.attempt)
            with tracer.span(
                "recovery",
                action="retry",
                key=ticket.key,
                cause=cause,
                attempt=ticket.attempt,
            ):
                delay = backoff_delay(policy, ticket.attempt, ticket.key)
                if delay > 0:
                    self._sleep(delay)
                if cause in ("broken_pool", "hang"):
                    # Every outstanding future died with the pool;
                    # re-dispatch them all onto the fresh executor.
                    for other in self._outstanding:
                        self._start(other)
                else:
                    self._start(ticket)

    def _discard(self, ticket: Ticket) -> None:
        try:
            self._outstanding.remove(ticket)
        except ValueError:  # pragma: no cover - already collected
            pass
