"""Parallel execution engine: multiprocess fan-out of pipeline work.

The paper's co-processor extracts its speedup from the independence of
seed-filter-extend work items; this package is the software analogue —
an :class:`~repro.parallel.engine.ExecutionEngine` (process pool plus
shared-memory sequence transport).  The deterministic orchestrators
that fan anchors and chromosome-pair units out across it are domain
logic and live below this layer, in :mod:`repro.core.extension` and
:mod:`repro.core.worker`; their names are re-exported here for
convenience (``parallel`` may import ``core`` — the reverse direction
is what the layer DAG forbids; the pipelines reach up only through
deferred construction at call time).

Task callables submitted to the engine are pickled **by reference**:
they must be module-level functions, never lambdas or closures
(enforced by ``repro lint`` rules PAR001/PAR002).
"""

from ..core.extension import extend_anchors
from ..core.worker import align_unit_task, extend_batch_task, resolve_sequence
from .engine import ExecutionEngine, SequenceHandle, install_signal_cleanup
from .supervise import ResilientDispatcher, Ticket

__all__ = [
    "ExecutionEngine",
    "ResilientDispatcher",
    "SequenceHandle",
    "Ticket",
    "align_unit_task",
    "extend_anchors",
    "extend_batch_task",
    "install_signal_cleanup",
    "resolve_sequence",
]
