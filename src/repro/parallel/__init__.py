"""Parallel execution engine: multiprocess fan-out of pipeline work.

The paper's co-processor extracts its speedup from the independence of
seed-filter-extend work items; this package is the software analogue —
a :class:`~repro.parallel.engine.ExecutionEngine` (process pool plus
shared-memory sequence transport) and deterministic orchestrators that
fan anchors (:func:`~repro.parallel.extension.extend_anchors`) and
chromosome-pair units out across it while keeping the output
byte-identical to a serial run for any worker count.
"""

from .engine import ExecutionEngine, SequenceHandle
from .extension import extend_anchors
from .worker import align_unit_task, extend_batch_task, resolve_sequence

__all__ = [
    "ExecutionEngine",
    "SequenceHandle",
    "align_unit_task",
    "extend_anchors",
    "extend_batch_task",
    "resolve_sequence",
]
