"""Suppression comments for :mod:`repro.analysis` findings.

Two forms, both requiring a written reason (a reasonless suppression is
itself a finding, ``SUP001``)::

    x = weird_but_ok()  # repro: allow[DET004] frozen config, order-free
    # repro: allow[KER002] traceback walk is O(path), not O(n*m)
    for i in range(n):
        ...
    # repro: allow-file[KER005] command-line entry point output

``allow[...]`` scopes to its own physical line when it trails code, or
to the next line when it stands alone; ``allow-file[...]`` scopes to the
whole file.  Multiple rule ids are comma-separated.  Unknown rule ids
are flagged (``SUP002``) so typos cannot silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .findings import Finding, Severity

_PATTERN = re.compile(
    r"#\s*repro:\s*(?P<form>allow-file|allow)\s*"
    r"\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class SuppressionComment:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    col: int
    form: str  # "allow" | "allow-file"
    rules: Tuple[str, ...]
    reason: str
    standalone: bool  # nothing but whitespace precedes the comment


@dataclass
class Suppressions:
    """All suppression directives of one file, with scope resolution."""

    comments: List[SuppressionComment] = field(default_factory=list)
    _by_line: Dict[int, Set[str]] = field(default_factory=dict)
    _file_wide: Set[str] = field(default_factory=set)

    def add(self, comment: SuppressionComment) -> None:
        self.comments.append(comment)
        if comment.form == "allow-file":
            self._file_wide.update(comment.rules)
            return
        target = comment.line + 1 if comment.standalone else comment.line
        self._by_line.setdefault(target, set()).update(comment.rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_wide:
            return True
        return rule in self._by_line.get(line, ())


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression comment from ``source``.

    Tolerates files that do not tokenize (the engine reports those as
    parse errors separately) by returning an empty table.
    """
    suppressions = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        line, col = token.start
        prefix = token.line[:col]
        suppressions.add(
            SuppressionComment(
                line=line,
                col=col,
                form=match.group("form"),
                rules=rules,
                reason=match.group("reason").strip(),
                standalone=not prefix.strip(),
            )
        )
    return suppressions


def lint_suppressions(
    path: str, suppressions: Suppressions, known_rules: Sequence[str]
) -> Iterator[Finding]:
    """Meta-lint the suppression comments themselves.

    ``SUP001`` (missing reason) and ``SUP002`` (unknown rule id) are not
    themselves suppressible — a suppression must stand on its own.
    """
    known = set(known_rules)
    for comment in suppressions.comments:
        if not comment.reason:
            yield Finding(
                rule="SUP001",
                severity=Severity.ERROR,
                path=path,
                line=comment.line,
                col=comment.col,
                message=(
                    "suppression without a reason: write "
                    "`# repro: allow[RULE] <why this is intentional>`"
                ),
            )
        if not comment.rules:
            yield Finding(
                rule="SUP002",
                severity=Severity.ERROR,
                path=path,
                line=comment.line,
                col=comment.col,
                message="suppression lists no rule ids",
            )
        for rule in comment.rules:
            if rule not in known:
                yield Finding(
                    rule="SUP002",
                    severity=Severity.ERROR,
                    path=path,
                    line=comment.line,
                    col=comment.col,
                    message=f"suppression names unknown rule {rule!r}",
                )
