"""Analysis engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately self-contained (stdlib only, no imports from
the rest of :mod:`repro`) so the layering rules it hosts can place
``repro.analysis`` at the bottom of the DAG alongside ``repro.obs``.

Entry points:

* :func:`analyze_paths` — lint files/directories from disk (the CLI).
* :func:`analyze_sources` — lint in-memory ``{modname: source}``
  mappings (the test fixtures).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .findings import Finding, Severity
from .registry import MODULE_RULES, PROJECT_RULES, known_rule_ids
from .suppress import Suppressions, lint_suppressions, parse_suppressions

# Rule modules register themselves on import.
from . import rules  # noqa: F401  (import has the side effect of registration)


@dataclass
class ModuleInfo:
    """One parsed source file, ready for the rules."""

    path: str
    modname: str
    source: str
    tree: Optional[ast.Module]
    suppressions: Suppressions

    @property
    def package(self) -> str:
        """Top-level repro subpackage ("align" for repro.align.stats);
        root modules (repro.cli, repro.__init__) map to "cli"/"repro"."""
        parts = self.modname.split(".")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return parts[-1] if parts else self.modname


@dataclass
class AnalysisResult:
    """Findings split by suppression state, plus run metadata."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    #: Findings present in a ``--baseline`` file (reported separately).
    baselined: List[Finding] = field(default_factory=list)
    #: The interprocedural context when the flow pass ran (``--flow`` /
    #: ``--graph``); ``None`` for plain syntactic runs.
    flow_context: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.findings


def find_package_root(path: Path) -> Path:
    """Ascend from a file/dir to the directory that contains the
    top-level package (the first parent without an ``__init__.py``)."""
    current = path if path.is_dir() else path.parent
    while (current / "__init__.py").exists() and current.parent != current:
        current = current.parent
    return current


def module_name_for(path: Path, root: Optional[Path] = None) -> str:
    """Dotted module name of ``path`` relative to its package root.

    Package ``__init__`` files keep the ``__init__`` component
    (``repro.genome.__init__``): relative-import level stripping then
    works uniformly for packages and plain modules.
    """
    root = root or find_package_root(path)
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = Path(path.name)
    parts = list(relative.with_suffix("").parts)
    return ".".join(parts) if parts else path.stem


def load_module(path: Path, modname: Optional[str] = None) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    return make_module(
        source,
        modname if modname is not None else module_name_for(path),
        str(path),
    )


def make_module(source: str, modname: str, path: str) -> ModuleInfo:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        tree = None
    return ModuleInfo(
        path=path,
        modname=modname,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def collect_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving order.
    seen = set()
    unique = []
    for file in files:
        key = file.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(file)
    return unique


def _selected(rules, select: Optional[Sequence[str]]):
    if not select:
        return rules
    wanted = set(select)
    return [rule for rule in rules if rule.id in wanted]


def analyze_modules(
    modules: List[ModuleInfo],
    select: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> AnalysisResult:
    """Run every (selected) rule over already-parsed modules.

    With ``flow=True`` the interprocedural pass (call graph + effect
    fixed point + FLOW001–FLOW003/KER006) runs as well; its findings
    go through the same suppression filter, and the built
    :class:`FlowContext` is kept on the result for graph export.
    """
    result = AnalysisResult(files=[m.path for m in modules])
    raw: List[Finding] = []
    hard: List[Finding] = []  # never suppressible
    known = known_rule_ids()
    for module in modules:
        hard.extend(
            lint_suppressions(module.path, module.suppressions, known)
        )
        if module.tree is None:
            hard.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=module.path,
                    line=1,
                    col=0,
                    message="file does not parse",
                )
            )
            continue
        for rule in _selected(MODULE_RULES, select):
            raw.extend(rule.check(module))
    parsed = [m for m in modules if m.tree is not None]
    for rule in _selected(PROJECT_RULES, select):
        raw.extend(rule.check(parsed))

    if flow:
        # Imported lazily: the flow layer is heavier than the syntactic
        # rules and most invocations never need it.
        from .flow import build_flow_context, run_flow_rules

        context = build_flow_context(parsed)
        result.flow_context = context
        raw.extend(run_flow_rules(context, select=select))

    by_path: Dict[str, Suppressions] = {
        m.path: m.suppressions for m in modules
    }
    for finding in raw:
        table = by_path.get(finding.path)
        if table is not None and table.is_suppressed(
            finding.rule, finding.line
        ):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.extend(hard)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result


def analyze_paths(
    paths: Iterable[Path],
    select: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> AnalysisResult:
    """Lint files and/or directory trees from disk."""
    files = collect_files(Path(p) for p in paths)
    modules = [load_module(path) for path in files]
    return analyze_modules(modules, select=select, flow=flow)


def analyze_sources(
    sources: Dict[str, str],
    select: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> AnalysisResult:
    """Lint in-memory sources keyed by module name (test fixtures).

    The pseudo-path of each module is its module name with slashes, so
    suppression scoping and reports behave exactly as for disk files.
    """
    modules = [
        make_module(source, modname, modname.replace(".", "/") + ".py")
        for modname, source in sources.items()
    ]
    return analyze_modules(modules, select=select, flow=flow)
