"""Rule registry for :mod:`repro.analysis`.

Rules come in two scopes:

* **module** rules see one parsed file at a time
  (``check(module) -> findings``);
* **project** rules see every module at once
  (``check(modules) -> findings``) — the layering/import-graph checks
  live here.

Registration is declarative::

    @module_rule(
        "DET001", "unseeded-rng", Severity.ERROR,
        "RNG constructed without an explicit seed",
    )
    def check_unseeded(module):
        ...

Rule ids are stable identifiers (they appear in suppression comments
and CI reports); never reuse a retired id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .findings import Severity

#: Ids reserved by the engine itself (parse failures, suppression
#: meta-lint) — valid in reports but not backed by a registered rule.
ENGINE_RULES: Dict[str, str] = {
    "PARSE": "file does not parse",
    "SUP001": "suppression comment without a reason",
    "SUP002": "suppression comment with unknown/missing rule ids",
}

#: Ids contributed by the interprocedural layer (``repro lint --flow``).
#: They are always *known* (suppression comments naming them are valid
#: even in a plain run) but only fire when the flow pass is enabled.
FLOW_RULES: Dict[str, str] = {
    "FLOW001": (
        "nondeterministic effect reachable from worker task code"
    ),
    "FLOW002": "argument object mutated after pool submission",
    "FLOW003": (
        "unpicklable value reaches a pool submit through a call chain"
    ),
    "KER006": (
        "dtype-lattice narrowing can overflow the packed DP dtype"
    ),
}


@dataclass(frozen=True)
class Rule:
    """A registered rule: metadata plus its check callable."""

    id: str
    name: str
    severity: Severity
    scope: str  # "module" | "project"
    description: str
    check: Callable


MODULE_RULES: List[Rule] = []
PROJECT_RULES: List[Rule] = []


def _register(bucket: List[Rule], scope: str):
    def decorator_factory(
        rule_id: str, name: str, severity: Severity, description: str
    ):
        def decorator(fn: Callable) -> Callable:
            if any(r.id == rule_id for r in all_rules()):
                raise ValueError(f"duplicate rule id {rule_id!r}")
            bucket.append(
                Rule(
                    id=rule_id,
                    name=name,
                    severity=severity,
                    scope=scope,
                    description=description,
                    check=fn,
                )
            )
            return fn

        return decorator

    return decorator_factory


module_rule = _register(MODULE_RULES, "module")
project_rule = _register(PROJECT_RULES, "project")


def all_rules() -> List[Rule]:
    return MODULE_RULES + PROJECT_RULES


def known_rule_ids() -> List[str]:
    return (
        [rule.id for rule in all_rules()]
        + sorted(ENGINE_RULES)
        + sorted(FLOW_RULES)
    )
