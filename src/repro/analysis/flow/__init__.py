"""Interprocedural effect and dataflow analysis (``repro lint --flow``).

The per-module rules in :mod:`repro.analysis.rules` are syntactic: an
unseeded RNG two calls deep inside worker-dispatched code is invisible
to DET001, and a wide score row silently cast into a narrow slab via an
``out=`` argument is invisible to KER001.  This package closes those
gaps with a whole-program pass:

* :mod:`.callgraph` — a module-qualified call graph over the project
  tree (imports and aliases resolved through each module's own import
  table, ``__init__`` re-exports followed, attribute calls handled
  conservatively by method-name union);
* :mod:`.effects` — a fixed-point *effect inference* classifying every
  function by the transitive effects it can reach (unseeded/global RNG,
  wall clock, stdout/stderr, filesystem writes, global or class
  attribute mutation, ``os.environ``);
* :mod:`.dtypeflow` — a numpy dtype lattice propagated through the DP
  kernels of ``repro.align``, catching narrowing stores whose value
  range (derived from :class:`ScoringScheme` bounds) can overflow the
  packed DP dtype;
* :mod:`.rules` — the FLOW001–FLOW003 / KER006 rules built on top,
  plus the ``--graph`` call-graph/effect report.

Everything here stays stdlib-only, like the rest of
:mod:`repro.analysis`.
"""

from .callgraph import CallGraph, FunctionNode, build_call_graph
from .effects import (
    EFFECT_KINDS,
    EffectAnalysis,
    EffectSite,
    infer_effects,
)
from .engine import FlowContext, build_flow_context
from .rules import FLOW_RULE_IDS, run_flow_rules

__all__ = [
    "CallGraph",
    "EFFECT_KINDS",
    "EffectAnalysis",
    "EffectSite",
    "FLOW_RULE_IDS",
    "FlowContext",
    "FunctionNode",
    "build_call_graph",
    "build_flow_context",
    "infer_effects",
    "run_flow_rules",
]
