"""The interprocedural rules: FLOW001–FLOW003 and KER006.

These run only under ``repro lint --flow`` (they need the whole-project
call graph, so they are project-scope and meaningfully slower than the
syntactic rules).  Findings feed through the same suppression machinery
as every other rule.

FLOW001  a nondeterministic effect (unseeded RNG, wall clock, direct
         stdout/stderr) is *reachable* from worker task code — the
         interprocedural upgrade of DET001–DET003/OBS002.  Worker task
         code means: any function submitted to
         ``ExecutionEngine.submit``/``dispatch``, any module-level
         ``*_task`` function, and everything in ``repro.core.worker``.
FLOW002  an argument object is mutated *after* being submitted to the
         pool — under fork the mutation may or may not be visible to
         the worker depending on dispatch timing; under spawn it never
         is.  Either way the result depends on a race.
FLOW003  an unpicklable value (lambda, generator expression, nested
         function, open file handle) reaches a submit call through a
         call chain — the interprocedural upgrade of PAR001/PAR002.
KER006   dtype-lattice propagation through the DP kernels: a wide
         score value is stored into packed-DP storage whose capacity is
         below the ScoringScheme-derived value bound (see
         :mod:`.dtypeflow`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..findings import Finding, Severity
from .callgraph import CallGraph, CallSite, FunctionNode
from .dtypeflow import DP_VALUE_BOUND, SCORING_PEAK, module_narrowings
from .effects import EffectAnalysis

#: Rule ids contributed by the flow layer (joined into known_rule_ids).
FLOW_RULE_IDS = ("FLOW001", "FLOW002", "FLOW003", "KER006")

#: Effects that make worker output nondeterministic or interleaved.
_GATED_KINDS = ("rng", "clock", "stdout")

_KIND_LABEL = {
    "rng": "unseeded/global RNG",
    "clock": "wall-clock read",
    "stdout": "direct stdout/stderr write",
}

#: Pool dispatch entry points (ExecutionEngine.submit / .dispatch).
_DISPATCH_METHODS = ("submit", "dispatch")


def _dispatch_calls(function: FunctionNode) -> Iterator[CallSite]:
    for site in function.calls:
        func = site.node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DISPATCH_METHODS
            and site.node.args
        ):
            yield site


def _submitted_roots(graph: CallGraph) -> Dict[str, str]:
    """qualname -> why it is worker-root (for the finding message)."""
    roots: Dict[str, str] = {}
    for function in graph.functions.values():
        for site in _dispatch_calls(function):
            task = site.node.args[0]
            if not isinstance(task, ast.Name):
                continue
            targets, _ = _resolve_task_name(graph, function, task.id)
            for target in targets:
                roots.setdefault(
                    target,
                    f"submitted to the pool at "
                    f"{function.path}:{site.line}",
                )
    for qualname, function in graph.functions.items():
        if (
            function.class_name is None
            and function.name.endswith("_task")
            # The analyzer itself never runs in workers; its rule
            # checkers (check_lambda_task, ...) are not task code.
            and not function.modname.startswith("repro.analysis")
        ):
            if "<locals>" not in qualname:
                roots.setdefault(qualname, "module-level *_task function")
        if _is_worker_module(function.modname):
            roots.setdefault(
                qualname, f"defined in worker module {function.modname}"
            )
    return roots


def _is_worker_module(modname: str) -> bool:
    parts = modname.split(".")
    return "worker" in parts or "workers" in parts


def _resolve_task_name(
    graph: CallGraph, function: FunctionNode, name: str
) -> Tuple[Tuple[str, ...], Optional[str]]:
    """Resolve a bare task name the same way the call graph would."""
    # Local defs shadow module-level ones.
    scope = function.qualname
    while True:
        candidate = f"{scope}.<locals>.{name}"
        if candidate in graph.functions:
            return (candidate,), None
        if ".<locals>." not in scope:
            break
        scope = scope.rsplit(".<locals>.", 1)[0]
    candidate = f"{function.modname}.{name}"
    if candidate in graph.functions:
        return (candidate,), None
    # Imported task: find any project def with that terminal name.
    matches = tuple(
        qualname
        for qualname, node in graph.functions.items()
        if node.name == name and node.class_name is None
        and "<locals>" not in qualname
    )
    return matches, None


def check_flow001(
    graph: CallGraph, effects: EffectAnalysis
) -> Iterator[Finding]:
    roots = _submitted_roots(graph)
    for qualname in sorted(roots):
        function = graph.functions.get(qualname)
        if function is None:
            continue
        for kind in _GATED_KINDS:
            if kind not in effects.effects.get(qualname, {}):
                continue
            chain = effects.describe_chain(qualname, kind)
            yield Finding(
                rule="FLOW001",
                severity=Severity.ERROR,
                path=function.path,
                line=function.line,
                col=function.col,
                message=(
                    f"{_KIND_LABEL[kind]} reachable from worker task "
                    f"{function.name} ({roots[qualname]}): {chain} — "
                    "route the effect through repro.obs or thread an "
                    "explicit seed/clock through the task arguments"
                ),
            )


# ---------------------------------------------------------------------------
# FLOW002: mutation of an argument object after it was submitted.
# ---------------------------------------------------------------------------

#: In-place mutation method names (same set the effect pass uses).
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "appendleft",
    "extendleft",
    "sort",
    "reverse",
    "fill",
}


def _argument_names(call: ast.Call) -> Set[str]:
    """Names passed as task *arguments* (everything after the callable)."""
    names: Set[str] = set()
    for arg in call.args[1:]:
        if isinstance(arg, ast.Name):
            names.add(arg.id)
        elif isinstance(arg, ast.Starred) and isinstance(
            arg.value, ast.Name
        ):
            names.add(arg.value.id)
    for keyword in call.keywords:
        if isinstance(keyword.value, ast.Name):
            names.add(keyword.value.id)
    return names


def _mutation_of(node: ast.AST, live: Set[str]) -> Optional[Tuple[str, str]]:
    """(name, how) when ``node`` mutates a tracked name in place."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            base: ast.AST = target
            depth = 0
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
                depth += 1
            if depth and isinstance(base, ast.Name) and base.id in live:
                how = (
                    "subscript store"
                    if isinstance(target, ast.Subscript)
                    else "attribute store"
                )
                return base.id, how
    elif isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        receiver = node.func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in live
            and node.func.attr in _MUTATING_METHODS
        ):
            return receiver.id, f".{node.func.attr}() call"
    return None


def _rebound_names(node: ast.AST) -> Set[str]:
    """Names plainly rebound by ``node`` (rebinding ends tracking)."""
    rebound: Set[str] = set()
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                rebound.add(target.id)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(node.target, ast.Name):
            rebound.add(node.target.id)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        if isinstance(node.target, ast.Name):
            rebound.add(node.target.id)
    return rebound


def check_flow002(graph: CallGraph) -> Iterator[Finding]:
    for qualname in sorted(graph.functions):
        function = graph.functions[qualname]
        submits = [
            (site, _argument_names(site.node))
            for site in _dispatch_calls(function)
        ]
        submits = [(site, names) for site, names in submits if names]
        if not submits:
            continue
        # Walk the body in source order; statements after each submit
        # that mutate a submitted name (without rebinding it first) are
        # racy under fork and lost under spawn.
        body = (
            function.node.body
            if not isinstance(function.node, ast.Lambda)
            else []
        )
        for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if not hasattr(node, "lineno"):
                continue
            for site, live in submits:
                if node.lineno <= site.line:
                    continue
                live -= _rebound_names(node)
                hit = _mutation_of(node, live)
                if hit is None:
                    continue
                name, how = hit
                live.discard(name)  # one finding per name per submit
                yield Finding(
                    rule="FLOW002",
                    severity=Severity.ERROR,
                    path=function.path,
                    line=node.lineno,
                    col=getattr(node, "col_offset", 0),
                    message=(
                        f"{name} is mutated ({how}) after being "
                        f"submitted to the pool at line {site.line} — "
                        "the worker may see either state depending on "
                        "dispatch timing; copy the object or mutate "
                        "before submitting"
                    ),
                )


# ---------------------------------------------------------------------------
# FLOW003: unpicklable values reaching submit through a call chain.
# ---------------------------------------------------------------------------


def _nested_def_names(function: FunctionNode) -> Set[str]:
    """Names of defs/lambda-bindings nested inside this function."""
    nested: Set[str] = set()
    node = function.node
    if isinstance(node, ast.Lambda):
        return nested
    for inner in ast.walk(node):
        if inner is node:
            continue
        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.add(inner.name)
        elif isinstance(inner, ast.Assign) and isinstance(
            inner.value, ast.Lambda
        ):
            for target in inner.targets:
                if isinstance(target, ast.Name):
                    nested.add(target.id)
    return nested


def _open_handles(function: FunctionNode) -> Set[str]:
    """Names bound to ``open(...)`` results (incl. with-statement)."""
    handles: Set[str] = set()
    node = function.node
    if isinstance(node, ast.Lambda):
        return handles

    def is_open(value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "open"
        )

    for inner in ast.walk(node):
        if isinstance(inner, ast.Assign) and is_open(inner.value):
            for target in inner.targets:
                if isinstance(target, ast.Name):
                    handles.add(target.id)
        elif isinstance(inner, (ast.With, ast.AsyncWith)):
            for item in inner.items:
                if is_open(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    handles.add(item.optional_vars.id)
    return handles


def _unpicklable_reason(
    expr: ast.AST, function: FunctionNode
) -> Optional[str]:
    """Why ``expr`` cannot cross the process boundary, or None."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(expr, ast.Name):
        if expr.id in _nested_def_names(function):
            return f"the nested function {expr.id}"
        if expr.id in _open_handles(function):
            return f"the open file handle {expr.id}"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "open"
    ):
        return "an open file handle"
    return None


def _param_positions_reaching_submit(
    graph: CallGraph,
) -> Dict[str, Set[int]]:
    """Fixed point: which positional params of which functions flow
    into a pool-dispatch argument, directly or through further calls."""
    reaching: Dict[str, Set[int]] = {}
    # Seed: parameters passed directly as submit arguments.
    for qualname, function in graph.functions.items():
        params = {name: i for i, name in enumerate(function.params)}
        for site in _dispatch_calls(function):
            for arg in list(site.node.args[1:]) + [
                kw.value for kw in site.node.keywords
            ]:
                if isinstance(arg, ast.Name) and arg.id in params:
                    reaching.setdefault(qualname, set()).add(
                        params[arg.id]
                    )
    # Propagate: caller param -> callee param position already reaching.
    changed = True
    while changed:
        changed = False
        for qualname, function in graph.functions.items():
            params = {name: i for i, name in enumerate(function.params)}
            if not params:
                continue
            for site in function.calls:
                for target in site.targets:
                    target_reaching = reaching.get(target)
                    if not target_reaching:
                        continue
                    callee = graph.functions.get(target)
                    offset = 1 if callee is not None and callee.is_method else 0
                    for pos, arg in enumerate(site.node.args):
                        if pos + offset not in target_reaching:
                            continue
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id in params
                        ):
                            bucket = reaching.setdefault(qualname, set())
                            if params[arg.id] not in bucket:
                                bucket.add(params[arg.id])
                                changed = True
    return reaching


def check_flow003(graph: CallGraph) -> Iterator[Finding]:
    reaching = _param_positions_reaching_submit(graph)
    # Direct: unpicklable expressions in submit argument position.
    for qualname in sorted(graph.functions):
        function = graph.functions[qualname]
        for site in _dispatch_calls(function):
            for arg in list(site.node.args[1:]) + [
                kw.value for kw in site.node.keywords
            ]:
                reason = _unpicklable_reason(arg, function)
                if reason is not None:
                    yield Finding(
                        rule="FLOW003",
                        severity=Severity.ERROR,
                        path=function.path,
                        line=getattr(arg, "lineno", site.line),
                        col=getattr(arg, "col_offset", 0),
                        message=(
                            f"{reason} is passed as a task argument — "
                            "it cannot be pickled across the process "
                            "boundary; pass plain data and rebuild the "
                            "object inside the worker"
                        ),
                    )
    # Transitive: unpicklable values handed to a parameter that flows
    # into a submit argument somewhere down the call chain.
    for qualname in sorted(graph.functions):
        function = graph.functions[qualname]
        for site in function.calls:
            for target in site.targets:
                positions = reaching.get(target)
                if not positions:
                    continue
                callee = graph.functions.get(target)
                if callee is None:
                    continue
                offset = 1 if callee.is_method else 0
                for pos, arg in enumerate(site.node.args):
                    if pos + offset not in positions:
                        continue
                    reason = _unpicklable_reason(arg, function)
                    if reason is None:
                        continue
                    param = (
                        callee.params[pos + offset]
                        if pos + offset < len(callee.params)
                        else f"argument {pos}"
                    )
                    yield Finding(
                        rule="FLOW003",
                        severity=Severity.ERROR,
                        path=function.path,
                        line=getattr(arg, "lineno", site.line),
                        col=getattr(arg, "col_offset", 0),
                        message=(
                            f"{reason} flows into parameter "
                            f"{param} of {target}, which reaches a "
                            "pool submit — it cannot be pickled "
                            "across the process boundary"
                        ),
                    )


# ---------------------------------------------------------------------------
# KER006: dtype-lattice narrowing through the DP kernels.
# ---------------------------------------------------------------------------


def _in_align_kernels(module) -> bool:
    if module.modname == "repro.align._reference":
        return False
    return module.modname.startswith("repro.align")


def check_ker006(modules) -> Iterator[Finding]:
    for module in modules:
        if not _in_align_kernels(module):
            continue
        for _function, narrowing in module_narrowings(module):
            yield Finding(
                rule="KER006",
                severity=Severity.ERROR,
                path=module.path,
                line=narrowing.line,
                col=narrowing.col,
                message=(
                    f"{narrowing.source_dtype} value stored into "
                    f"{narrowing.dest_dtype} storage ({narrowing.dest}) "
                    f"— DP values under the ScoringScheme bound (peak "
                    f"step {SCORING_PEAK}) can reach "
                    f"{DP_VALUE_BOUND:,}, past {narrowing.dest_dtype} "
                    "capacity; allocate via kernel_dtype() or widen "
                    "the slab"
                ),
            )


def run_flow_rules(
    context, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run every (selected) flow rule over a built :class:`FlowContext`."""
    wanted = set(select) if select else None

    def on(rule: str) -> bool:
        return wanted is None or rule in wanted

    findings: List[Finding] = []
    if on("FLOW001"):
        findings.extend(check_flow001(context.graph, context.effects))
    if on("FLOW002"):
        findings.extend(check_flow002(context.graph))
    if on("FLOW003"):
        findings.extend(check_flow003(context.graph))
    if on("KER006"):
        findings.extend(check_ker006(context.modules))
    return findings
