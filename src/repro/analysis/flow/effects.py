"""Fixed-point transitive effect inference over the call graph.

Every function is classified by the *effects* its body can reach,
directly or through any resolved call chain:

========== =========================================================
kind       intrinsic sources
========== =========================================================
rng        unseeded RNG construction, calls into process-global RNG
           state (the interprocedural face of DET001/DET002)
clock      wall-clock/timer reads (DET003)
stdout     ``print`` / ``sys.stdout`` / ``sys.stderr`` writes (OBS002
           / KER005)
fs-write   file creation/mutation: ``open`` in a writing mode,
           ``os``/``shutil`` mutators, ``Path.write_text``-style calls
global-mut assignment through a ``global`` declaration, mutation of a
           module-level name or class attribute
env        any ``os.environ`` / ``getenv`` / ``putenv`` use
========== =========================================================

Inference runs to a fixed point, so recursion and mutual recursion
converge: ``effect(f) = intrinsic(f) ∪ ⋃ effect(callee)``.  Each
propagated effect keeps a provenance pointer (which call introduced
it), so a finding can print the full chain down to the intrinsic site.

Sanctioned effects do not propagate.  An intrinsic site is sanctioned
when the architecture assigns that effect to that layer (clocks and
terminal output inside :mod:`repro.obs` — the tracer owns time, the
progress renderer owns the status line; stdout inside ``repro.cli``),
or when the site's line carries a ``# repro: allow[...]`` suppression
for the matching syntactic rule — a reasoned local suppression must
not re-fire interprocedurally at every transitive caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import import_aliases, resolve_origin
from ..rules.determinism import (
    _NUMPY_EXPLICIT,
    _STDLIB_GLOBAL,
    _WALL_CLOCKS,
)
from .callgraph import CallGraph, FunctionNode

#: Stable ordering of effect kinds for reports.
EFFECT_KINDS = (
    "rng",
    "clock",
    "stdout",
    "fs-write",
    "global-mut",
    "env",
)

#: Syntactic rule whose line-suppression also sanctions the effect.
BASE_RULES: Dict[str, Tuple[str, ...]] = {
    "rng": ("DET001", "DET002"),
    "clock": ("DET003",),
    "stdout": ("OBS002", "KER005"),
    "fs-write": (),
    "global-mut": (),
    "env": (),
}

_RNG_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

_FS_EXTERNAL = {
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.replace",
    "os.mkdir",
    "os.makedirs",
    "os.rmdir",
    "os.removedirs",
    "os.chmod",
    "os.truncate",
    "os.symlink",
    "os.link",
    "shutil.rmtree",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copyfile",
    "shutil.copytree",
    "shutil.move",
}

#: Attribute method names that mutate the filesystem on any plausible
#: receiver (pathlib.Path and file-handle idioms).
_FS_METHODS = {
    "write_text",
    "write_bytes",
    "unlink",
    "rmdir",
    "touch",
    "rename",
    "replace",
    "symlink_to",
    "hardlink_to",
}

_ENV_EXTERNAL = {"os.getenv", "os.putenv", "os.unsetenv"}


@dataclass(frozen=True)
class EffectSite:
    """Where an effect enters a function (its intrinsic source)."""

    kind: str
    path: str
    line: int
    detail: str
    sanctioned: bool = False


@dataclass
class Provenance:
    """How a function acquired an effect: intrinsic site or a call."""

    site: Optional[EffectSite] = None  # intrinsic
    callee: Optional[str] = None  # propagated through this callee
    call_line: int = 0


@dataclass
class EffectAnalysis:
    """Per-function transitive effects with provenance."""

    graph: CallGraph
    #: qualname -> kind -> provenance of the first discovery.
    effects: Dict[str, Dict[str, Provenance]] = field(default_factory=dict)
    #: qualname -> sanctioned intrinsic sites (report-only).
    sanctioned: Dict[str, List[EffectSite]] = field(default_factory=dict)

    def effect_kinds(self, qualname: str) -> Tuple[str, ...]:
        found = self.effects.get(qualname, {})
        return tuple(k for k in EFFECT_KINDS if k in found)

    def chain(self, qualname: str, kind: str) -> List[Provenance]:
        """Provenance hops from ``qualname`` down to the intrinsic site."""
        hops: List[Provenance] = []
        current = qualname
        seen: Set[str] = set()
        while current not in seen:
            seen.add(current)
            provenance = self.effects.get(current, {}).get(kind)
            if provenance is None:
                break
            hops.append(provenance)
            if provenance.site is not None:
                break
            current = provenance.callee or ""
        return hops

    def describe_chain(self, qualname: str, kind: str) -> str:
        """Human-readable ``a -> b -> site`` rendering of a chain."""
        hops = self.chain(qualname, kind)
        parts: List[str] = [qualname]
        for hop in hops:
            if hop.site is not None:
                parts.append(hop.site.detail)
            elif hop.callee:
                parts.append(hop.callee)
        return " -> ".join(parts)


def _own_nodes(function: FunctionNode) -> Iterator[ast.AST]:
    """Every AST node of a function body, excluding nested scopes."""
    node = function.node
    if isinstance(node, ast.Lambda):
        roots: List[ast.AST] = [node.body]
    else:
        roots = list(node.body)
    stack = roots
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _call_effect(
    origin: str, call: ast.Call
) -> Optional[Tuple[str, str]]:
    """(kind, detail) of a resolved external call, or None."""
    if origin in _WALL_CLOCKS:
        return "clock", f"{origin}()"
    if origin in _RNG_CONSTRUCTORS:
        if not call.args and not call.keywords:
            return "rng", f"{origin}() [unseeded]"
        return None
    if origin.startswith("numpy.random."):
        tail = origin[len("numpy.random."):]
        if "." not in tail and tail not in _NUMPY_EXPLICIT:
            return "rng", f"{origin}() [global state]"
    if origin.startswith("random."):
        tail = origin[len("random."):]
        if tail in _STDLIB_GLOBAL:
            return "rng", f"{origin}() [global state]"
    if origin in _FS_EXTERNAL:
        return "fs-write", f"{origin}()"
    if origin in _ENV_EXTERNAL or origin.startswith("os.environ"):
        return "env", f"{origin}()"
    if origin in ("sys.stdout.write", "sys.stdout.writelines"):
        return "stdout", f"{origin}()"
    if origin in ("sys.stderr.write", "sys.stderr.writelines"):
        return "stdout", f"{origin}()"
    return None


def _open_writes(call: ast.Call) -> bool:
    """Whether an ``open(...)`` call uses a writing mode."""
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in "wax+")
    return True  # dynamic mode: assume the worst


def _print_targets_stdio(call: ast.Call, aliases) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "file":
            origin = resolve_origin(keyword.value, aliases)
            return origin in ("sys.stdout", "sys.stderr")
    return True


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(stmt.name)
        elif isinstance(stmt, (ast.Assign,)):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return names


#: Methods that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "appendleft",
    "extendleft",
    "sort",
    "reverse",
}


def intrinsic_effects(
    function: FunctionNode, module, aliases
) -> List[EffectSite]:
    """Effects introduced directly by one function's own body."""
    sites: List[EffectSite] = []
    module_names = (
        _module_level_names(module.tree) if module.tree is not None else set()
    )
    global_names: Set[str] = set()
    path = function.path

    def add(kind: str, line: int, detail: str) -> None:
        sites.append(EffectSite(kind=kind, path=path, line=line, detail=detail))

    # Call-borne effects through the resolved external origins.
    for site in function.calls:
        if site.external:
            effect = _call_effect(site.external, site.node)
            if effect is not None:
                add(effect[0], site.line, effect[1])
    for node in _own_nodes(function):
        if isinstance(node, ast.Global):
            global_names.update(node.names)
    for node in _own_nodes(function):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "print" and _print_targets_stdio(node, aliases):
                    add("stdout", node.lineno, "print()")
                elif func.id == "open" and _open_writes(node):
                    add("fs-write", node.lineno, "open(.., write mode)")
            elif isinstance(func, ast.Attribute):
                if func.attr in _FS_METHODS:
                    add(
                        "fs-write",
                        node.lineno,
                        f".{func.attr}()",
                    )
                elif (
                    func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_names
                ):
                    add(
                        "global-mut",
                        node.lineno,
                        f"{func.value.id}.{func.attr}()"
                        " [module-level state]",
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            ):
                if (
                    isinstance(target, ast.Name)
                    and target.id in global_names
                ):
                    add(
                        "global-mut",
                        node.lineno,
                        f"global {target.id} = ..",
                    )
                elif isinstance(target, ast.Subscript):
                    origin = resolve_origin(target.value, aliases)
                    if origin == "os.environ":
                        add("env", node.lineno, "os.environ[..] = ..")
                        continue
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_names
                        and base.id not in _locals_of(function)
                    ):
                        add(
                            "global-mut",
                            node.lineno,
                            f"{base.id}[..] = .. [module-level state]",
                        )
                elif isinstance(target, ast.Attribute):
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_names
                        and base.id not in _locals_of(function)
                    ):
                        add(
                            "global-mut",
                            node.lineno,
                            f"{base.id}.{target.attr} = .."
                            " [module/class attribute]",
                        )
        elif isinstance(node, ast.Subscript):
            origin = resolve_origin(node.value, aliases)
            if origin == "os.environ" and isinstance(
                node.ctx, (ast.Load,)
            ):
                add("env", node.lineno, "os.environ[..]")
    return sites


def _locals_of(function: FunctionNode) -> Set[str]:
    """Parameter + locally-assigned names (shadow module-level names)."""
    cached = getattr(function, "_locals_cache", None)
    if cached is not None:
        return cached
    names: Set[str] = set(function.params)
    for node in _own_nodes(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    function._locals_cache = names  # type: ignore[attr-defined]
    return names


#: Layers whose effects are theirs to have: the architecture routes
#: that concern through them, so reaching the effect *via that layer*
#: is the sanctioned path, not a leak.
_SANCTIONED_LAYERS: Dict[str, Tuple[str, ...]] = {
    "repro.obs": ("clock", "stdout", "fs-write"),
    "repro.cli": ("stdout", "fs-write"),
    "repro.analysis": ("stdout",),
    # The daemon's whole job is effects: journaling to disk, timing
    # jobs against deadlines, logging lifecycle transitions.
    "repro.service": ("clock", "stdout", "fs-write"),
}


def _is_sanctioned(
    function: FunctionNode, site: EffectSite, suppressions
) -> bool:
    for prefix, kinds in _SANCTIONED_LAYERS.items():
        if function.modname == prefix or function.modname.startswith(
            prefix + "."
        ):
            if site.kind in kinds:
                return True
    if suppressions is not None:
        for rule in BASE_RULES.get(site.kind, ()):
            if suppressions.is_suppressed(rule, site.line):
                return True
        # A FLOW001 allow at the intrinsic site sanctions the whole
        # chain: one reasoned comment, not one per transitive caller.
        if suppressions.is_suppressed("FLOW001", site.line):
            return True
    return False


def infer_effects(graph: CallGraph, modules) -> EffectAnalysis:
    """Run the fixed-point effect inference over a resolved call graph."""
    analysis = EffectAnalysis(graph=graph)
    by_modname = {m.modname: m for m in modules}
    alias_cache: Dict[str, Dict[str, str]] = {}

    for qualname, function in graph.functions.items():
        module = by_modname.get(function.modname)
        if module is None or module.tree is None:
            continue
        aliases = alias_cache.get(function.modname)
        if aliases is None:
            aliases = import_aliases(module.tree, function.modname)
            alias_cache[function.modname] = aliases
        for site in intrinsic_effects(function, module, aliases):
            if _is_sanctioned(function, site, module.suppressions):
                analysis.sanctioned.setdefault(qualname, []).append(
                    EffectSite(
                        kind=site.kind,
                        path=site.path,
                        line=site.line,
                        detail=site.detail,
                        sanctioned=True,
                    )
                )
                continue
            bucket = analysis.effects.setdefault(qualname, {})
            bucket.setdefault(site.kind, Provenance(site=site))

    # Fixed point: propagate callee effects to callers until stable.
    callers = graph.callers()
    pending = list(analysis.effects)
    while pending:
        current = pending.pop()
        kinds = analysis.effects.get(current, {})
        for caller, call_site in callers.get(current, ()):
            bucket = analysis.effects.setdefault(caller, {})
            changed = False
            for kind in kinds:
                if kind not in bucket:
                    bucket[kind] = Provenance(
                        callee=current, call_line=call_site.line
                    )
                    changed = True
            if changed:
                pending.append(caller)
    return analysis
