"""Whole-project call graph for the interprocedural rules.

The graph is purely lexical (no imports are executed) and deliberately
over-approximates where it cannot resolve a call precisely:

* plain names resolve through the enclosing scopes — local defs first,
  then module-level defs, then the module's import table (re-exports
  through package ``__init__`` modules are followed one hop at a time,
  so ``repro.seed.seed_hits`` lands on ``repro.seed.dsoft.seed_hits``);
* ``self.method()`` / ``cls.method()`` resolve within the enclosing
  class (then by name union across its lexical bases);
* other attribute calls — the dynamic-dispatch case — resolve to
  *every* known method of that name across the analyzed tree.  The
  union is conservative: an effect reachable through any candidate is
  reported;
* calls whose target stays outside the tree are recorded as *external*
  edges under their resolved dotted origin (``time.time``,
  ``numpy.random.default_rng``, …) — the effect pass seeds from these.

Functions are identified by qualified name: ``repro.mod.func``,
``repro.mod.Class.method``, ``repro.mod.outer.<locals>.inner``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import import_aliases


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    line: int
    col: int
    #: Qualified names of project functions this call may land on.
    targets: Tuple[str, ...] = ()
    #: Dotted origin when the call leaves the analyzed tree ("time.time").
    external: Optional[str] = None


@dataclass
class FunctionNode:
    """One function/method definition in the analyzed tree."""

    qualname: str  # repro.mod.Class.method / repro.mod.outer.<locals>.inner
    modname: str
    path: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    line: int
    col: int
    class_name: Optional[str] = None
    #: Positional parameter names (for argument-flow tracking).
    params: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class CallGraph:
    """Functions, their call sites, and the resolved edge sets."""

    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    #: method name -> qualnames of every class method with that name.
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: class qualname -> lexical base-class names (unresolved strings).
    class_bases: Dict[str, List[str]] = field(default_factory=dict)

    def callees(self, qualname: str) -> Iterator[Tuple[str, CallSite]]:
        """(callee qualname, call site) pairs for one function."""
        function = self.functions.get(qualname)
        if function is None:
            return
        for site in function.calls:
            for target in site.targets:
                yield target, site

    def callers(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """Reverse edge map: callee -> [(caller, call site), ...]."""
        reverse: Dict[str, List[Tuple[str, CallSite]]] = {}
        for qualname, function in self.functions.items():
            for site in function.calls:
                for target in site.targets:
                    reverse.setdefault(target, []).append((qualname, site))
        return reverse


def _positional_params(args: ast.arguments) -> Tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


class _Collector(ast.NodeVisitor):
    """First pass: register every function definition of one module."""

    def __init__(self, module, graph: CallGraph) -> None:
        self.module = module
        self.graph = graph
        self._stack: List[str] = []  # qualname components under the module
        self._class: List[Optional[str]] = [None]

    def _register(self, node, name: str) -> None:
        parts = [self.module.modname] + self._stack + [name]
        qualname = ".".join(parts)
        function = FunctionNode(
            qualname=qualname,
            modname=self.module.modname,
            path=self.module.path,
            name=name,
            node=node,
            line=node.lineno,
            col=node.col_offset,
            class_name=self._class[-1],
            params=_positional_params(node.args)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else (),
        )
        self.graph.functions[qualname] = function
        if function.class_name is not None:
            self.graph.methods_by_name.setdefault(name, []).append(qualname)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        class_qual = ".".join(
            [self.module.modname] + self._stack + [node.name]
        )
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        self.graph.class_bases[class_qual] = bases
        self._stack.append(node.name)
        self._class.append(node.name)
        self.generic_visit(node)
        self._class.pop()
        self._stack.pop()

    def _visit_function(self, node) -> None:
        self._register(node, node.name)
        self._stack.append(node.name)
        self._stack.append("<locals>")
        self._class.append(None)
        self.generic_visit(node)
        self._class.pop()
        self._stack.pop()
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def _module_defs(graph: CallGraph, modname: str) -> Dict[str, str]:
    """name -> qualname of the module-level defs of one module."""
    prefix = modname + "."
    defs: Dict[str, str] = {}
    for qualname, function in graph.functions.items():
        if not qualname.startswith(prefix):
            continue
        rest = qualname[len(prefix):]
        if "." not in rest:
            defs[rest] = qualname
    return defs


def _class_methods(graph: CallGraph, class_qual: str) -> Dict[str, str]:
    prefix = class_qual + "."
    methods: Dict[str, str] = {}
    for qualname in graph.functions:
        if qualname.startswith(prefix):
            rest = qualname[len(prefix):]
            if "." not in rest:
                methods[rest] = qualname
    return methods


class _Resolver:
    """Second pass: resolve every call of every registered function."""

    #: Re-export hops followed through package ``__init__`` tables.
    _MAX_HOPS = 8

    def __init__(self, graph: CallGraph, modules) -> None:
        self.graph = graph
        self.modules = {m.modname: m for m in modules}
        self._alias_cache: Dict[str, Dict[str, str]] = {}
        self._analyzed_mods: Set[str] = set(self.modules)

    def aliases(self, modname: str) -> Dict[str, str]:
        cached = self._alias_cache.get(modname)
        if cached is None:
            module = self.modules[modname]
            cached = (
                import_aliases(module.tree, _import_anchor(modname))
                if module.tree is not None
                else {}
            )
            self._alias_cache[modname] = cached
        return cached

    def resolve_dotted(self, dotted: str) -> Tuple[Tuple[str, ...], str]:
        """Resolve a dotted origin to project functions, else external.

        Follows ``__init__`` re-exports: when ``repro.seed.seed_hits``
        is not a definition but ``repro.seed.__init__`` imports
        ``seed_hits`` from ``repro.seed.dsoft``, resolution hops there.
        """
        seen: Set[str] = set()
        current = dotted
        for _ in range(self._MAX_HOPS):
            if current in seen:
                break
            seen.add(current)
            if current in self.graph.functions:
                return (current,), ""
            head, _, tail = current.rpartition(".")
            if not head:
                break
            # Class attribute: repro.mod.Class.method.
            if head in self.graph.class_bases:
                methods = _class_methods(self.graph, head)
                if tail in methods:
                    return (methods[tail],), ""
                break
            # Module attribute: look at the module (or its __init__).
            owner = None
            if head in self.modules:
                owner = head
            elif f"{head}.__init__" in self.modules:
                owner = f"{head}.__init__"
            if owner is None:
                break
            aliases = self.aliases(owner)
            origin = aliases.get(tail)
            if origin is None:
                break
            current = origin
        return (), dotted

    def _lookup_name(
        self, function: FunctionNode, name: str
    ) -> Tuple[Tuple[str, ...], Optional[str]]:
        """Resolve a bare called name from inside ``function``."""
        # Sibling nested defs / own nested defs, innermost scope first.
        scope = function.qualname
        while True:
            candidate = f"{scope}.<locals>.{name}"
            if candidate in self.graph.functions:
                return (candidate,), None
            if ".<locals>." not in scope:
                break
            scope = scope.rsplit(".<locals>.", 1)[0]
        # Method of the enclosing class (unqualified helper calls are
        # rare but harmless to miss; self.x() is the common form).
        defs = _module_defs(self.graph, function.modname)
        if name in defs:
            return (defs[name],), None
        aliases = self.aliases(function.modname)
        origin = aliases.get(name)
        if origin is not None:
            targets, external = self.resolve_dotted(origin)
            return targets, external or None
        return (), None

    def _lookup_attribute(
        self, function: FunctionNode, call: ast.Call
    ) -> Tuple[Tuple[str, ...], Optional[str]]:
        func = call.func
        assert isinstance(func, ast.Attribute)
        parts: List[str] = [func.attr]
        base = func.value
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            parts.append(base.id)
            parts.reverse()
            head, rest = parts[0], parts[1:]
            if head in ("self", "cls") and function.class_name is not None:
                class_qual = f"{function.modname}.{function.class_name}"
                methods = _class_methods(self.graph, class_qual)
                if rest[0] in methods and len(rest) == 1:
                    return (methods[rest[0]],), None
                # Inherited (or dynamically attached): fall through to
                # the name-union below.
            else:
                aliases = self.aliases(function.modname)
                origin = aliases.get(head, None)
                if origin is not None:
                    dotted = ".".join([origin] + rest)
                    targets, external = self.resolve_dotted(dotted)
                    if targets or _is_external_root(origin, self._analyzed_mods):
                        return targets, external or None
        # Dynamic dispatch: union over every known method of that name.
        union = self.graph.methods_by_name.get(func.attr, ())
        return tuple(union), None

    def resolve_function(self, function: FunctionNode) -> None:
        if function.node is None or isinstance(function.node, ast.Lambda):
            body = [function.node.body] if function.node else []
        else:
            body = function.node.body
        for node in _own_calls(body):
            site = CallSite(
                node=node, line=node.lineno, col=node.col_offset
            )
            func = node.func
            if isinstance(func, ast.Name):
                targets, external = self._lookup_name(function, func.id)
            elif isinstance(func, ast.Attribute):
                targets, external = self._lookup_attribute(function, node)
            else:
                targets, external = (), None
            site.targets = targets
            site.external = external
            function.calls.append(site)


def _is_external_root(origin: str, analyzed: Set[str]) -> bool:
    """Whether a dotted origin's root module lies outside the tree."""
    root = origin.split(".")[0]
    return not any(
        name == root or name.startswith(root + ".") for name in analyzed
    )


def _import_anchor(modname: str) -> str:
    """The name relative imports resolve against (see module_name_for)."""
    return modname


def _own_calls(body) -> Iterator[ast.Call]:
    """Call nodes in ``body``, excluding nested function/class bodies."""
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested scopes own their calls
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def build_call_graph(modules) -> CallGraph:
    """Build the resolved call graph of already-parsed modules."""
    graph = CallGraph()
    parsed = [m for m in modules if m.tree is not None]
    for module in parsed:
        _Collector(module, graph).visit(module.tree)
    resolver = _Resolver(graph, parsed)
    for function in graph.functions.values():
        resolver.resolve_function(function)
    return graph
