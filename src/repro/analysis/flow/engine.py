"""Flow-analysis context: one build, shared by rules and exports.

The call graph and the effect fixed point are each O(project), so the
CLI builds them once into a :class:`FlowContext` and hands that to the
rules (``--flow``) and/or the graph export (``--graph out.json`` /
``--graph out.dot``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .callgraph import CallGraph, build_call_graph
from .effects import EffectAnalysis, infer_effects


@dataclass
class FlowContext:
    """Everything the interprocedural rules need, built once."""

    modules: List = field(default_factory=list)
    graph: CallGraph = field(default_factory=CallGraph)
    effects: EffectAnalysis = None  # type: ignore[assignment]


def build_flow_context(modules) -> FlowContext:
    """Parse nothing (modules are already parsed); resolve and infer."""
    parsed = [m for m in modules if m.tree is not None]
    graph = build_call_graph(parsed)
    effects = infer_effects(graph, parsed)
    return FlowContext(modules=parsed, graph=graph, effects=effects)


def graph_to_dict(context: FlowContext) -> Dict:
    """JSON-ready call graph + per-function effect classification."""
    functions = []
    for qualname in sorted(context.graph.functions):
        node = context.graph.functions[qualname]
        calls = []
        externals = []
        for site in node.calls:
            for target in site.targets:
                calls.append({"target": target, "line": site.line})
            if site.external:
                externals.append(
                    {"origin": site.external, "line": site.line}
                )
        effects = {}
        for kind in context.effects.effect_kinds(qualname):
            effects[kind] = context.effects.describe_chain(qualname, kind)
        sanctioned = [
            {"kind": site.kind, "line": site.line, "detail": site.detail}
            for site in context.effects.sanctioned.get(qualname, ())
        ]
        functions.append(
            {
                "qualname": qualname,
                "path": node.path,
                "line": node.line,
                "calls": calls,
                "external_calls": externals,
                "effects": effects,
                "sanctioned_effects": sanctioned,
            }
        )
    return {
        "version": 1,
        "functions": functions,
        "counts": {
            "functions": len(functions),
            "edges": sum(len(f["calls"]) for f in functions),
            "with_effects": sum(1 for f in functions if f["effects"]),
        },
    }


#: Graphviz fill colours per (worst) effect kind present on a node.
_DOT_COLOURS = {
    "rng": "#f4cccc",
    "clock": "#fce5cd",
    "stdout": "#fff2cc",
    "fs-write": "#d9ead3",
    "global-mut": "#d0e0e3",
    "env": "#d9d2e9",
}


def _dot_identifier(qualname: str) -> str:
    return '"' + qualname.replace('"', "'") + '"'


def graph_to_dot(context: FlowContext) -> str:
    """Graphviz rendering: nodes coloured by their first effect kind."""
    lines = [
        "digraph callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="monospace"];',
    ]
    for qualname in sorted(context.graph.functions):
        kinds = context.effects.effect_kinds(qualname)
        attrs = ""
        if kinds:
            colour = _DOT_COLOURS.get(kinds[0], "#eeeeee")
            label = qualname + "\\n[" + ",".join(kinds) + "]"
            attrs = (
                f' [style=filled, fillcolor="{colour}",'
                f' label="{label}"]'
            )
        lines.append(f"  {_dot_identifier(qualname)}{attrs};")
    seen = set()
    for qualname in sorted(context.graph.functions):
        node = context.graph.functions[qualname]
        for site in node.calls:
            for target in site.targets:
                edge = (qualname, target)
                if edge in seen:
                    continue
                seen.add(edge)
                lines.append(
                    f"  {_dot_identifier(qualname)} -> "
                    f"{_dot_identifier(target)};"
                )
    lines.append("}")
    return "\n".join(lines) + "\n"
