"""Numpy dtype-lattice propagation through the DP kernels (KER006).

KER001 sees the *allocation*: ``np.zeros(n, dtype=np.int16)`` in an
alignment kernel is flagged syntactically.  What it cannot see is a
wide value flowing into an already-allocated narrow slab — the silent
downcasts numpy performs for ``out=`` arguments and slice stores::

    acc = np.zeros(n, dtype=np.int64)
    row = ws.array("row", (n,), np.int16)     # narrow storage
    np.add(acc, scores, out=row)              # silently wraps
    row[1:] = acc[:-1] + gap                  # silently wraps

This pass tracks a per-function dtype environment and joins dtypes
across expressions (the *lattice*: wider dtype wins a join; unknown
absorbs).  A store whose source joins wider than its destination is a
KER006 finding **when the destination's capacity is below the DP value
bound derived from :class:`ScoringScheme`**: with the paper's Table IIa
scheme the largest per-step magnitude is ``max(|W|, o + e) = 460``, so
a DP value over a tile of length ``L`` can reach ``(2L + 4) * 460`` —
about 3.8M for the 4096-base tiles the extension kernels see, far past
``int16`` (32767), ``int8`` (127) and ``float16`` (2048 exact ints),
while ``int32`` holds to ~2.3M-base tiles.

Destinations whose dtype is *symbolic* — a ``dtype`` variable produced
by :func:`repro.align._dp.kernel_dtype` or received as a parameter —
are sanctioned: ``kernel_dtype`` exists precisely to prove the bound
before narrowing, so the lattice treats its result as checked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..astutil import import_aliases, resolve_origin

#: Lattice rank by exact integer capacity; joins pick the max rank.
#: (float ranks sit by exactly-representable integer range: float16
#: holds ±2048 exactly, float32 ±2**24, float64 ±2**53.)
_RANK = {
    "bool": 0,
    "int8": 1,
    "uint8": 1,
    "float16": 2,
    "int16": 3,
    "uint16": 3,
    "float32": 4,
    "int32": 5,
    "uint32": 5,
    "float64": 6,
    "int64": 7,
    "uint64": 7,
    "intp": 7,
}

#: Exact value capacity per dtype (max representable DP magnitude).
_CAPACITY = {
    "bool": 1,
    "int8": 2**7 - 1,
    "uint8": 2**8 - 1,
    "float16": 2**11,
    "int16": 2**15 - 1,
    "uint16": 2**16 - 1,
    "float32": 2**24,
    "int32": 2**31 - 1,
    "uint32": 2**32 - 1,
    "float64": 2**53,
    "int64": 2**63 - 1,
    "uint64": 2**64 - 1,
}

#: Largest per-step score magnitude under the default ScoringScheme
#: (Table IIa): max(|matrix| = 100, gap_open + gap_extend = 460).
SCORING_PEAK = 460

#: Representative worst-case tile length for the extension kernels.
MAX_TILE = 4096

#: DP values can reach (2L + 4) * peak — same bound kernel_dtype uses.
DP_VALUE_BOUND = (2 * MAX_TILE + 4) * SCORING_PEAK

_ALLOCATORS = {
    f"numpy.{name}"
    for name in (
        "array",
        "asarray",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "ones",
        "ones_like",
        "zeros",
        "zeros_like",
        "arange",
    )
}

#: Ufuncs whose ``out=`` stores the join of their array inputs.
_UFUNCS = {
    f"numpy.{name}"
    for name in (
        "add",
        "subtract",
        "multiply",
        "maximum",
        "minimum",
        "abs",
        "negative",
        "copyto",
        "left_shift",
        "right_shift",
        "bitwise_or",
        "bitwise_and",
        "bitwise_xor",
        "equal",
        "not_equal",
        "greater",
        "greater_equal",
        "less",
        "less_equal",
    )
}

#: ``kernel_dtype``-style providers whose result is a *checked* dtype.
_CHECKED_DTYPE_CALLS = ("kernel_dtype",)

#: ``numpy.maximum.accumulate`` etc: attribute tail on a ufunc origin.
_UFUNC_METHODS = {"accumulate", "reduce", "outer", "at"}


@dataclass(frozen=True)
class Dtype:
    """A lattice element: a concrete dtype name, symbolic, or unknown."""

    name: Optional[str] = None  # concrete ("int16") when set
    symbolic: bool = False  # a checked/opaque dtype expression

    @property
    def rank(self) -> Optional[int]:
        return _RANK.get(self.name) if self.name else None

    @property
    def capacity(self) -> Optional[int]:
        return _CAPACITY.get(self.name) if self.name else None


UNKNOWN = Dtype()
SYMBOLIC = Dtype(symbolic=True)


def join(a: Dtype, b: Dtype) -> Dtype:
    """Lattice join: wider concrete dtype wins; unknown/symbolic absorb."""
    if a.symbolic or b.symbolic:
        return SYMBOLIC
    if a.name is None:
        return b
    if b.name is None:
        return a
    ra, rb = a.rank, b.rank
    if ra is None or rb is None:
        return UNKNOWN
    return a if ra >= rb else b


@dataclass(frozen=True)
class Narrowing:
    """One narrowing store: wide source into under-capacity storage."""

    line: int
    col: int
    dest: str  # destination description ("out=row", "row[..]")
    dest_dtype: str
    source_dtype: str


def _dtype_from_expr(node: ast.AST, aliases, env) -> Dtype:
    """The dtype named by a dtype *expression* (not an array value)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
        return Dtype(name=name) if name in _RANK else UNKNOWN
    origin = resolve_origin(node, aliases)
    if origin and origin.startswith("numpy."):
        name = origin[len("numpy."):]
        if name in _RANK:
            return Dtype(name=name)
        return UNKNOWN
    if isinstance(node, ast.Name):
        known = env.get(node.id)
        if known is not None:
            return known
        if node.id == "dtype":
            return SYMBOLIC  # conventional checked-dtype parameter
        if node.id in ("bool", "int", "float"):
            return Dtype(name="int64" if node.id == "int" else "float64")
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _CHECKED_DTYPE_CALLS
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr in _CHECKED_DTYPE_CALLS
        ):
            return SYMBOLIC
        origin = resolve_origin(func, aliases)
        if origin == "numpy.dtype" and node.args:
            return _dtype_from_expr(node.args[0], aliases, env)
    return UNKNOWN


def _value_dtype(node: ast.AST, aliases, env) -> Dtype:
    """The inferred dtype of an array-valued expression."""
    if isinstance(node, ast.Name):
        return env.get(node.id, UNKNOWN)
    if isinstance(node, ast.Subscript):
        return _value_dtype(node.value, aliases, env)
    if isinstance(node, ast.BinOp):
        return join(
            _value_dtype(node.left, aliases, env),
            _value_dtype(node.right, aliases, env),
        )
    if isinstance(node, ast.UnaryOp):
        return _value_dtype(node.operand, aliases, env)
    if isinstance(node, ast.Constant):
        return UNKNOWN  # python scalars never widen a store
    if isinstance(node, ast.Call):
        return _call_dtype(node, aliases, env)
    if isinstance(node, ast.Attribute):
        if node.attr == "matrix64":
            return Dtype(name="int64")  # ScoringScheme contract
        if node.attr == "T":
            return _value_dtype(node.value, aliases, env)
    if isinstance(node, ast.IfExp):
        return join(
            _value_dtype(node.body, aliases, env),
            _value_dtype(node.orelse, aliases, env),
        )
    return UNKNOWN


def _dtype_kwarg(call: ast.Call) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    return None


def _call_dtype(node: ast.Call, aliases, env) -> Dtype:
    func = node.func
    origin = resolve_origin(func, aliases)
    if origin in _ALLOCATORS:
        dtype_expr = _dtype_kwarg(node)
        if dtype_expr is not None:
            return _dtype_from_expr(dtype_expr, aliases, env)
        if origin in ("numpy.asarray", "numpy.array") and node.args:
            return _value_dtype(node.args[0], aliases, env)
        return Dtype(name="float64")  # numpy allocator default
    if isinstance(func, ast.Attribute):
        if func.attr == "astype" and node.args:
            return _dtype_from_expr(node.args[0], aliases, env)
        if func.attr == "view" and node.args:
            return _dtype_from_expr(node.args[0], aliases, env)
        if func.attr == "array" and len(node.args) >= 3:
            # KernelWorkspace.array(name, shape, dtype)
            return _dtype_from_expr(node.args[2], aliases, env)
        if func.attr in _UFUNC_METHODS:
            inputs = Dtype()
            for arg in node.args:
                inputs = join(inputs, _value_dtype(arg, aliases, env))
            return inputs
    if origin in _UFUNCS:
        inputs = Dtype()
        for arg in node.args:
            inputs = join(inputs, _value_dtype(arg, aliases, env))
        return inputs
    if isinstance(func, ast.Name) and func.id in _CHECKED_DTYPE_CALLS:
        return SYMBOLIC
    if origin is not None and origin.endswith("matrix_for") and len(
        node.args
    ) >= 2:
        return _dtype_from_expr(node.args[1], aliases, env)
    return UNKNOWN


def _is_narrowing(dest: Dtype, source: Dtype) -> bool:
    """A store is flagged when the destination provably cannot hold the
    ScoringScheme-derived DP value range while the source can."""
    if dest.symbolic or source.symbolic:
        return False
    if dest.name is None or source.name is None:
        return False
    dest_cap = dest.capacity
    src_rank, dst_rank = source.rank, dest.rank
    if dest_cap is None or src_rank is None or dst_rank is None:
        return False
    return src_rank > dst_rank and dest_cap < DP_VALUE_BOUND


def _scan_statements(stmts, aliases, env, narrowings) -> None:
    for stmt in stmts:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(stmt, ast.Assign):
            value_dtype = _value_dtype(stmt.value, aliases, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = value_dtype
                elif isinstance(target, ast.Subscript):
                    dest = _value_dtype(target.value, aliases, env)
                    if _is_narrowing(dest, value_dtype):
                        narrowings.append(
                            Narrowing(
                                line=stmt.lineno,
                                col=stmt.col_offset,
                                dest=_describe(target),
                                dest_dtype=dest.name or "?",
                                source_dtype=value_dtype.name or "?",
                            )
                        )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = _value_dtype(
                    stmt.value, aliases, env
                )
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Subscript):
                dest = _value_dtype(stmt.target.value, aliases, env)
                value_dtype = _value_dtype(stmt.value, aliases, env)
                if _is_narrowing(dest, value_dtype):
                    narrowings.append(
                        Narrowing(
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            dest=_describe(stmt.target),
                            dest_dtype=dest.name or "?",
                            source_dtype=value_dtype.name or "?",
                        )
                    )
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        ):
            _check_out_kwarg(stmt.value, aliases, env, narrowings)
        # Recurse into compound statements in source order.
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                _scan_statements(inner, aliases, env, narrowings)
        handlers = getattr(stmt, "handlers", None)
        if handlers:
            for handler in handlers:
                _scan_statements(handler.body, aliases, env, narrowings)
        items = getattr(stmt, "items", None)
        if items:  # with-statement context expressions may bind names
            for item in items:
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    env[item.optional_vars.id] = _value_dtype(
                        item.context_expr, aliases, env
                    )


def _check_out_kwarg(call: ast.Call, aliases, env, narrowings) -> None:
    origin = resolve_origin(call.func, aliases)
    is_ufunc = origin in _UFUNCS or (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _UFUNC_METHODS
    )
    if not is_ufunc:
        return
    out_expr: Optional[ast.AST] = None
    for keyword in call.keywords:
        if keyword.arg == "out":
            out_expr = keyword.value
    if out_expr is None:
        return
    dest = _value_dtype(out_expr, aliases, env)
    inputs = Dtype()
    for arg in call.args:
        inputs = join(inputs, _value_dtype(arg, aliases, env))
    if _is_narrowing(dest, inputs):
        narrowings.append(
            Narrowing(
                line=call.lineno,
                col=call.col_offset,
                dest=f"out={_describe(out_expr)}",
                dest_dtype=dest.name or "?",
                source_dtype=inputs.name or "?",
            )
        )


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return f"{_describe(node.value)}[..]"
    if isinstance(node, ast.Attribute):
        return f"{_describe(node.value)}.{node.attr}"
    return "<expr>"


def analyze_function_dtypes(
    node, aliases
) -> List[Narrowing]:
    """Narrowing stores found in one function definition."""
    narrowings: List[Narrowing] = []
    env: Dict[str, Dtype] = {}
    # Parameters annotated as arrays stay unknown; a parameter named
    # ``dtype`` is the checked-dtype convention.
    _scan_statements(node.body, aliases, env, narrowings)
    return narrowings


def module_narrowings(module) -> Iterator[Tuple[ast.AST, Narrowing]]:
    """Every narrowing store in a module's functions (and module body)."""
    if module.tree is None:
        return
    aliases = import_aliases(module.tree, module.modname)
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for narrowing in analyze_function_dtypes(node, aliases):
                yield node, narrowing
