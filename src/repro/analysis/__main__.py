"""``python -m repro.analysis`` — run the lint pass."""

from .app import main

if __name__ == "__main__":
    raise SystemExit(main())
