"""Project-specific static analysis (``repro lint``).

An AST-based pass enforcing the invariants this codebase's correctness
arguments actually rest on — properties generic linters cannot know
about:

* **determinism** (``DET0xx``) — parallel output is byte-identical to
  serial and caches are content-addressed, so RNGs must be explicitly
  seeded and threaded, clocks live only in :mod:`repro.obs`, and set
  iteration order must never reach output or hashing paths;
* **layering** (``LAY0xx``) — the import DAG
  genome -> seed -> align -> chain -> {core, lastz, annotate} ->
  {hw, parallel}, with ``obs``/``analysis`` self-contained and ``cli``
  top-only; cycles are errors;
* **kernel hygiene** (``KER0xx``) — no narrow signed dtypes for DP
  accumulators, no Python-level loops over both sequence axes in
  ``repro.align`` kernels, plus mutable defaults / bare except / stray
  prints tree-wide;
* **parallel safety** (``PAR0xx``) — task callables submitted to the
  worker pool must pickle by reference (module-level functions only);
* **interprocedural flow** (``FLOW0xx``/``KER006``, behind
  ``repro lint --flow``) — a whole-project call graph with fixed-point
  effect inference and a numpy dtype lattice, catching what no single
  file shows: nondeterminism reachable from worker tasks, post-submit
  argument mutation, unpicklable values flowing into the pool through
  call chains, and narrowing stores that can overflow the packed DP
  dtype.  See :mod:`repro.analysis.flow`.

Findings are suppressed inline with
``# repro: allow[RULE] <reason>`` — the reason is mandatory and itself
linted.  This package is deliberately stdlib-only and imports nothing
from the rest of ``repro`` so it sits at the bottom of the layer DAG.
"""

from .baseline import apply_baseline, fingerprint, load_fingerprints
from .engine import (
    AnalysisResult,
    ModuleInfo,
    analyze_modules,
    analyze_paths,
    analyze_sources,
)
from .findings import Finding, Severity
from .flow import (
    FLOW_RULE_IDS,
    FlowContext,
    build_flow_context,
    infer_effects,
)
from .registry import MODULE_RULES, PROJECT_RULES, all_rules
from .report import render_json, render_text
from .rules.layering import RANKS, SELF_CONTAINED, TOP_ONLY

__all__ = [
    "AnalysisResult",
    "FLOW_RULE_IDS",
    "Finding",
    "FlowContext",
    "ModuleInfo",
    "MODULE_RULES",
    "PROJECT_RULES",
    "RANKS",
    "SELF_CONTAINED",
    "Severity",
    "TOP_ONLY",
    "all_rules",
    "analyze_modules",
    "analyze_paths",
    "analyze_sources",
    "apply_baseline",
    "build_flow_context",
    "fingerprint",
    "infer_effects",
    "load_fingerprints",
    "render_json",
    "render_text",
]
