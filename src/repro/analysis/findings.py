"""Finding model for the project's static-analysis pass.

A :class:`Finding` pins one rule violation to a ``file:line:col``
location.  Findings are plain data — rendering lives in
:mod:`repro.analysis.report` and policy (what fails CI) in the engine:
*any* unsuppressed finding fails, severity is a triage label.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Severity(enum.Enum):
    """Triage label for a finding (both levels gate ``repro lint``)."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
