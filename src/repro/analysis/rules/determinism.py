"""Determinism rules.

PR 2 made byte-identical replay a contract: parallel runs must equal
serial runs at any worker count, and cached artifacts are
content-addressed.  Everything here guards that contract: RNG state
must be explicit and seeded, clocks belong to the tracer, and nothing
order-unstable may feed output or hashing paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_args, import_aliases, resolve_origin
from ..findings import Finding, Severity
from ..registry import module_rule

#: numpy.random attributes that are constructors for explicit-state
#: generators (fine when seeded) rather than global-state functions.
_NUMPY_EXPLICIT = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "RandomState",
    "BitGenerator",
    "PCG64",
    "Philox",
    "MT19937",
    "SFC64",
}

#: stdlib ``random`` module-level functions that mutate/read the hidden
#: global generator.
_STDLIB_GLOBAL = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "setstate",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}


def _calls(module) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


@module_rule(
    "DET001",
    "unseeded-rng",
    Severity.ERROR,
    "RNG constructed (or global RNG seeded) without an explicit seed",
)
def check_unseeded_rng(module) -> Iterator[Finding]:
    aliases = import_aliases(module.tree, module.modname)
    constructors = {"random.Random", "numpy.random.seed", "random.seed"} | {
        f"numpy.random.{name}"
        for name in ("default_rng", "RandomState")
    }
    for call in _calls(module):
        origin = resolve_origin(call.func, aliases)
        if origin not in constructors:
            continue
        positional, keywords = call_args(call)
        if positional == 0 and not keywords:
            yield Finding(
                rule="DET001",
                severity=Severity.ERROR,
                path=module.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"{origin}() without an explicit seed — thread a "
                    "seeded rng/seed parameter through instead"
                ),
            )


@module_rule(
    "DET002",
    "global-rng",
    Severity.ERROR,
    "call into the hidden module-level RNG state",
)
def check_global_rng(module) -> Iterator[Finding]:
    aliases = import_aliases(module.tree, module.modname)
    for call in _calls(module):
        origin = resolve_origin(call.func, aliases)
        if origin is None:
            continue
        flagged = False
        if origin.startswith("numpy.random."):
            tail = origin[len("numpy.random."):]
            flagged = "." not in tail and tail not in _NUMPY_EXPLICIT
        elif origin.startswith("random."):
            tail = origin[len("random."):]
            flagged = tail in _STDLIB_GLOBAL and tail != "seed"
            # random.seed / numpy.random.seed with arguments still
            # mutate global state other code observes.
            if tail == "seed":
                positional, keywords = call_args(call)
                flagged = positional > 0 or bool(keywords)
        if origin == "numpy.random.seed":
            positional, keywords = call_args(call)
            flagged = positional > 0 or bool(keywords)
        if flagged:
            yield Finding(
                rule="DET002",
                severity=Severity.ERROR,
                path=module.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"{origin}() uses process-global RNG state — pass an "
                    "explicit numpy Generator instead"
                ),
            )


@module_rule(
    "DET003",
    "wall-clock",
    Severity.ERROR,
    "wall-clock/timer call outside repro.obs",
)
def check_wall_clock(module) -> Iterator[Finding]:
    if module.modname.startswith("repro.obs"):
        return
    aliases = import_aliases(module.tree, module.modname)
    for call in _calls(module):
        origin = resolve_origin(call.func, aliases)
        if origin in _WALL_CLOCKS:
            yield Finding(
                rule="DET003",
                severity=Severity.ERROR,
                path=module.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"{origin}() outside repro.obs — timing belongs to "
                    "the tracer; pipeline output must not depend on "
                    "the clock"
                ),
            )


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


@module_rule(
    "DET004",
    "set-iteration",
    Severity.ERROR,
    "iteration over a set feeding output/hash paths (order is "
    "randomized across processes)",
)
def check_set_iteration(module) -> Iterator[Finding]:
    def flag(node: ast.AST) -> Finding:
        return Finding(
            rule="DET004",
            severity=Severity.ERROR,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                "iterating a set — hash randomization makes the order "
                "differ between runs/processes; iterate sorted(...) "
                "instead"
            ),
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.For) and _is_set_expression(node.iter):
            yield flag(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                if _is_set_expression(generator.iter):
                    yield flag(generator.iter)
        elif isinstance(node, ast.Call):
            func = node.func
            ordering = (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate")
            ) or (isinstance(func, ast.Attribute) and func.attr == "join")
            if ordering and node.args and _is_set_expression(node.args[0]):
                yield flag(node.args[0])
