"""Layering rules: the import-graph DAG of ``repro``.

The enforced architecture, bottom to top::

    rank 0   obs, analysis        (self-contained: no repro imports)
    rank 1   genome, resilience
    rank 2   seed
    rank 3   align
    rank 4   chain, phylo
    rank 5   core, lastz, annotate, io
    rank 6   hw, parallel
    rank 7   cli, repro (root package modules)

A module may import packages of **equal or lower** rank at module
level; importing upward is LAY001.  Cycles in the module-level import
graph are LAY002 regardless of rank.  ``obs`` and ``analysis`` must be
importable by everything and so may import nothing from ``repro`` at
all (LAY003); nothing may import ``repro.cli`` (LAY004); a subpackage
missing from the map is LAY005 — extend the table (and CONTRIBUTING's
DAG) deliberately, never implicitly.

Only module-level imports count (including those under module-level
``if``/``try``, excluding ``if TYPE_CHECKING`` blocks).  Imports inside
function bodies are the sanctioned escape hatch for *top-layer
wiring* — e.g. the pipelines constructing a
``repro.parallel.ExecutionEngine`` on demand — because they defer the
dependency to call time and cannot create import cycles.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import module_level_imports, resolve_import_base
from ..findings import Finding, Severity
from ..registry import project_rule

#: package -> rank; lower ranks are more fundamental.
RANKS: Dict[str, int] = {
    "obs": 0,
    "analysis": 0,
    "genome": 1,
    "resilience": 1,
    "seed": 2,
    "align": 3,
    "chain": 4,
    "phylo": 4,
    "core": 5,
    "lastz": 5,
    "annotate": 5,
    "io": 5,
    "hw": 6,
    "parallel": 6,
    "cli": 7,
    "service": 7,  # serving daemon orchestrates every lower layer
    "repro": 7,  # root package modules (repro/__init__.py)
}

#: Packages everything may depend on — so they may depend on nothing.
SELF_CONTAINED: Set[str] = {"obs", "analysis"}

#: Packages nothing may import.
TOP_ONLY: Set[str] = {"cli"}


def _target_package(target: str) -> str:
    parts = target.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _repro_imports(
    module,
) -> Iterator[Tuple[ast.stmt, str]]:
    """(statement, absolute repro target) for module-level imports."""
    for stmt, type_checking in module_level_imports(module.tree):
        if type_checking:
            continue
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield stmt, alias.name
        elif isinstance(stmt, ast.ImportFrom):
            base = resolve_import_base(stmt, module.modname)
            if base is None:
                continue
            if base == "repro" or base.startswith("repro."):
                yield stmt, base


def _strongly_connected(
    graph: Dict[str, Set[str]],
) -> List[List[str]]:
    """Tarjan's SCC, iterative; returns components of size > 1."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return components


def _resolve_node(target: str, analyzed: Set[str]) -> Optional[str]:
    """Map an import target onto an analyzed module (longest prefix)."""
    parts = target.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in analyzed:
            return candidate
    return None


@project_rule(
    "LAY001",
    "layer-order",
    Severity.ERROR,
    "module-level import of a higher-rank package",
)
def check_layer_order(modules) -> Iterator[Finding]:
    for module in modules:
        if not module.modname.startswith("repro"):
            continue
        source_pkg = module.package
        source_rank = RANKS.get(source_pkg)
        if source_rank is None:
            continue  # LAY005 reports the unknown package
        for stmt, target in _repro_imports(module):
            target_pkg = _target_package(target)
            target_rank = RANKS.get(target_pkg)
            if target_rank is None:
                continue
            if target_rank > source_rank:
                yield Finding(
                    rule="LAY001",
                    severity=Severity.ERROR,
                    path=module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"{source_pkg} (layer {source_rank}) imports "
                        f"{target_pkg} (layer {target_rank}) — imports "
                        "must point down the DAG; defer construction "
                        "to a function body or invert the dependency"
                    ),
                )


@project_rule(
    "LAY002",
    "import-cycle",
    Severity.ERROR,
    "cycle in the module-level import graph",
)
def check_import_cycle(modules) -> Iterator[Finding]:
    repro_modules = {
        m.modname: m for m in modules if m.modname.startswith("repro")
    }
    analyzed = set(repro_modules)
    graph: Dict[str, Set[str]] = {name: set() for name in analyzed}
    for name, module in repro_modules.items():
        for _, target in _repro_imports(module):
            node = _resolve_node(target, analyzed)
            if node is not None and node != name:
                graph[name].add(node)
    for component in _strongly_connected(graph):
        anchor = repro_modules[component[0]]
        yield Finding(
            rule="LAY002",
            severity=Severity.ERROR,
            path=anchor.path,
            line=1,
            col=0,
            message=(
                "import cycle: " + " <-> ".join(component)
            ),
        )


@project_rule(
    "LAY003",
    "self-contained",
    Severity.ERROR,
    "obs/analysis importing the rest of repro",
)
def check_self_contained(modules) -> Iterator[Finding]:
    for module in modules:
        if module.package not in SELF_CONTAINED:
            continue
        prefix = f"repro.{module.package}"
        for stmt, target in _repro_imports(module):
            if target == prefix or target.startswith(prefix + "."):
                continue
            yield Finding(
                rule="LAY003",
                severity=Severity.ERROR,
                path=module.path,
                line=stmt.lineno,
                col=stmt.col_offset,
                message=(
                    f"repro.{module.package} must stay dependency-free "
                    f"(everything imports it) but imports {target}"
                ),
            )


@project_rule(
    "LAY004",
    "cli-top-only",
    Severity.ERROR,
    "library code importing the CLI",
)
def check_cli_top_only(modules) -> Iterator[Finding]:
    for module in modules:
        if module.package in TOP_ONLY:
            continue
        for stmt, target in _repro_imports(module):
            if _target_package(target) in TOP_ONLY:
                yield Finding(
                    rule="LAY004",
                    severity=Severity.ERROR,
                    path=module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"{target} is the top of the DAG — nothing may "
                        "import it"
                    ),
                )


@project_rule(
    "LAY005",
    "unmapped-package",
    Severity.ERROR,
    "repro subpackage missing from the layer map",
)
def check_unmapped_package(modules) -> Iterator[Finding]:
    reported: Set[str] = set()
    for module in modules:
        if not module.modname.startswith("repro"):
            continue
        package = module.package
        if package in RANKS or package in reported:
            continue
        reported.add(package)
        yield Finding(
            rule="LAY005",
            severity=Severity.ERROR,
            path=module.path,
            line=1,
            col=0,
            message=(
                f"package repro.{package} has no layer rank — add it to "
                "repro.analysis.rules.layering.RANKS and to the DAG in "
                "CONTRIBUTING.md"
            ),
        )
