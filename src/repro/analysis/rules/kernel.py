"""DP-kernel hygiene and general code-health rules.

The kernel rules encode what Scrooge-style aligner work keeps
re-learning: score accumulators in narrow dtypes overflow silently on
long tiles, and a Python-level loop over *both* sequence axes turns an
O(n*m) kernel into an interpreter benchmark.  The general rules
(mutable defaults, bare except, stray print) apply across the whole
tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import import_aliases, resolve_origin
from ..findings import Finding, Severity
from ..registry import module_rule

#: Signed narrow integer / half-float dtypes that overflow as DP score
#: accumulators.  Unsigned 8/16-bit stay legal: they carry base codes
#: and traceback pointers, which never accumulate.
_NARROW_DTYPES = {"int8", "int16", "float16"}

_ALLOCATORS = {
    f"numpy.{name}"
    for name in (
        "array",
        "asarray",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "ones",
        "ones_like",
        "zeros",
        "zeros_like",
    )
}

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "collections.deque",
    "collections.OrderedDict",
    "collections.Counter",
}


def _in_align_kernels(module) -> bool:
    # repro.align._reference is the frozen row-at-a-time oracle the
    # vectorised kernels are differentially tested against; its
    # deliberately naive loops are its whole point, so the kernel
    # hygiene rules skip it.
    if module.modname == "repro.align._reference":
        return False
    return module.modname.startswith("repro.align")


def _dtype_token(node: ast.AST, aliases) -> str:
    """Normalise a dtype expression to its bare name ("int16")."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    origin = resolve_origin(node, aliases)
    if origin and origin.startswith("numpy."):
        return origin[len("numpy."):]
    return ""


@module_rule(
    "KER001",
    "narrow-dp-dtype",
    Severity.ERROR,
    "narrow signed dtype for an alignment-kernel array (overflow risk)",
)
def check_narrow_dtype(module) -> Iterator[Finding]:
    if not _in_align_kernels(module):
        return
    aliases = import_aliases(module.tree, module.modname)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = resolve_origin(node.func, aliases)
        dtype_expr = None
        if origin in _ALLOCATORS:
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype_expr = keyword.value
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            dtype_expr = node.args[0]
        if dtype_expr is None:
            continue
        token = _dtype_token(dtype_expr, aliases)
        if token in _NARROW_DTYPES:
            yield Finding(
                rule="KER001",
                severity=Severity.ERROR,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"dtype {token} in an alignment kernel — DP scores "
                    "accumulate past 16-bit range on long tiles; use "
                    "int32/int64 (uint8/16 remain fine for codes and "
                    "traceback pointers)"
                ),
            )


def _is_range_loop(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.For)
        and isinstance(node.iter, ast.Call)
        and isinstance(node.iter.func, ast.Name)
        and node.iter.func.id == "range"
    )


@module_rule(
    "KER002",
    "nested-dp-loop",
    Severity.WARNING,
    "Python-level loop over both sequence axes in an alignment kernel",
)
def check_nested_loop(module) -> Iterator[Finding]:
    if not _in_align_kernels(module):
        return
    for node in ast.walk(module.tree):
        if not _is_range_loop(node):
            continue
        for inner in ast.walk(node):
            if inner is node or not _is_range_loop(inner):
                continue
            yield Finding(
                rule="KER002",
                severity=Severity.WARNING,
                path=module.path,
                line=inner.lineno,
                col=inner.col_offset,
                message=(
                    "range-loop nested inside a range-loop in an "
                    "alignment kernel — vectorise the inner axis "
                    "(row-wise numpy, see align/_dp.py)"
                ),
            )


@module_rule(
    "KER003",
    "mutable-default",
    Severity.ERROR,
    "mutable default argument",
)
def check_mutable_default(module) -> Iterator[Finding]:
    aliases = import_aliases(module.tree, module.modname)
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                 ast.DictComp),
            )
            if isinstance(default, ast.Call):
                origin = resolve_origin(default.func, aliases)
                mutable = origin in _MUTABLE_CALLS
            if mutable:
                yield Finding(
                    rule="KER003",
                    severity=Severity.ERROR,
                    path=module.path,
                    line=default.lineno,
                    col=default.col_offset,
                    message=(
                        f"mutable default argument in {node.name}() — "
                        "shared across calls; default to None and "
                        "create inside"
                    ),
                )


@module_rule(
    "KER004",
    "bare-except",
    Severity.ERROR,
    "bare except clause",
)
def check_bare_except(module) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                rule="KER004",
                severity=Severity.ERROR,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "bare except swallows KeyboardInterrupt/SystemExit "
                    "— catch Exception (or narrower) instead"
                ),
            )


@module_rule(
    "KER005",
    "stray-print",
    Severity.ERROR,
    "print() in library code (outside repro.cli)",
)
def check_stray_print(module) -> Iterator[Finding]:
    if not module.modname.startswith("repro"):
        return
    if module.modname == "repro.cli":
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield Finding(
                rule="KER005",
                severity=Severity.ERROR,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "print() in library code — return/log data instead; "
                    "user-facing output belongs to the CLI layer"
                ),
            )
