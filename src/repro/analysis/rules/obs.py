"""Observability rules.

The repro.obs v2 telemetry bus gives every process exactly one sampling
substrate and one output channel: resource/CPU sampling lives in
:mod:`repro.obs.resource`, and workers talk to the terminal only through
the bus (the parent owns stdout).  These rules keep ad-hoc probes and
rogue worker prints from growing back.

* ``OBS001`` — CPU-time / rusage sampling outside ``repro.obs``.
  Complements DET003 (wall clocks): ``time.process_time`` and
  ``resource.getrusage`` don't break determinism, but scattering them
  through pipeline code produces unmergeable one-off measurements; all
  sampling should flow through :func:`repro.obs.resource.sample_resources`
  so it lands in the shared registry with canonical bucket edges.
* ``OBS002`` — stdout writes from worker-process code (module-level
  ``*_task`` functions, or anywhere in a ``worker`` module).  Worker
  prints interleave corruptly across processes and tear the parent's
  live progress line; anything a worker wants seen must ride the
  telemetry bus.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import import_aliases, resolve_origin
from ..findings import Finding, Severity
from ..registry import module_rule

#: CPU/rusage sampling calls that belong in repro.obs.resource.  Kept
#: disjoint from determinism's ``_WALL_CLOCKS`` — those are DET003's.
_SAMPLING_CALLS = {
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.thread_time_ns",
    "resource.getrusage",
    "resource.getpagesize",
}


@module_rule(
    "OBS001",
    "adhoc-sampling",
    Severity.ERROR,
    "CPU-time/rusage sampling outside repro.obs",
)
def check_adhoc_sampling(module) -> Iterator[Finding]:
    if module.modname.startswith("repro.obs"):
        return
    aliases = import_aliases(module.tree, module.modname)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = resolve_origin(node.func, aliases)
        if origin in _SAMPLING_CALLS:
            yield Finding(
                rule="OBS001",
                severity=Severity.ERROR,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{origin}() outside repro.obs — sample through "
                    "repro.obs.resource so measurements land in the "
                    "shared metric registry instead of one-off probes"
                ),
            )


def _is_stdout_write(node: ast.Call, aliases) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "print":
        # print(..., file=...) targeting something other than stdout is
        # not a stdout write.
        for keyword in node.keywords:
            if keyword.arg == "file":
                return (
                    resolve_origin(keyword.value, aliases) == "sys.stdout"
                )
        return True
    origin = resolve_origin(func, aliases)
    return origin in ("sys.stdout.write", "sys.stdout.writelines")


def _worker_function_spans(module):
    """(lineno range) of every module-level ``*_task`` function."""
    spans = []
    for node in module.tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.name.endswith("_task"):
            spans.append(node)
    return spans


@module_rule(
    "OBS002",
    "worker-stdout",
    Severity.ERROR,
    "stdout write from worker-process code",
)
def check_worker_stdout(module) -> Iterator[Finding]:
    aliases = import_aliases(module.tree, module.modname)
    whole_module = module.modname.rsplit(".", 1)[-1] == "worker"
    if whole_module:
        roots = [module.tree]
    else:
        roots = _worker_function_spans(module)
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and _is_stdout_write(
                node, aliases
            ):
                yield Finding(
                    rule="OBS002",
                    severity=Severity.ERROR,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "stdout write in worker-process code — the "
                        "parent owns the terminal; emit through the "
                        "telemetry bus instead"
                    ),
                )
