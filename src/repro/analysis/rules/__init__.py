"""Rule modules; importing this package registers every rule.

Rule id blocks:

* ``DET0xx`` — determinism (RNG seeding, wall clocks, set ordering)
* ``LAY0xx`` — layering / import-graph DAG
* ``KER0xx`` — DP-kernel and general hygiene
* ``OBS0xx`` — observability (sampling locality, worker stdout)
* ``PAR0xx`` — parallel-dispatch pickling safety
* ``RES0xx`` — resilience / recovery-path hygiene
* ``SUP0xx`` / ``PARSE`` — engine-reserved (see ``registry.ENGINE_RULES``)
"""

from . import (  # noqa: F401
    determinism,
    kernel,
    layering,
    obs,
    parallel,
    resilience,
)
