"""Rule modules; importing this package registers every rule.

Rule id blocks:

* ``DET0xx`` — determinism (RNG seeding, wall clocks, set ordering)
* ``LAY0xx`` — layering / import-graph DAG
* ``KER0xx`` — DP-kernel and general hygiene
* ``PAR0xx`` — parallel-dispatch pickling safety
* ``SUP0xx`` / ``PARSE`` — engine-reserved (see ``registry.ENGINE_RULES``)
"""

from . import determinism, kernel, layering, parallel  # noqa: F401
