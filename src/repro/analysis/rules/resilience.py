"""Resilience rules: recovery code must never swallow failures blind.

A retry/fallback layer is exactly where ``except Exception: pass``
does the most damage: the run "succeeds" while a recovery path silently
discarded a real fault, and the byte-identical-output contract breaks
without a trace.  Every broad handler in recovery code must either act
on the exception (reraise, record, return a substitute) or carry an
explicit ``# repro: allow[RES001] reason`` suppression explaining why
ignoring it is safe.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import import_aliases, resolve_origin
from ..findings import Finding, Severity
from ..registry import module_rule

#: Exception names too broad to discard without explanation.  Narrow
#: handlers (``except OSError: pass`` around a best-effort unlink) stay
#: legal: they name the one failure they deliberately ignore.
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_broad(node: ast.AST, aliases) -> bool:
    origin = resolve_origin(node, aliases) or ""
    name = origin.rsplit(".", 1)[-1]
    return name in _BROAD_EXCEPTIONS


def _only_discards(body) -> bool:
    """Whether a handler body does nothing but swallow the exception."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        return False
    return True


@module_rule(
    "RES001",
    "swallowed-exception",
    Severity.ERROR,
    "broad exception handler that silently discards the failure",
)
def check_swallowed_exception(module) -> Iterator[Finding]:
    if not module.modname.startswith("repro"):
        return
    aliases = import_aliases(module.tree, module.modname)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is None:
            continue
        broad = _is_broad(node.type, aliases)
        if isinstance(node.type, ast.Tuple):
            broad = any(
                _is_broad(item, aliases) for item in node.type.elts
            )
        if broad and _only_discards(node.body):
            yield Finding(
                rule="RES001",
                severity=Severity.ERROR,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "except Exception: pass hides real faults from the "
                    "recovery ladder — handle, record or reraise; if "
                    "discarding is provably safe, suppress with "
                    "# repro: allow[RES001] <reason>"
                ),
            )
