"""Parallel-dispatch safety rules.

``repro.parallel`` fans work out over a process pool; tasks are
pickled **by reference** (module + qualified name).  A lambda or a
function defined inside another function has no importable reference,
so submitting one either crashes under spawn or — worse — works under
fork on one platform and dies on another.  These rules pin the
contract: every submitted task callable must be a module-level
function.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding, Severity
from ..registry import module_rule


def _submit_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            yield node


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return names


def _nested_callable_names(tree: ast.Module) -> Set[str]:
    """Names bound to defs/lambdas *inside* function bodies."""
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
            elif isinstance(inner, ast.Assign) and isinstance(
                inner.value, ast.Lambda
            ):
                for target in inner.targets:
                    if isinstance(target, ast.Name):
                        nested.add(target.id)
    return nested


@module_rule(
    "PAR001",
    "lambda-task",
    Severity.ERROR,
    "lambda passed as a parallel-dispatch task",
)
def check_lambda_task(module) -> Iterator[Finding]:
    for call in _submit_calls(module.tree):
        if isinstance(call.args[0], ast.Lambda):
            yield Finding(
                rule="PAR001",
                severity=Severity.ERROR,
                path=module.path,
                line=call.args[0].lineno,
                col=call.args[0].col_offset,
                message=(
                    "lambda submitted to a worker pool — lambdas do not "
                    "pickle by reference; define a module-level task "
                    "function"
                ),
            )


@module_rule(
    "PAR002",
    "nested-task",
    Severity.ERROR,
    "locally-defined function passed as a parallel-dispatch task",
)
def check_nested_task(module) -> Iterator[Finding]:
    module_level = _module_level_names(module.tree)
    nested = _nested_callable_names(module.tree)
    for call in _submit_calls(module.tree):
        first = call.args[0]
        if not isinstance(first, ast.Name):
            continue
        if first.id in nested and first.id not in module_level:
            yield Finding(
                rule="PAR002",
                severity=Severity.ERROR,
                path=module.path,
                line=first.lineno,
                col=first.col_offset,
                message=(
                    f"{first.id} is defined inside a function — closures "
                    "do not pickle by reference; hoist the task to "
                    "module level"
                ),
            )
