"""Parallel-dispatch safety rules.

``repro.parallel`` fans work out over a process pool; tasks are
pickled **by reference** (module + qualified name).  A lambda or a
function defined inside another function has no importable reference,
so submitting one either crashes under spawn or — worse — works under
fork on one platform and dies on another.  These rules pin the
contract: every submitted task callable must be a module-level
function.

PAR003 pins the streaming dataflow's memory contract: every stage
buffer must have a hard capacity.  An unbounded ``deque()`` or
``queue.Queue()`` between stages silently absorbs any producer/consumer
rate mismatch — memory grows with the imbalance and the explicit
backpressure accounting (stall counters, occupancy) reads healthy while
the buffer balloons.  Use :class:`repro.core.stream.BoundedQueue`, a
``maxlen``/``maxsize``, or suppress with a reason stating what else
bounds the buffer.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding, Severity
from ..registry import module_rule


def _submit_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            yield node


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return names


def _nested_callable_names(tree: ast.Module) -> Set[str]:
    """Names bound to defs/lambdas *inside* function bodies."""
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
            elif isinstance(inner, ast.Assign) and isinstance(
                inner.value, ast.Lambda
            ):
                for target in inner.targets:
                    if isinstance(target, ast.Name):
                        nested.add(target.id)
    return nested


#: FIFO constructors that take a ``maxsize`` first argument / kwarg.
_SIZED_QUEUES = {"Queue", "LifoQueue", "JoinableQueue", "PriorityQueue"}

#: FIFO constructors that cannot be bounded at all.
_UNBOUNDABLE_QUEUES = {"SimpleQueue"}


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_unbounded_deque(call: ast.Call) -> bool:
    # deque(iterable, maxlen): bounded iff maxlen is present and not
    # a literal None.
    if len(call.args) >= 2:
        return (
            isinstance(call.args[1], ast.Constant)
            and call.args[1].value is None
        )
    for kw in call.keywords:
        if kw.arg == "maxlen":
            return (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
    return True


def _is_unbounded_queue(call: ast.Call) -> bool:
    # Queue(maxsize): zero or negative means "infinite"; absent means
    # zero.  A non-literal maxsize is taken on trust.
    size = call.args[0] if call.args else None
    if size is None:
        for kw in call.keywords:
            if kw.arg == "maxsize":
                size = kw.value
    if size is None:
        return True
    if isinstance(size, ast.Constant):
        return not (isinstance(size.value, int) and size.value > 0)
    return False


@module_rule(
    "PAR003",
    "unbounded-stage-buffer",
    Severity.ERROR,
    "unbounded queue/deque constructed as a stage buffer",
)
def check_unbounded_stage_buffer(module) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name == "deque":
            unbounded = _is_unbounded_deque(node)
        elif name in _SIZED_QUEUES:
            unbounded = _is_unbounded_queue(node)
        elif name in _UNBOUNDABLE_QUEUES:
            unbounded = True
        else:
            continue
        if not unbounded:
            continue
        yield Finding(
            rule="PAR003",
            severity=Severity.ERROR,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"{name} constructed without a capacity — stage buffers "
                "must be bounded (BoundedQueue, maxlen= or maxsize>0) so "
                "backpressure is explicit, not absorbed by memory"
            ),
        )


@module_rule(
    "PAR001",
    "lambda-task",
    Severity.ERROR,
    "lambda passed as a parallel-dispatch task",
)
def check_lambda_task(module) -> Iterator[Finding]:
    for call in _submit_calls(module.tree):
        if isinstance(call.args[0], ast.Lambda):
            yield Finding(
                rule="PAR001",
                severity=Severity.ERROR,
                path=module.path,
                line=call.args[0].lineno,
                col=call.args[0].col_offset,
                message=(
                    "lambda submitted to a worker pool — lambdas do not "
                    "pickle by reference; define a module-level task "
                    "function"
                ),
            )


@module_rule(
    "PAR002",
    "nested-task",
    Severity.ERROR,
    "locally-defined function passed as a parallel-dispatch task",
)
def check_nested_task(module) -> Iterator[Finding]:
    module_level = _module_level_names(module.tree)
    nested = _nested_callable_names(module.tree)
    for call in _submit_calls(module.tree):
        first = call.args[0]
        if not isinstance(first, ast.Name):
            continue
        if first.id in nested and first.id not in module_level:
            yield Finding(
                rule="PAR002",
                severity=Severity.ERROR,
                path=module.path,
                line=first.lineno,
                col=first.col_offset,
                message=(
                    f"{first.id} is defined inside a function — closures "
                    "do not pickle by reference; hoist the task to "
                    "module level"
                ),
            )
