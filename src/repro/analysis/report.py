"""Text and JSON rendering of an :class:`AnalysisResult`."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .engine import AnalysisResult


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    lines: List[str] = [f.render() for f in result.findings]
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed:")
        lines.extend(f"  {f.render()}" for f in result.suppressed)
    lines.append("")
    counts = Counter(f.rule for f in result.findings)
    summary = (
        f"{len(result.findings)} finding(s) in {len(result.files)} "
        f"file(s), {len(result.suppressed)} suppressed"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if counts:
        summary += " — " + ", ".join(
            f"{rule}: {count}" for rule, count in sorted(counts.items())
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    payload = {
        "version": 1,
        "ok": result.ok,
        "files": len(result.files),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "counts": dict(
            sorted(Counter(f.rule for f in result.findings).items())
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
