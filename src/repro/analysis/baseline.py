"""Baseline diff mode: report only findings *new* since a snapshot.

``repro lint --baseline findings.json`` compares the current run
against a previously captured report (the ``--format json`` output —
the same file CI archives as an artifact) and demotes every finding
already present there.  The exit status then gates only on *new*
findings, which is how a rule can be introduced or tightened without
first paying down every historical hit.

Fingerprints are ``(rule, path, message)`` — deliberately **not** the
line number, so unrelated edits above a finding do not resurrect it,
while any change to what the rule actually reports does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from .findings import Finding

Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.rule, finding.path, finding.message)


def load_fingerprints(path: Path) -> Set[Fingerprint]:
    """Fingerprints of a saved ``--format json`` report.

    Accepts either the full report object (``{"findings": [...]}``)
    or a bare list of finding dicts.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    records = data["findings"] if isinstance(data, dict) else data
    prints: Set[Fingerprint] = set()
    for record in records:
        prints.add(
            (
                str(record.get("rule", "")),
                str(record.get("path", "")),
                str(record.get("message", "")),
            )
        )
    return prints


def split_by_baseline(
    findings: Iterable[Finding], baseline: Set[Fingerprint]
) -> Tuple[List[Finding], List[Finding]]:
    """(new, already-baselined) partition of ``findings``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if fingerprint(finding) in baseline else new).append(finding)
    return new, old


def apply_baseline(result, path: Path) -> None:
    """Demote baselined findings on an ``AnalysisResult`` in place."""
    baseline = load_fingerprints(path)
    new, old = split_by_baseline(result.findings, baseline)
    result.findings = new
    result.baselined = old
