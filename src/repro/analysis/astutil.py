"""Small AST helpers shared by the rule modules.

The central facility is *origin resolution*: mapping a call such as
``np.random.default_rng()`` or ``rng_seed()`` (after ``from
numpy.random import default_rng as rng_seed``) back to the dotted path
of the thing being called (``numpy.random.default_rng``), using the
module's own import statements.  Resolution is purely lexical — no code
is executed — so shadowed names can fool it; the rules accept that
trade in exchange for zero runtime cost.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

#: Conventional aliases resolved even without seeing the import (the
#: parsed snippet may be a fragment in tests).
_WELL_KNOWN = {"np": "numpy"}


def import_aliases(tree: ast.AST, modname: str = "") -> Dict[str, str]:
    """Map local names to the dotted origin they were imported from.

    Relative imports are resolved against ``modname`` when given, so
    ``from ..obs import tracer`` inside ``repro.seed.cache`` yields
    ``{"tracer": "repro.obs.tracer"}``.
    """
    aliases: Dict[str, str] = dict(_WELL_KNOWN)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                origin = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(node, modname)
            if base is None:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{base}.{name.name}" if base else name.name
    return aliases


def resolve_import_base(
    node: ast.ImportFrom, modname: str
) -> Optional[str]:
    """The absolute module an ``ImportFrom`` pulls names out of."""
    if not node.level:
        return node.module or ""
    if not modname:
        return None
    parts = modname.split(".")
    # Importing from within a package's __init__ consumes one fewer part.
    anchor = parts[: len(parts) - node.level]
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor) if anchor else None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_origin(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """The dotted origin of a Name/Attribute expression, or None.

    The head of the chain is translated through the module's imports:
    with ``import numpy as np``, ``np.random.rand`` resolves to
    ``numpy.random.rand``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def call_args(node: ast.Call) -> Tuple[int, List[str]]:
    """(positional-arg count, keyword names) of a call."""
    keywords = [kw.arg for kw in node.keywords if kw.arg is not None]
    return len(node.args), keywords


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/lambda definition node in the tree."""
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            yield node


def is_type_checking_guard(node: ast.If) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    test = node.test
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def module_level_imports(
    tree: ast.Module,
) -> Iterator[Tuple[ast.stmt, bool]]:
    """Module-level import statements, with their TYPE_CHECKING-ness.

    Descends into module-level ``if``/``try`` blocks (a common pattern
    for optional dependencies) but not into function or class bodies —
    deferred imports inside functions are the sanctioned wiring escape
    hatch for top-layer construction and are deliberately not reported.
    """

    def visit(stmts, type_checking: bool):
        for stmt in stmts:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                yield stmt, type_checking
            elif isinstance(stmt, ast.If):
                guarded = type_checking or is_type_checking_guard(stmt)
                yield from visit(stmt.body, guarded)
                yield from visit(stmt.orelse, type_checking)
            elif isinstance(stmt, ast.Try):
                yield from visit(stmt.body, type_checking)
                for handler in stmt.handlers:
                    yield from visit(handler.body, type_checking)
                yield from visit(stmt.orelse, type_checking)
                yield from visit(stmt.finalbody, type_checking)

    yield from visit(tree.body, False)
