# repro: allow-file[KER005] lint is a command-line surface; the report is its output
"""Command-line front end for the static-analysis pass.

Reachable three ways, all equivalent::

    repro lint [paths...]
    python -m repro.analysis [paths...]
    python -m repro.cli lint [paths...]

Exit status is 1 when any unsuppressed finding exists (severity is a
triage label, not a gate level), 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import apply_baseline
from .engine import analyze_paths
from .flow.engine import graph_to_dict, graph_to_dot
from .registry import ENGINE_RULES, FLOW_RULES, all_rules
from .report import render_json, render_text

#: Default lint target when no path is given (repo-root invocation).
DEFAULT_TARGET = Path("src/repro")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json"),
        default="text",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the interprocedural pass (call graph, effect "
            "inference, FLOW001-FLOW003/KER006)"
        ),
    )
    parser.add_argument(
        "--graph",
        type=Path,
        default=None,
        metavar="OUT",
        help=(
            "write the call graph + effect report to OUT "
            "(.dot for Graphviz, anything else for JSON); implies "
            "the flow pass"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FINDINGS_JSON",
        help=(
            "previously saved --format json report; only findings NOT "
            "present in it are reported (and gate the exit status)"
        ),
    )


def list_rules() -> str:
    lines = ["rule    scope    severity  name / description"]
    for rule in sorted(all_rules(), key=lambda r: r.id):
        lines.append(
            f"{rule.id:<7} {rule.scope:<8} {str(rule.severity):<9} "
            f"{rule.name}: {rule.description}"
        )
    for rule_id, description in sorted(ENGINE_RULES.items()):
        lines.append(
            f"{rule_id:<7} {'engine':<8} {'error':<9} {description}"
        )
    for rule_id, description in sorted(FLOW_RULES.items()):
        lines.append(
            f"{rule_id:<7} {'flow':<8} {'error':<9} {description}"
        )
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (used by ``repro lint`` too)."""
    if args.list_rules:
        print(list_rules())
        return 0
    paths: List[Path] = args.paths or [DEFAULT_TARGET]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}")
        return 2
    select: Optional[List[str]] = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    graph_out: Optional[Path] = getattr(args, "graph", None)
    flow = bool(getattr(args, "flow", False)) or graph_out is not None
    result = analyze_paths(paths, select=select, flow=flow)
    baseline_path: Optional[Path] = getattr(args, "baseline", None)
    if baseline_path is not None:
        if not baseline_path.exists():
            print(f"repro lint: no such baseline: {baseline_path}")
            return 2
        apply_baseline(result, baseline_path)
    if graph_out is not None and result.flow_context is not None:
        if graph_out.suffix == ".dot":
            graph_out.write_text(
                graph_to_dot(result.flow_context), encoding="utf-8"
            )
        else:
            graph_out.write_text(
                json.dumps(
                    graph_to_dict(result.flow_context),
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
        print(f"call graph written to {graph_out}")
    if args.fmt == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.show_suppressed))
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "project-specific static analysis: determinism, layering "
            "and DP-kernel invariants"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
