"""Gapped vs ungapped filtering: the paper's Table III in miniature.

Aligns species pairs at increasing phylogenetic distance with both
Darwin-WGA (gapped filtering, banded Smith-Waterman) and the LASTZ-like
baseline (ungapped X-drop filtering), then compares the three paper
metrics: top-10 chain scores, matched base pairs in chains, and coverage
of TBLASTX-confirmed orthologous exons.

Run:  python examples/sensitivity_comparison.py
"""

import numpy as np

from repro import DarwinWGA, LastzAligner, build_chains, make_species_pair
from repro.annotate import exon_coverage, find_orthologous_exons
from repro.chain import compare

DISTANCES = (0.15, 0.55, 1.3)
GENOME = 25_000


def main() -> None:
    header = (
        f"{'distance':>8} {'top-10 gain':>12} {'LASTZ bp':>10} "
        f"{'Darwin bp':>10} {'ratio':>7} {'exons':>6} "
        f"{'LASTZ':>6} {'Darwin':>7}"
    )
    print(header)
    print("-" * len(header))

    for i, distance in enumerate(DISTANCES):
        rng = np.random.default_rng(100 + i)
        pair = make_species_pair(
            GENOME,
            distance,
            rng,
            exon_count=12,
            alignable_fraction=0.35,
            island_mean_length=300,
            island_distance_cap=0.4,
            indel_per_substitution=0.14,
            exon_indel_per_substitution=0.05,
        )
        target, query = pair.target.genome, pair.query.genome

        darwin_chains = build_chains(
            DarwinWGA().align(target, query).alignments
        )
        lastz_chains = build_chains(
            LastzAligner().align(target, query).alignments
        )
        comparison = compare(lastz_chains, darwin_chains)

        confirmed = [
            hit.exon
            for hit in find_orthologous_exons(
                target, pair.target.exons, query
            )
        ]
        lastz_cov = exon_coverage(lastz_chains, confirmed, len(target))
        darwin_cov = exon_coverage(darwin_chains, confirmed, len(target))

        print(
            f"{distance:>8.2f} {comparison.top_score_gain:>+11.2%} "
            f"{comparison.baseline_matches:>10,} "
            f"{comparison.improved_matches:>10,} "
            f"{comparison.match_ratio:>6.2f}x {len(confirmed):>6} "
            f"{lastz_cov.covered_exons:>6} {darwin_cov.covered_exons:>7}"
        )

    print(
        "\nExpected shape (paper Table III): the matched-bp ratio and the "
        "exon-coverage gap grow\nwith phylogenetic distance — gapped "
        "filtering wins exactly where indels fragment the\nungapped blocks "
        "below LASTZ's ~30-match threshold."
    )


if __name__ == "__main__":
    main()
