"""Whole-assembly alignment with repeat masking and reporting.

Builds two multi-chromosome assemblies from a common ancestor (one with a
transplanted segment between chromosomes), masks over-represented repeat
words before seeding, aligns every chromosome pair, and prints the
workload summary, per-chain table and an ASCII dotplot — the library's
stand-in for a UCSC browser session (paper Figure 3).

Run:  python examples/whole_assembly.py
"""

import numpy as np

from repro.core import (
    align_assemblies,
    chain_table,
    dotplot,
    workload_summary,
)
from repro.chain import build_chains
from repro.genome import (
    Assembly,
    Sequence,
    apply_soft_mask,
    frequency_mask,
    mask_stats,
    plant_repeats,
)
from repro.genome.synthesis import markov_genome


def main() -> None:
    rng = np.random.default_rng(17)
    ancestor = markov_genome(24_000, rng, name="anc")
    # Salt with a repeat family so masking has something to do.
    noisy = plant_repeats(
        ancestor, rng, count=30, repeat_length=400, family_size=2
    )

    target = Assembly(
        name="speciesT",
        chromosomes=[
            Sequence(noisy.codes[:12_000], name="chr1"),
            Sequence(noisy.codes[12_000:], name="chr2"),
        ],
    )
    # The query swaps a segment across chromosomes (a translocation).
    q1 = np.concatenate(
        [noisy.codes[:6_000], noisy.codes[18_000:24_000]]
    )
    q2 = np.concatenate([noisy.codes[12_000:18_000], noisy.codes[6_000:12_000]])
    query = Assembly(
        name="speciesQ",
        chromosomes=[
            Sequence(q1, name="chrA"),
            Sequence(q2, name="chrB"),
        ],
    )

    print("Masking over-represented repeat words in the target...")
    masked_chromosomes = []
    for chrom in target:
        mask = frequency_mask(chrom, word_length=12, threshold_multiple=8)
        stats = mask_stats(mask)
        print(f"  {chrom.name}: {stats.fraction:.1%} masked "
              f"({len(stats.intervals)} intervals)")
        masked_chromosomes.append(apply_soft_mask(chrom, mask))
    masked_target = Assembly(
        name=target.name, chromosomes=masked_chromosomes
    )
    print(f"  assembly N50: {target.n50():,} bp, "
          f"GC {target.gc_content():.1%}")

    print("\nAligning every chromosome pair (Darwin-WGA)...")
    result = align_assemblies(masked_target, query)
    print(workload_summary(result))

    chains = build_chains(result.alignments)
    print("\nChains:")
    print(chain_table(chains, limit=8))

    chr1 = masked_target["chr1"]
    chr_a = query["chrA"]
    chr1_alignments = [
        a
        for a in result.alignments
        if a.target_name == "chr1" and a.query_name == "chrA"
    ]
    if chr1_alignments:
        print("\nDotplot chr1 vs chrA (+ forward, - reverse):")
        print(dotplot(chr1_alignments, len(chr1), len(chr_a), size=30))


if __name__ == "__main__":
    main()
