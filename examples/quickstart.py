"""Quickstart: align a synthetic species pair with Darwin-WGA.

Generates two genomes separated by a known evolutionary distance, runs
the full Darwin-WGA pipeline (D-SOFT seeding -> gapped filtering ->
GACT-X extension), chains the alignments, and prints a summary plus the
first MAF block.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DarwinWGA, build_chains, make_species_pair
from repro.io import maf_string


def main() -> None:
    rng = np.random.default_rng(42)
    print("Generating a synthetic species pair "
          "(30 kb, 0.6 subs/site, mosaic conservation)...")
    pair = make_species_pair(
        30_000,
        distance=0.6,
        rng=rng,
        exon_count=10,
        alignable_fraction=0.35,
    )
    target = pair.target.genome
    query = pair.query.genome
    print(f"  target: {len(target):,} bp   query: {len(query):,} bp")

    print("\nRunning Darwin-WGA (paper-default parameters)...")
    aligner = DarwinWGA()
    result = aligner.align(target, query)
    workload = result.workload
    print(f"  raw seed hits     : {workload.seed_hits:,}")
    print(f"  filter tiles (BSW): {workload.filter_tiles:,}")
    print(f"  anchors           : {workload.anchors:,} "
          f"({workload.absorbed_anchors:,} absorbed)")
    print(f"  extension tiles   : {workload.extension_tiles:,}")
    print(f"  alignments        : {len(result.alignments)}")

    chains = build_chains(result.alignments)
    print(f"\nChains (axtChain -linearGap=loose): {len(chains)}")
    for i, chain in enumerate(chains[:5], 1):
        print(
            f"  chain {i}: score={chain.score:,.0f} "
            f"blocks={len(chain)} matches={chain.matches:,} "
            f"target=[{chain.target_start:,}, {chain.target_end:,})"
        )

    if result.alignments:
        print("\nFirst alignment as MAF:")
        block = maf_string(result.alignments[:1], target, query)
        for line in block.splitlines()[:4]:
            print(" ", line[:100] + ("..." if len(line) > 100 else ""))


if __name__ == "__main__":
    main()
