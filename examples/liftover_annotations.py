"""Lift annotations between genomes through WGA chains.

The practical payoff of whole genome alignment: chains map coordinates
between assemblies (UCSC liftOver).  This example aligns a synthetic
pair whose exon positions are known *exactly* in both genomes (the
evolution simulator tracks them), lifts the target exon intervals to the
query through the chains, and validates the lifted coordinates against
the planted ground truth — a closed-loop accuracy check no real-genome
pipeline can perform.

Run:  python examples/liftover_annotations.py
"""

import numpy as np

from repro import DarwinWGA, build_chains, make_species_pair
from repro.chain import LiftOver


def main() -> None:
    rng = np.random.default_rng(4242)
    pair = make_species_pair(
        25_000,
        0.5,
        rng,
        exon_count=12,
        alignable_fraction=0.45,
        island_mean_length=400,
        indel_per_substitution=0.12,
    )
    target, query = pair.target.genome, pair.query.genome

    print("Aligning and chaining...")
    result = DarwinWGA().align(target, query)
    chains = build_chains(result.alignments)
    print(f"  {len(result.alignments)} alignments -> {len(chains)} chains\n")

    lifters = [LiftOver(chain) for chain in chains if chain.strand == 1]

    print(f"{'exon':<8} {'target interval':<20} {'lifted':<20} "
          f"{'truth':<20} {'error':>6}")
    lifted_count = 0
    exact = 0
    for t_exon, q_exon in zip(pair.target.exons, pair.query.exons):
        lifted = None
        for lifter in lifters:
            lifted = lifter.map_interval(t_exon.start, t_exon.end)
            if lifted is not None:
                break
        t_span = f"[{t_exon.start}, {t_exon.end})"
        truth = f"[{q_exon.start}, {q_exon.end})"
        if lifted is None:
            print(f"{t_exon.name:<8} {t_span:<20} {'-- not covered --':<20} "
                  f"{truth:<20} {'':>6}")
            continue
        lifted_count += 1
        error = abs(lifted[0] - q_exon.start)
        if error <= 2:
            exact += 1
        print(f"{t_exon.name:<8} {t_span:<20} "
              f"[{lifted[0]}, {lifted[1]})".ljust(20) + f" {truth:<20} "
              f"{error:>6}")

    print(f"\n{lifted_count}/{len(pair.target.exons)} exons lifted; "
          f"{exact} landed within 2 bp of the planted query coordinates.")
    print("Every lifted exon that the chains cover maps (near-)exactly — "
          "the chains encode the true orthology map.")


if __name__ == "__main__":
    main()
