"""Reconstruct a phylogeny from whole genome alignments (paper Figure 8).

Evolves four species along a known tree, aligns every pair with
Darwin-WGA, estimates K80 distances from the alignment columns (the PHAST
substitute), and rebuilds the tree with neighbour joining.

Run:  python examples/phylogeny.py
"""

import numpy as np

from repro import DarwinWGA
from repro.genome import EvolutionParams, evolve
from repro.genome.synthesis import markov_genome
from repro.phylo import estimate_distance, neighbour_joining


def make_clade(rng):
    """((A:0.05, B:0.05):0.15, (C:0.10, D:0.10):0.15)"""
    root = markov_genome(15_000, rng, name="root")

    def branch(seq, distance, name):
        params = EvolutionParams(distance=distance, indel_per_substitution=0.02)
        return evolve(seq, [], params, rng, name=name).genome

    left = branch(root, 0.15, "left")
    right = branch(root, 0.15, "right")
    return {
        "A": branch(left, 0.05, "A"),
        "B": branch(left, 0.05, "B"),
        "C": branch(right, 0.10, "C"),
        "D": branch(right, 0.10, "D"),
    }


def main() -> None:
    rng = np.random.default_rng(99)
    species = make_clade(rng)
    names = sorted(species)
    print("Planted tree: ((A:0.05,B:0.05):0.15,(C:0.10,D:0.10):0.15)\n")

    aligner = DarwinWGA()
    n = len(names)
    matrix = np.zeros((n, n))
    print("Pairwise WGA + K80 distance estimation:")
    for i in range(n):
        for j in range(i + 1, n):
            result = aligner.align(species[names[i]], species[names[j]])
            d = estimate_distance(
                species[names[i]], species[names[j]], result.alignments
            )
            matrix[i, j] = matrix[j, i] = d
            print(f"  {names[i]}-{names[j]}: {d:.3f} subs/site "
                  f"({len(result.alignments)} alignments)")

    tree = neighbour_joining(names, matrix)
    print(f"\nNeighbour-joining tree: {tree.newick()}")
    print("Expected: A and B are sisters, C and D are sisters, "
          "with A-B the shortest pair distance (~0.10).")


if __name__ == "__main__":
    main()
