"""Project a WGA workload onto the FPGA and ASIC accelerators.

Runs the Darwin-WGA pipeline on a synthetic pair, then feeds the recorded
per-stage workload (seed hits, filter tiles, extension tile traces) into
the hardware models: cycle-level BSW/GACT-X array throughput, DRAM
bandwidth ceilings, the Table IV area/power estimate, and the paper's
cost metrics — iso-sensitive software runtime, FPGA performance/$, and
ASIC performance/W.

Run:  python examples/hardware_projection.py
"""

import numpy as np

from repro import CostModel, DarwinWGA, make_species_pair
from repro.hw import (
    GactXArrayModel,
    asic_estimate,
    default_asic,
    default_fpga,
)


def main() -> None:
    rng = np.random.default_rng(7)
    pair = make_species_pair(
        30_000, 0.8, rng, alignable_fraction=0.35
    )
    print("Aligning a 30 kb synthetic pair (0.8 subs/site)...")
    result = DarwinWGA().align(pair.target.genome, pair.query.genome)
    workload = result.workload
    print(f"  filter tiles: {workload.filter_tiles:,}  "
          f"extension tiles: {workload.extension_tiles:,}")

    fpga = default_fpga()
    asic = default_asic()
    bsw_fpga = fpga.bsw_model()
    bsw_asic = asic.bsw_model()
    print("\nArray throughput (cycle model):")
    print(f"  FPGA BSW : {bsw_fpga.tile_cycles()} cycles/tile -> "
          f"{bsw_fpga.tiles_per_second() * fpga.bsw_arrays / 1e6:.2f}M "
          f"tiles/s across {fpga.bsw_arrays} arrays (paper: 6.25M)")
    print(f"  ASIC BSW : {bsw_asic.tile_cycles()} cycles/tile -> "
          f"{bsw_asic.tiles_per_second() * asic.bsw_arrays / 1e6:.1f}M "
          f"tiles/s across {asic.bsw_arrays} arrays (paper: 70M)")
    gactx = GactXArrayModel(config=asic.array_config)
    traces = workload.extension_tile_traces
    if traces:
        print(f"  ASIC GACT-X: "
              f"{gactx.mean_tiles_per_second(traces) * asic.gactx_arrays / 1e3:.1f}K "
              f"tiles/s on this workload (paper: 300K)")
        print(f"  peak traceback memory: "
              f"{gactx.peak_pointer_bytes(traces) / 1024:.1f} KB "
              f"(budget {gactx.traceback_sram_bytes / 1024:.0f} KB/array)")

    model = CostModel.default()
    iso = model.iso_software_runtime(workload)
    fpga_rt = model.fpga_runtime(workload)
    asic_rt = model.asic_runtime(workload)
    print("\nModelled runtimes for this workload:")
    print(f"  iso-sensitive software : {iso:.3e} s")
    print(f"  Darwin-WGA FPGA        : {fpga_rt.total:.3e} s "
          f"(seed {fpga_rt.seeding:.2e} / filter {fpga_rt.filtering:.2e} "
          f"/ extend {fpga_rt.extension:.2e})")
    print(f"  Darwin-WGA ASIC        : {asic_rt.total:.3e} s")
    print(f"\nImprovements vs iso-sensitive software:")
    print(f"  FPGA performance/$     : "
          f"{model.fpga_perf_per_dollar_improvement(workload):.1f}x "
          f"(paper: 19-24x)")
    print(f"  ASIC performance/W     : "
          f"{model.asic_perf_per_watt_improvement(workload):.0f}x "
          f"(paper: ~1,500x)")

    print("\nASIC area/power breakdown (Table IV):")
    print(asic_estimate().table())


if __name__ == "__main__":
    main()
