"""Figure 9 case study: an exon rescued by gapped filtering.

Searches a distant synthetic pair for TBLASTX-confirmed orthologous exons
that Darwin-WGA's chains cover but the LASTZ-like baseline misses, then
prints the base-level anatomy of one rescued region — alignment length,
identity, and the indels around the seed hits that killed the ungapped
filter (the paper's Figure 9b).

Run:  python examples/rescued_alignment.py
"""

import numpy as np

from repro import DarwinWGA, LastzAligner, build_chains, make_species_pair
from repro.annotate import find_orthologous_exons, uncovered_exons


def find_rescued_pair(seed: int):
    rng = np.random.default_rng(seed)
    pair = make_species_pair(
        30_000,
        1.3,
        rng,
        exon_count=14,
        alignable_fraction=0.35,
        island_mean_length=300,
        island_distance_cap=0.4,
        indel_per_substitution=0.14,
        exon_indel_per_substitution=0.05,
    )
    target, query = pair.target.genome, pair.query.genome
    darwin_chains = build_chains(DarwinWGA().align(target, query).alignments)
    lastz_chains = build_chains(
        LastzAligner().align(target, query).alignments
    )
    confirmed = [
        hit.exon
        for hit in find_orthologous_exons(target, pair.target.exons, query)
    ]
    lastz_missed = {
        (e.start, e.end): e
        for e in uncovered_exons(lastz_chains, confirmed, len(target))
    }
    darwin_missed = {
        (e.start, e.end)
        for e in uncovered_exons(darwin_chains, confirmed, len(target))
    }
    rescued = [
        exon
        for key, exon in lastz_missed.items()
        if key not in darwin_missed
    ]
    return pair, darwin_chains, confirmed, rescued


def describe_region(chains, exon):
    for chain in chains:
        for block in chain.blocks:
            if block.target_start < exon.end and exon.start < block.target_end:
                return block
    return None


def main() -> None:
    for seed in range(200, 230):
        pair, darwin_chains, confirmed, rescued = find_rescued_pair(seed)
        if rescued:
            break
    else:
        print("No rescued exon found in 30 seeds; increase genome size.")
        return

    print(f"Pair at 1.3 subs/site (seed {seed}): "
          f"{len(confirmed)} TBLASTX-confirmed exons, "
          f"{len(rescued)} rescued by gapped filtering.\n")
    exon = rescued[0]
    block = describe_region(darwin_chains, exon)
    print(f"Rescued exon {exon.name}: target [{exon.start:,}, {exon.end:,})")
    print(f"Darwin-WGA alignment block covering it:")
    print(f"  span     : [{block.target_start:,}, {block.target_end:,}) "
          f"({block.target_span:,} bp)")
    print(f"  identity : {block.identity():.1%}")
    gaps = block.cigar.gap_runs()
    print(f"  gap runs : {len(gaps)} "
          f"(lengths: {[length for _, length in gaps][:12]})")
    blocks = block.cigar.ungapped_block_lengths()
    print(f"  ungapped blocks: n={len(blocks)}, "
          f"mean={np.mean(blocks):.1f} bp, max={max(blocks)} bp")
    print(
        "\nWhy LASTZ missed it: the longest gap-free run is "
        f"{max(blocks)} bp — ungapped X-drop extension around any seed "
        "hit in this region cannot accumulate the ~3000 score "
        "(~30 matches) LASTZ requires before an indel cuts it off, "
        "while a 320x(+/-32) banded Smith-Waterman tile crosses the "
        "indels and scores the whole region (paper section VI-B, Fig 9)."
    )


if __name__ == "__main__":
    main()
