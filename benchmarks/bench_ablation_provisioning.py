"""Ablation: array provisioning vs DRAM bandwidth (paper section VI-A).

The paper provisions the ASIC's BSW/GACT-X array counts so that DRAM
bandwidth — not compute — is the bottleneck, and notes performance could
scale further with GDDR/HBM.  This harness sweeps the BSW array count,
schedules a filter-tile stream onto the arrays, generates the DRAM trace,
and reports when demand crosses the sustainable bandwidth of the four
DDR4-2400 channels.
"""

import pytest

from repro.hw import (
    BswArrayModel,
    DramSystem,
    SystolicArrayConfig,
    bandwidth_bound_tiles_per_sec,
    bsw_tile_bytes,
    schedule_tiles,
)

from .conftest import print_table

ARRAY_COUNTS = (8, 16, 32, 64, 128, 256)
TILES = 4096


@pytest.mark.benchmark(group="ablation")
def test_ablation_asic_provisioning(benchmark):
    config = SystolicArrayConfig(n_pe=64, clock_hz=1e9)
    model = BswArrayModel(config=config, tile_size=320, band=32)
    tile_cycles = model.tile_cycles()
    dram = DramSystem()
    bandwidth_ceiling = bandwidth_bound_tiles_per_sec(
        dram, bsw_tile_bytes(320)
    )

    def sweep():
        rows = []
        for n_arrays in ARRAY_COUNTS:
            result = schedule_tiles([tile_cycles] * TILES, n_arrays)
            compute_rate = result.throughput_tiles_per_sec(config.clock_hz)
            effective = min(compute_rate, bandwidth_ceiling)
            rows.append(
                (
                    n_arrays,
                    compute_rate,
                    effective,
                    compute_rate >= bandwidth_ceiling,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_table(
        "Ablation: BSW array count vs DRAM ceiling "
        f"({bandwidth_ceiling / 1e6:.0f}M tiles/s sustainable)",
        ["arrays", "compute Mtiles/s", "effective Mtiles/s", "DRAM-bound"],
        [
            (n, f"{c / 1e6:.1f}", f"{e / 1e6:.1f}", bound)
            for n, c, e, bound in rows
        ],
    )

    compute = [c for _, c, _, _ in rows]
    effective = [e for _, _, e, _ in rows]
    # Compute throughput scales ~linearly with arrays...
    assert compute[-1] > 10 * compute[0]
    # ...but effective throughput hits the DRAM ceiling: the last point
    # is clipped below its compute rate and scaling has stalled (arrays
    # doubled, effective gain well under 2x).
    assert effective[-1] < compute[-1]
    assert effective[-1] / effective[-2] < 1.5
    # The paper's 64-array point sits below the DRAM bound (compute
    # limited but within ~2x of the ceiling it provisions against).
    idx64 = ARRAY_COUNTS.index(64)
    assert effective[idx64] >= 0.4 * effective[-1]
