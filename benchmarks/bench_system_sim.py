"""Cross-check: event-driven system simulation vs the analytic cost model.

The Table V numbers come from closed-form throughput arithmetic; this
harness replays the same (scaled) workload through the whole-accelerator
simulator — list-scheduled arrays, recorded GACT-X row windows, shared
DRAM — and checks the two agree on runtime within a small factor, plus
reports FPGA filter-stream bandwidth against the paper's ~2.1 GB/s.
"""

import pytest

from repro.hw import CostModel, FpgaPlatform, scale_workload, simulate

from .conftest import GENOME_LENGTH, print_table

SCALE = 1.0e6 / GENOME_LENGTH  # modest scale keeps the sim fast


@pytest.mark.benchmark(group="system")
def test_system_simulation_matches_cost_model(benchmark, distant_run):
    workload = scale_workload(distant_run.darwin.workload, SCALE)
    platform = FpgaPlatform()
    model = CostModel.default()

    def run():
        return simulate(workload, platform)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = model.fpga_runtime(workload)

    rows = [
        (
            "filter",
            f"{report.filter.makespan_seconds:.3g}",
            f"{analytic.filtering:.3g}",
            f"{report.filter.utilisation:.2f}",
            f"{report.filter.bandwidth_bytes_per_sec / 1e9:.2f} GB/s",
        ),
        (
            "extension",
            f"{report.extension.makespan_seconds:.3g}",
            f"{analytic.extension:.3g}",
            f"{report.extension.utilisation:.2f}",
            f"{report.extension.bandwidth_bytes_per_sec / 1e6:.2f} MB/s",
        ),
    ]
    print_table(
        "System simulation vs analytic cost model (FPGA, scaled workload)",
        ["stage", "simulated (s)", "analytic (s)", "utilisation", "bandwidth"],
        rows,
    )
    print(
        f"concurrent runtime {report.runtime_seconds:.3g} s, "
        f"DRAM demand {report.bandwidth_fraction:.1%} of sustainable, "
        f"dram_bound={report.dram_bound}"
    )

    # The two models must agree on the filter stage within ~2x (the
    # analytic model adds a DRAM cap; the simulator adds scheduling gaps).
    assert report.filter.makespan_seconds == pytest.approx(
        analytic.filtering, rel=1.0
    )
    # Arrays are fully utilised on a uniform tile stream.
    assert report.filter.utilisation > 0.9
    # Paper: ~2.1 GB/s filter streaming bandwidth on the FPGA.
    assert 1.0e9 < report.filter.bandwidth_bytes_per_sec < 3.5e9
