"""Table VI: platform power (CPU vs FPGA vs ASIC, DRAM included)."""

import pytest

from repro.hw import CPU_POWER_W, FPGA_POWER_W, asic_power_w

from .conftest import print_table


@pytest.mark.benchmark(group="table6")
def test_table6_platform_power(benchmark):
    asic = benchmark(asic_power_w)
    rows = [
        ("CPU (c4.8xlarge)", f"{CPU_POWER_W:.0f}"),
        ("FPGA (Virtex UltraScale+)", f"{FPGA_POWER_W:.0f}"),
        ("ASIC (TSMC 40nm)", f"{asic:.0f}"),
    ]
    print_table("Table VI: platform power (W)", ["platform", "power"], rows)

    # Paper: 215 W > 65 W > 43 W; the ASIC is ~5x below the CPU.
    assert CPU_POWER_W == 215
    assert FPGA_POWER_W == 65
    assert asic == pytest.approx(43.34, abs=1.0)
    assert CPU_POWER_W / asic > 4.5
