"""Figure 1: growth of genome assemblies and WGA species pairs.

The paper's motivation figure plots the cumulative number of genome
assemblies in the NCBI database by year (1a) and the quadratic number of
species pairs available for WGA (1b).  Assembly counts per year are
embedded below (approximate public NCBI eukaryote totals of the paper's
era); the pair series is ``n * (n - 1) / 2``.
"""

import pytest

from .conftest import print_table

#: (year, cumulative eukaryotic assemblies) — NCBI genome database trend.
ASSEMBLY_COUNTS = (
    (2000, 3),
    (2002, 12),
    (2004, 40),
    (2006, 110),
    (2008, 250),
    (2010, 520),
    (2012, 1100),
    (2014, 2300),
    (2016, 4700),
    (2018, 8800),
)


def species_pairs(assemblies: int) -> int:
    """Possible pairwise WGAs among ``assemblies`` genomes (Figure 1b)."""
    return assemblies * (assemblies - 1) // 2


def build_series():
    return [
        (year, count, species_pairs(count))
        for year, count in ASSEMBLY_COUNTS
    ]


@pytest.mark.benchmark(group="fig1")
def test_fig1_database_growth(benchmark):
    series = benchmark(build_series)
    print_table(
        "Figure 1: NCBI genome database growth",
        ["year", "assemblies (1a)", "species pairs (1b)"],
        series,
    )
    # The motivating claims: assemblies grow super-linearly and the pair
    # count grows quadratically, crossing 10M pairs by 2018.
    counts = [row[1] for row in series]
    pairs = [row[2] for row in series]
    assert all(b > a for a, b in zip(counts, counts[1:]))
    assert pairs[-1] > 10_000_000
    # quadratic growth: pair ratio outpaces assembly ratio
    assert pairs[-1] / pairs[-2] > counts[-1] / counts[-2]
