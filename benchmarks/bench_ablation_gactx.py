"""Ablation: GACT-X tile size, overlap, and Y-drop.

Sweeps the three extension parameters around the paper's defaults
(T_e=1920, O=128, Y=9430) on anchors from the distant pair, reporting
matched base pairs and DP cells (the traceback-memory/throughput cost).
Shapes: larger Y bridges longer gaps (more matched bp, more cells);
the default operating point sits on the knee.
"""

import pytest

from repro.core import (
    DarwinWGAConfig,
    ExtensionParams,
    gact_x_extend,
    gapped_filter,
)
from repro.seed import SeedIndex, dsoft_seed

from .conftest import print_table

MAX_ANCHORS = 8


def collect_anchors(run):
    config = DarwinWGAConfig()
    target = run.pair.target.genome
    query = run.pair.query.genome
    index = SeedIndex.build(target, config.seed)
    seeding = dsoft_seed(index, query, config.dsoft)
    filtered = gapped_filter(
        target,
        query,
        seeding.target_positions,
        seeding.query_positions,
        config.scoring,
        config.filtering,
    )
    anchors = sorted(filtered.anchors, key=lambda a: -a.filter_score)
    return target, query, anchors[:MAX_ANCHORS]


def extend_all(target, query, anchors, scoring, params):
    matched = 0
    cells = 0
    for anchor in anchors:
        result = gact_x_extend(target, query, anchor, scoring, params)
        if result.alignment is not None:
            matched += result.alignment.matches
        cells += result.cells
    return matched, cells


@pytest.mark.benchmark(group="ablation")
def test_ablation_gactx_parameters(benchmark, distant_run):
    scoring = DarwinWGAConfig().scoring

    def evaluate():
        target, query, anchors = collect_anchors(distant_run)
        assert anchors
        sweeps = {}
        sweeps["ydrop"] = [
            (y, *extend_all(
                target, query, anchors, scoring,
                ExtensionParams(ydrop=y, threshold=1000),
            ))
            for y in (500, 2000, 9430, 20000)
        ]
        sweeps["tile"] = [
            (t, *extend_all(
                target, query, anchors, scoring,
                ExtensionParams(tile_size=t, overlap=64, threshold=1000),
            ))
            for t in (256, 960, 1920)
        ]
        sweeps["overlap"] = [
            (o, *extend_all(
                target, query, anchors, scoring,
                ExtensionParams(overlap=o, threshold=1000),
            ))
            for o in (0, 128, 512)
        ]
        return sweeps

    sweeps = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    for name, series in sweeps.items():
        print_table(
            f"Ablation: GACT-X {name} sweep (distant pair)",
            [name, "matched bp", "DP cells"],
            [(v, m, c) for v, m, c in series],
        )

    ydrop_matched = [m for _, m, _ in sweeps["ydrop"]]
    ydrop_cells = [c for _, _, c in sweeps["ydrop"]]
    # Larger Y never hurts quality and always costs more computation.
    assert ydrop_matched == sorted(ydrop_matched)
    assert ydrop_cells == sorted(ydrop_cells)
    # The paper default (9430) captures ~all of what Y=20000 finds.
    assert ydrop_matched[2] >= 0.95 * ydrop_matched[3]
    # Overlap stabilises stitching; matched bp must not collapse at O=128.
    overlap_matched = [m for _, m, _ in sweeps["overlap"]]
    assert overlap_matched[1] >= 0.8 * max(overlap_matched)
