"""Wall-clock cost of ``repro lint``, with and without ``--flow``.

The interprocedural pass (call graph + effect fixed point + dataflow
rules) is the expensive half of the linter; this benchmark pins both
numbers into ``BENCH_PIPELINE.json`` under a ``lint`` section so a
later PR that regresses the analysis to quadratic behaviour shows up
in the perf trajectory, not in CI feel.
"""

import json
import time
from pathlib import Path

from repro.analysis import analyze_paths

from .conftest import BENCH_PIPELINE_PATH

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Repetitions per timed path; the minimum is reported.
REPEATS = 3


def _record_lint(entry):
    """Merge the lint timings into the aggregate artifact."""
    try:
        artifact = json.loads(BENCH_PIPELINE_PATH.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    artifact["lint"] = entry
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True)
    )


def _timed(flow):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = analyze_paths([SRC], flow=flow)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_lint_wall_time_with_and_without_flow():
    plain_seconds, plain = _timed(flow=False)
    flow_seconds, flowed = _timed(flow=True)

    # Both passes must be clean on the real tree (the self-clean gate
    # re-checked under timing conditions).
    assert plain.ok, [f.render() for f in plain.findings]
    assert flowed.ok, [f.render() for f in flowed.findings]
    assert flowed.flow_context is not None

    graph = flowed.flow_context.graph
    entry = {
        "files": len(plain.files),
        "functions": len(graph.functions),
        "plain_seconds": round(plain_seconds, 4),
        "flow_seconds": round(flow_seconds, 4),
        "flow_overhead_seconds": round(
            max(0.0, flow_seconds - plain_seconds), 4
        ),
        "repeats": REPEATS,
    }
    _record_lint(entry)

    # Sanity envelope, not a tight gate: the whole tree (~120 files)
    # must lint in interactive time even with the flow pass on.
    assert flow_seconds < 60.0
