"""Table III: sensitivity of Darwin-WGA vs LASTZ on four species pairs.

Reproduces all three metrics of the paper's Table III:

* average top-10 chain score improvement (paper: +0.03% .. +5.73%),
* matched base pairs in all chains (paper ratios: 1.25x .. 3.12x),
* orthologous exon counts: mini-TBLASTX total, per-aligner coverage.

Expected shapes: Darwin-WGA >= LASTZ on every metric, improvements
growing with phylogenetic distance.
"""

import pytest

from repro.annotate import exon_coverage, find_orthologous_exons
from repro.chain import compare

from .conftest import print_table


def sensitivity_row(run):
    comparison = compare(run.lastz_chains, run.darwin_chains)
    target = run.pair.target.genome
    confirmed = find_orthologous_exons(
        target, run.pair.target.exons, run.pair.query.genome
    )
    exons = [hit.exon for hit in confirmed]
    lastz_cov = exon_coverage(run.lastz_chains, exons, len(target))
    darwin_cov = exon_coverage(run.darwin_chains, exons, len(target))
    return comparison, len(exons), lastz_cov, darwin_cov


@pytest.mark.benchmark(group="table3")
def test_table3_sensitivity(benchmark, pair_runs):
    results = benchmark.pedantic(
        lambda: [sensitivity_row(run) for run in pair_runs],
        rounds=1,
        iterations=1,
    )

    rows = []
    for run, (cmp_result, total, lastz_cov, darwin_cov) in zip(
        pair_runs, results
    ):
        rows.append(
            (
                run.name,
                f"{run.distance:.2f}",
                f"{cmp_result.top_score_gain:+.2%}",
                cmp_result.baseline_matches,
                cmp_result.improved_matches,
                f"({cmp_result.match_ratio:.2f}x)",
                total,
                lastz_cov.covered_exons,
                darwin_cov.covered_exons,
            )
        )
    print_table(
        "Table III: sensitivity comparison",
        [
            "pair",
            "dist",
            "top-10 gain",
            "LASTZ bp",
            "Darwin bp",
            "ratio",
            "exons(TBLASTX)",
            "LASTZ",
            "Darwin-WGA",
        ],
        rows,
    )

    ratios = [r[0].match_ratio for r in results]
    # Paper shape 1: Darwin-WGA never loses matched base pairs.
    for ratio in ratios:
        assert ratio >= 0.9
    # Paper shape 2: the improvement grows with phylogenetic distance —
    # the most distant pair gains clearly, the closest is near parity.
    assert ratios[-1] > 1.1
    assert ratios[-1] > ratios[0] - 0.05
    # Paper shape 3: exon coverage at least matches LASTZ everywhere.
    for _, _, lastz_cov, darwin_cov in results:
        assert darwin_cov.covered_exons >= lastz_cov.covered_exons
