"""Serving-path latency and load-shedding under a saturating burst.

An in-process ``ServeDaemon`` (real HTTP socket, real journal, real
scheduler) takes a burst of alignment jobs larger than its admission
queue.  Three numbers land in ``BENCH_PIPELINE.json`` under ``serve``:

* **p50 / p99 job latency** — admission to completion, from the
  daemon's own ``serve_job_latency_seconds`` histogram (exact
  nearest-rank quantiles, not bucket interpolation);
* **shed rate** — the fraction of the burst refused with HTTP 429.
  Bounded admission means saturation degrades into *fast, honest
  refusals*; the assertion here is that every accepted job completes
  and every refusal was immediate, never that the queue absorbs
  everything;
* **submit round-trip** — time for one ``POST /jobs`` (validate +
  fsync'd journal append + enqueue + HTTP), the latency floor a
  client sees even on an idle daemon.

The genomes are deliberately small: this benchmark measures the
service machinery around the aligner, not the aligner itself (the
kernel and scaling benches own that).
"""

import json
import random
import time

import pytest

from repro.service import ServeClient, ServeConfig, ServeDaemon
from repro.service.client import ServeError

from .conftest import BENCH_PIPELINE_PATH, print_table

GENOME_BP = 1200
BURST = 12
MAX_QUEUED = 4
MUTATION_STEP = 83


def _write_genomes(tmp_path):
    rng = random.Random(59)
    base = "".join(rng.choice("ACGT") for _ in range(GENOME_BP))
    mutated = list(base)
    for i in range(0, len(mutated), MUTATION_STEP):
        mutated[i] = "ACGT"[("ACGT".index(mutated[i]) + 1) % 4]
    target = tmp_path / "target.fa"
    target.write_text(f">chrT\n{base}\n")
    query = tmp_path / "query.fa"
    query.write_text(f">chrQ\n{''.join(mutated)}\n")
    return target, query


def _record(entry):
    try:
        artifact = json.loads(BENCH_PIPELINE_PATH.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    artifact["serve"] = entry
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True)
    )


@pytest.mark.benchmark(group="serve")
def test_serve_burst_latency_and_shedding(benchmark, tmp_path):
    target, query = _write_genomes(tmp_path)
    spec = {"kind": "align", "target": str(target), "query": str(query)}

    def burst():
        daemon = ServeDaemon(
            ServeConfig(
                state_dir=tmp_path / "state",
                port=0,
                workers=1,
                max_queued=MAX_QUEUED,
            )
        )
        port = daemon.start()
        client = ServeClient(port=port)
        accepted, shed, submit_seconds = [], 0, []
        for _ in range(BURST):
            start = time.perf_counter()
            try:
                accepted.append(client.submit(dict(spec))["id"])
            except ServeError as error:
                assert error.status == 429
                shed += 1
            submit_seconds.append(time.perf_counter() - start)
        for job_id in accepted:
            record = client.wait(job_id, timeout=300, poll=0.02)
            assert record["state"] == "done"
        latency = daemon.registry.histogram("serve_job_latency_seconds")
        measurements = {
            "accepted": len(accepted),
            "shed": shed,
            "latency_p50": latency.quantile(0.5),
            "latency_p99": latency.quantile(0.99),
            "submit_p50": sorted(submit_seconds)[len(submit_seconds) // 2],
        }
        daemon.stop()
        return measurements

    result = benchmark.pedantic(burst, rounds=1, iterations=1)

    assert result["accepted"] + result["shed"] == BURST
    assert result["accepted"] >= 1
    # The queue bound held: at most max_queued jobs were ever waiting,
    # so a fast submit loop must have been refused at least once.
    assert result["shed"] >= 1
    _record(
        {
            "burst": BURST,
            "max_queued": MAX_QUEUED,
            "genome_bp": GENOME_BP,
            "accepted": result["accepted"],
            "shed": result["shed"],
            "shed_rate": result["shed"] / BURST,
            "job_latency_p50_seconds": result["latency_p50"],
            "job_latency_p99_seconds": result["latency_p99"],
            "submit_roundtrip_p50_seconds": result["submit_p50"],
        }
    )
    print_table(
        f"Serving under a {BURST}-job burst (queue bound {MAX_QUEUED})",
        ("metric", "value"),
        [
            ("accepted", result["accepted"]),
            ("shed (429)", result["shed"]),
            ("job latency p50", f"{result['latency_p50']:.3f}s"),
            ("job latency p99", f"{result['latency_p99']:.3f}s"),
            ("submit round-trip p50", f"{result['submit_p50'] * 1e3:.2f}ms"),
        ],
    )
