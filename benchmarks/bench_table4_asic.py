"""Table IV: ASIC area and power breakdown (TSMC 40 nm, 1 GHz).

The component model is calibrated so the paper's provisioning (64 BSW
arrays, 12 GACT-X arrays of 64 PEs, 16 KB traceback SRAM per PE, 4 DDR4
channels) reproduces the published totals: ~35.92 mm^2 and ~43.34 W.  The
benchmark also sweeps provisioning to show how the estimate scales.
"""

import pytest

from repro.hw import asic_estimate

from .conftest import print_table


@pytest.mark.benchmark(group="table4")
def test_table4_asic_breakdown(benchmark):
    estimate = benchmark(asic_estimate)
    print()
    print(estimate.table())

    by_name = {c.name: c for c in estimate.components}
    assert estimate.area_mm2 == pytest.approx(35.92, abs=0.1)
    assert estimate.power_w == pytest.approx(43.34, abs=1.0)
    # BSW arrays dominate logic area and consume ~60% of chip power.
    logic_power = (
        by_name["BSW Logic"].power_w + by_name["GACT-X Logic"].power_w
    )
    assert by_name["BSW Logic"].power_w > 0.55 * estimate.power_w
    assert by_name["BSW Logic"].area_mm2 > by_name["GACT-X Logic"].area_mm2
    # GACT-X's traceback SRAM takes up nearly half the chip area.
    assert by_name["Traceback SRAM"].area_mm2 > 0.4 * estimate.area_mm2


@pytest.mark.benchmark(group="table4")
def test_table4_provisioning_sweep(benchmark):
    def sweep():
        return [
            (bsw, gactx, asic_estimate(bsw_arrays=bsw, gactx_arrays=gactx))
            for bsw, gactx in ((32, 6), (64, 12), (128, 24))
        ]

    results = benchmark(sweep)
    rows = [
        (bsw, gactx, f"{e.area_mm2:.2f}", f"{e.power_w:.2f}")
        for bsw, gactx, e in results
    ]
    print_table(
        "Table IV sweep: arrays vs area/power",
        ["BSW arrays", "GACT-X arrays", "area (mm2)", "power (W)"],
        rows,
    )
    areas = [e.area_mm2 for _, _, e in results]
    assert areas[0] < areas[1] < areas[2]
