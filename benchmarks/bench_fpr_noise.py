"""Section VI-B: false-positive-rate (noise) analysis.

The paper shuffles the target genome preserving 2-mer statistics, aligns
the real query against it, and counts every matched base pair as a false
positive.  Reported numbers: Darwin-WGA FPR 0.0007% vs LASTZ 0.0002% at
``H_f = 4000`` — and a blow-up to ~1.48% when ``H_f`` drops to LASTZ's
3000, which is why 4000 is the default.  Shapes to reproduce: tiny FPR
for both aligners at the default threshold, orders-of-magnitude larger
FPR at the lowered threshold.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.chain import build_chains, total_matches
from repro.core import DarwinWGA, DarwinWGAConfig
from repro.genome import shuffle_preserving_kmers
from repro.lastz import LastzAligner

from .conftest import print_table

REPEATS = 3


def false_positive_matches(aligner, shuffled_targets, query):
    counts = []
    for shuffled in shuffled_targets:
        result = aligner.align(shuffled, query)
        counts.append(total_matches(build_chains(result.alignments)))
    return float(np.mean(counts))


@pytest.mark.benchmark(group="fpr")
def test_fpr_noise_analysis(benchmark, distant_run):
    target = distant_run.pair.target.genome
    query = distant_run.pair.query.genome
    real_darwin = total_matches(distant_run.darwin_chains)
    real_lastz = total_matches(distant_run.lastz_chains)

    def evaluate():
        rng = np.random.default_rng(1234)
        shuffled = [
            shuffle_preserving_kmers(target, rng, k=2)
            for _ in range(REPEATS)
        ]
        darwin_fp = false_positive_matches(DarwinWGA(), shuffled, query)
        lastz_fp = false_positive_matches(LastzAligner(), shuffled, query)
        lenient_config = DarwinWGAConfig()
        lenient_config = replace(
            lenient_config,
            filtering=replace(lenient_config.filtering, threshold=3000),
            extension=replace(lenient_config.extension, threshold=3000),
        )
        darwin_lenient_fp = false_positive_matches(
            DarwinWGA(lenient_config), shuffled, query
        )
        return darwin_fp, lastz_fp, darwin_lenient_fp

    darwin_fp, lastz_fp, darwin_lenient_fp = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    def fpr(false_positives, real):
        return false_positives / real if real else 0.0

    rows = [
        (
            "Darwin-WGA (Hf=4000)",
            real_darwin,
            f"{darwin_fp:.1f}",
            f"{fpr(darwin_fp, real_darwin):.5%}",
        ),
        (
            "LASTZ (default)",
            real_lastz,
            f"{lastz_fp:.1f}",
            f"{fpr(lastz_fp, real_lastz):.5%}",
        ),
        (
            "Darwin-WGA (Hf=3000)",
            real_darwin,
            f"{darwin_lenient_fp:.1f}",
            f"{fpr(darwin_lenient_fp, real_darwin):.5%}",
        ),
    ]
    print_table(
        "Section VI-B: false positives on 2-mer-shuffled target "
        f"(mean of {REPEATS} shuffles)",
        ["aligner", "real matched bp", "FP matched bp", "FPR"],
        rows,
    )

    # Paper shapes: at the default threshold both aligners are near-silent
    # on the null model; lowering Hf to 3000 raises Darwin-WGA's FPR.
    assert fpr(darwin_fp, real_darwin) < 0.02
    assert fpr(lastz_fp, real_lastz) < 0.02
    assert darwin_lenient_fp >= darwin_fp
