"""Speedup-vs-workers of the parallel execution engine.

Runs the largest (most extension-heavy) species pair end-to-end at
several worker counts, asserts the parallel runs are byte-identical to
the serial one (the engine's core contract), and records the wall-clock
and speedup curve into ``BENCH_PIPELINE.json`` under
``parallel_scaling``.  On a single-core container the curve is flat —
the interesting artifact numbers come from multicore runs — but the
identity assertion holds everywhere.
"""

import json
import time

import numpy as np
import pytest

from repro.core import DarwinWGA
from repro.genome import make_species_pair

from .conftest import (
    BENCH_PIPELINE_PATH,
    EXON_COUNT,
    GENOME_LENGTH,
    PAIR_MODEL,
    PAIR_SPECS,
    print_table,
)

WORKER_COUNTS = (1, 2, 4)


def _record_scaling(pair_name, timings):
    """Merge the scaling curve into the aggregate perf artifact."""
    try:
        artifact = json.loads(BENCH_PIPELINE_PATH.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    serial = timings[1]
    artifact["parallel_scaling"] = {
        "pair": pair_name,
        "genome_length": GENOME_LENGTH,
        "wall_seconds": {str(w): t for w, t in timings.items()},
        "speedup": {str(w): serial / t for w, t in timings.items()},
        "identical_output": True,
    }
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True)
    )


@pytest.mark.benchmark(group="parallel_scaling")
def test_parallel_scaling(benchmark):
    name, distance, seed = PAIR_SPECS[-1]
    pair = make_species_pair(
        GENOME_LENGTH,
        distance,
        np.random.default_rng(seed),
        exon_count=EXON_COUNT,
        **PAIR_MODEL,
    )
    target, query = pair.target.genome, pair.query.genome

    def sweep():
        timings = {}
        results = {}
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            with DarwinWGA(workers=workers) as aligner:
                results[workers] = aligner.align(target, query)
            timings[workers] = time.perf_counter() - start
        return timings, results

    timings, results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial = results[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        assert results[workers].alignments == serial.alignments, (
            f"workers={workers} changed the output"
        )
    _record_scaling(name, timings)

    print_table(
        f"Parallel scaling ({name}, {GENOME_LENGTH:,} bp)",
        ("workers", "seconds", "speedup"),
        [
            (w, f"{timings[w]:.2f}", f"{timings[1] / timings[w]:.2f}x")
            for w in WORKER_COUNTS
        ],
    )
