"""Barrier vs streamed scheduling of the parallel extension stage.

Runs the most distant (most extension-heavy) species pair end-to-end at
several worker counts under both parallel schedules — the historical
barrier phases (``streaming=False``) and the streamed bounded-queue
dataflow — asserting every run is byte-identical to serial, and records
the study into ``BENCH_PIPELINE.json`` under ``parallel_scaling``:

* per-mode wall-clock (best of ``ROUNDS`` to damp scheduler noise),
* ``streaming_improvement`` — barrier wall / streamed wall,
* per-mode ``idle_tail_seconds`` / ``occupancy`` from the schedule's
  :class:`repro.obs.occupancy.StreamStats`, and the derived
  ``idle_tail_reduction``,
* the targets ``repro bench check`` gates against: the streamed
  schedule must beat the barrier by >= 1.3x at workers=2 on this pair
  and remove >= 50% of its idle tail.

The improvement on a single-core container comes from cutting wasted
speculation (the barrier dispatches whole batch windows against a stale
coverage grid; the stream's eager replay and diagonal deferral keep
dispatched work near the serial minimum) plus producer/extension
overlap; on multicore boxes the overlap term grows.
"""

import json
import time

import numpy as np
import pytest

from repro.core import DarwinWGA, StreamParams  # noqa: F401 (A/B knob)
from repro.genome import make_species_pair

from .conftest import (
    BENCH_PIPELINE_PATH,
    EXON_COUNT,
    GENOME_LENGTH,
    PAIR_MODEL,
    PAIR_SPECS,
    print_table,
)

WORKER_COUNTS = (1, 2, 4)

#: Repeats per (mode, workers) cell; best wall-clock is recorded.
ROUNDS = 2

#: Gated by ``repro bench check`` against the current artifact.
TARGETS = {
    "streaming_improvement": 1.3,
    "idle_tail_reduction": 0.5,
    "at_workers": "2",
}


def _run_mode(target, query, workers, streaming):
    """Best-of-ROUNDS wall clock for one schedule; returns stream stats
    of the fastest round alongside the result."""
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        with DarwinWGA(workers=workers, streaming=streaming) as aligner:
            result = aligner.align(target, query)
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, result, aligner.last_stream)
    return best


def _record_scaling(pair_name, study):
    """Merge the barrier-vs-stream study into the aggregate artifact."""
    try:
        artifact = json.loads(BENCH_PIPELINE_PATH.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    artifact["parallel_scaling"] = dict(
        study,
        pair=pair_name,
        genome_length=GENOME_LENGTH,
        targets=TARGETS,
    )
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True)
    )


def _idle_tail_reduction(barrier_idle, streamed_idle):
    if barrier_idle <= 1e-9:
        return 1.0 if streamed_idle <= barrier_idle + 1e-9 else 0.0
    return 1.0 - streamed_idle / barrier_idle


@pytest.mark.benchmark(group="parallel_scaling")
def test_parallel_scaling(benchmark):
    name, distance, seed = PAIR_SPECS[-1]
    pair = make_species_pair(
        GENOME_LENGTH,
        distance,
        np.random.default_rng(seed),
        exon_count=EXON_COUNT,
        **PAIR_MODEL,
    )
    target, query = pair.target.genome, pair.query.genome

    def sweep():
        serial_wall, serial, _ = _run_mode(target, query, 1, None)
        modes = {"barrier": {}, "streamed": {}}
        identical = True
        for workers in WORKER_COUNTS[1:]:
            for mode, streaming in (
                ("barrier", False),
                ("streamed", None),
            ):
                wall, result, stream = _run_mode(
                    target, query, workers, streaming
                )
                identical = identical and (
                    result.alignments == serial.alignments
                )
                modes[mode][str(workers)] = {
                    "wall_seconds": wall,
                    "idle_tail_seconds": stream["idle_tail_seconds"],
                    "occupancy": stream["occupancy"],
                    "peak_in_flight": stream["peak_in_flight"],
                    "backpressure_stalls": stream["backpressure_stalls"],
                    "dispatched_tasks": stream["dispatched_tasks"],
                }
        return serial_wall, modes, identical

    serial_wall, modes, identical = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    assert identical, "a parallel schedule changed the output"

    study = {
        "serial_seconds": serial_wall,
        "modes": modes,
        "identical_output": identical,
        "streaming_improvement": {
            w: modes["barrier"][w]["wall_seconds"]
            / modes["streamed"][w]["wall_seconds"]
            for w in modes["streamed"]
        },
        "idle_tail_reduction": {
            w: _idle_tail_reduction(
                modes["barrier"][w]["idle_tail_seconds"],
                modes["streamed"][w]["idle_tail_seconds"],
            )
            for w in modes["streamed"]
        },
    }
    _record_scaling(name, study)

    rows = []
    for w in sorted(modes["streamed"]):
        barrier, streamed = modes["barrier"][w], modes["streamed"][w]
        rows.append(
            (
                w,
                f"{barrier['wall_seconds']:.2f}",
                f"{streamed['wall_seconds']:.2f}",
                f"{study['streaming_improvement'][w]:.2f}x",
                f"{barrier['idle_tail_seconds']:.3f}",
                f"{streamed['idle_tail_seconds']:.3f}",
                f"{study['idle_tail_reduction'][w]:.0%}",
            )
        )
    print_table(
        f"Barrier vs streamed ({name}, {GENOME_LENGTH:,} bp, "
        f"serial {serial_wall:.2f}s)",
        (
            "workers",
            "barrier s",
            "streamed s",
            "improvement",
            "barrier idle",
            "streamed idle",
            "tail cut",
        ),
        rows,
    )
