"""Figure 2: distribution of ungapped alignment block sizes.

The paper plots the lengths of gap-free alignment blocks in the top-10
chains of a close pair (human-chimp: indels every ~641 bp) and a distant
pair (human-mouse: every ~31 bp), with LASTZ's 30-match requirement as a
red line — everything left of the line is invisible to ungapped
filtering.  Here the close/distant synthetic pairs play those roles; the
*shape* to reproduce is the order-of-magnitude drop in mean block length
and the large below-cutoff fraction for the distant pair.
"""

import numpy as np
import pytest

from repro.chain import (
    block_length_histogram,
    fraction_below,
    ungapped_block_lengths,
)

from .conftest import print_table

LASTZ_MIN_MATCHES = 30


def block_stats(chains):
    lengths = ungapped_block_lengths(chains, top_k=10)
    if lengths.size == 0:
        return lengths, 0.0, 0.0
    return lengths, float(np.mean(lengths)), fraction_below(
        lengths, LASTZ_MIN_MATCHES
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_ungapped_block_distribution(benchmark, pair_runs):
    close, distant = pair_runs[0], pair_runs[-1]

    def compute():
        return (
            block_stats(close.darwin_chains),
            block_stats(distant.darwin_chains),
        )

    (close_stats, distant_stats) = benchmark(compute)
    close_lengths, close_mean, close_below = close_stats
    distant_lengths, distant_mean, distant_below = distant_stats

    rows = [
        (
            close.name,
            f"{close.distance:.2f}",
            close_lengths.size,
            f"{close_mean:.1f}",
            f"{close_below:.1%}",
        ),
        (
            distant.name,
            f"{distant.distance:.2f}",
            distant_lengths.size,
            f"{distant_mean:.1f}",
            f"{distant_below:.1%}",
        ),
    ]
    print_table(
        "Figure 2: ungapped block lengths in top-10 chains "
        f"(red line at {LASTZ_MIN_MATCHES} bp)",
        ["pair", "dist", "blocks", "mean len", "< 30bp"],
        rows,
    )
    counts, edges = block_length_histogram(distant_lengths)
    print("distant-pair histogram (log bins):")
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        print(f"  [{lo:>6}, {hi:>6}): {count}")

    # Paper shapes: distant pairs have far shorter ungapped blocks, and a
    # much larger fraction falls below the ungapped-filter line.
    assert distant_mean < close_mean
    assert distant_below > close_below
    assert distant_below > 0.3
