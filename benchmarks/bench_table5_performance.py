"""Table V: runtime and performance comparison across platforms.

For each species pair the harness reports the paper's columns: the
(modelled) LASTZ runtime, the per-stage Darwin-WGA workload (seeds,
filter tiles, extension tiles), the iso-sensitive software runtime
(``filter_tiles / 225K tiles/s``, the paper's estimation method), the
FPGA and ASIC modelled runtimes, and the two improvement metrics:
performance/$ for the FPGA and performance/W for the ASIC, both against
iso-sensitive software.

Workloads are measured on the synthetic pairs and then extrapolated to
the paper's ~100 Mbp genome scale with :func:`repro.hw.scale_workload`
(seed hits and filter tiles grow quadratically with genome length,
extension tiles linearly) — this is what produces the paper's
filter-dominated workload shape and its headline improvement bands
(FPGA: 19-24x perf/$; ASIC: ~1,500x perf/W).
"""

import pytest

from repro.hw import CostModel, scale_workload

from .conftest import GENOME_LENGTH, print_table

#: The paper's genomes are ~100-140 Mbp; scale the synthetic workloads up.
PAPER_GENOME_LENGTH = 100e6
SCALE_FACTOR = PAPER_GENOME_LENGTH / GENOME_LENGTH


@pytest.mark.benchmark(group="table5")
def test_table5_performance(benchmark, pair_runs):
    model = CostModel.default()

    def evaluate():
        rows = []
        for run in pair_runs:
            workload = scale_workload(run.darwin.workload, SCALE_FACTOR)
            lastz_workload = scale_workload(
                run.lastz.workload, SCALE_FACTOR
            )
            rows.append(
                (
                    run,
                    workload,
                    model.lastz_runtime(lastz_workload).total,
                    model.iso_software_runtime(workload),
                    model.fpga_runtime(workload).total,
                    model.asic_runtime(workload).total,
                    model.fpga_perf_per_dollar_improvement(workload),
                    model.asic_perf_per_watt_improvement(workload),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = []
    for run, w, lastz_s, iso_s, fpga_s, asic_s, perf_d, perf_w in rows:
        table.append(
            (
                run.name,
                f"{lastz_s:.3g}",
                f"{w.seed_hits:.2e}",
                f"{w.filter_tiles:.2e}",
                f"{w.extension_tiles:.2e}",
                f"{iso_s:.3g}",
                f"{fpga_s:.3g}",
                f"{asic_s:.3g}",
                f"{perf_d:.1f}x",
                f"{perf_w:.0f}x",
            )
        )
    print_table(
        "Table V: runtimes (s) at paper genome scale "
        f"(workloads x{SCALE_FACTOR:.0f} quadratic/linear)",
        [
            "pair",
            "LASTZ",
            "seeds",
            "filter tiles",
            "ext tiles",
            "iso s/w",
            "FPGA",
            "ASIC",
            "perf/$ (FPGA)",
            "perf/W (ASIC)",
        ],
        table,
    )

    for run, w, lastz_s, iso_s, fpga_s, asic_s, perf_d, perf_w in rows:
        # Paper shape: a large slowdown from LASTZ to iso-sensitive
        # software (paper: ~200x on average; our synthetic seed-hit
        # density gives the same order of magnitude).
        assert iso_s > 10 * lastz_s
        # Hardware ordering and improvement bands around the paper's
        # 19-24x (FPGA perf/$) and ~1,500x (ASIC perf/W).
        assert fpga_s < iso_s
        assert asic_s < fpga_s
        assert 8 < perf_d < 60
        assert 400 < perf_w < 6000
