"""Figure 10: GACT vs GACT-X — alignment quality and throughput.

The paper sweeps GACT's traceback memory (512 KB, 1 MB, 2 MB -> tile
sizes 1024/1448/2048) and compares matched base pairs and throughput
(bp aligned per second on the modelled array) against GACT-X's default
configuration, all normalised to GACT-X.  Shapes to reproduce: GACT's
quality grows with traceback memory but stays at or below GACT-X, and
its throughput is substantially lower because every tile computes the
full ``T^2`` cell matrix.

Anchors are regenerated with Darwin-WGA's own seeding and gapped
filtering on the most distant pair, mirroring the paper's use of ce11/cb4
chromosome X anchors.
"""

import pytest

from repro.core import (
    DarwinWGAConfig,
    ExtensionParams,
    GactParams,
    gact_extend,
    gact_x_extend,
    gapped_filter,
    tile_size_for_memory,
)
from repro.hw import (
    GactXArrayModel,
    SystolicArrayConfig,
    dense_tile_cycles,
)
from repro.seed import SeedIndex, dsoft_seed

from .conftest import print_table

MEMORY_POINTS = (512 * 1024, 1024 * 1024, 2 * 1024 * 1024)
ARRAY = SystolicArrayConfig(n_pe=64, clock_hz=1e9)
MAX_ANCHORS = 10


def collect_anchors(run):
    config = DarwinWGAConfig()
    target = run.pair.target.genome
    query = run.pair.query.genome
    index = SeedIndex.build(target, config.seed)
    seeding = dsoft_seed(index, query, config.dsoft)
    filtered = gapped_filter(
        target,
        query,
        seeding.target_positions,
        seeding.query_positions,
        config.scoring,
        config.filtering,
    )
    anchors = sorted(filtered.anchors, key=lambda a: -a.filter_score)
    return target, query, anchors[:MAX_ANCHORS]


def run_gact(target, query, anchors, scoring, memory_bytes):
    tile = tile_size_for_memory(memory_bytes)
    params = GactParams(
        tile_size=tile, overlap=min(128, tile // 8), threshold=1000
    )
    matched = 0
    cycles = 0
    for anchor in anchors:
        result = gact_extend(target, query, anchor, scoring, params)
        if result.alignment is not None:
            matched += result.alignment.matches
        for trace in result.tiles:
            cycles += dense_tile_cycles(
                trace.rows, trace.rows, ARRAY, traceback_steps=2 * trace.rows
            )
    return matched, cycles


def run_gact_x(target, query, anchors, scoring):
    params = ExtensionParams(threshold=1000)
    model = GactXArrayModel(config=ARRAY)
    matched = 0
    cycles = 0
    for anchor in anchors:
        result = gact_x_extend(target, query, anchor, scoring, params)
        if result.alignment is not None:
            matched += result.alignment.matches
        cycles += model.batch_cycles(result.tiles)
    return matched, cycles


@pytest.mark.benchmark(group="fig10")
def test_fig10_gact_vs_gactx(benchmark, distant_run):
    scoring = DarwinWGAConfig().scoring

    def evaluate():
        target, query, anchors = collect_anchors(distant_run)
        assert anchors, "no anchors survived filtering"
        gactx_matched, gactx_cycles = run_gact_x(
            target, query, anchors, scoring
        )
        sweep = [
            (memory, *run_gact(target, query, anchors, scoring, memory))
            for memory in MEMORY_POINTS
        ]
        return gactx_matched, gactx_cycles, sweep

    gactx_matched, gactx_cycles, sweep = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    gactx_bps = gactx_matched / (gactx_cycles / ARRAY.clock_hz)
    rows = [("GACT-X (default)", "~1MB", "1.00", "1.00")]
    normalised = []
    for memory, matched, cycles in sweep:
        bps = matched / (cycles / ARRAY.clock_hz) if cycles else 0.0
        quality = matched / gactx_matched if gactx_matched else 0.0
        throughput = bps / gactx_bps if gactx_bps else 0.0
        normalised.append((memory, quality, throughput))
        rows.append(
            (
                f"GACT tile={tile_size_for_memory(memory)}",
                f"{memory // 1024}KB",
                f"{quality:.2f}",
                f"{throughput:.2f}",
            )
        )
    print_table(
        "Figure 10: quality and throughput normalised to GACT-X",
        ["algorithm", "traceback mem", "matched bp", "throughput"],
        rows,
    )

    qualities = [q for _, q, _ in normalised]
    throughputs = [t for _, _, t in normalised]
    # Paper shapes: GACT does not exceed GACT-X quality (it terminates at
    # the long gaps its local-scored tiles cannot connect), more memory
    # does not hurt (within tile-placement noise), and throughput is
    # clearly below GACT-X because every tile computes T^2 cells.
    assert all(q <= 1.05 for q in qualities)
    assert qualities[-1] >= qualities[0] - 0.10
    assert all(t < 1.0 for t in throughputs)
    # At equal memory (1 MB), GACT loses on both axes (paper: 0.56x
    # quality, 0.66x throughput).
    assert qualities[1] < 0.95
    assert throughputs[1] < 0.95
