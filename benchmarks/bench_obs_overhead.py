"""Telemetry overhead of the repro.obs v2 instrumentation.

Measures what observability costs, merged into ``BENCH_PIPELINE.json``
under ``obs_overhead`` and gated by ``repro bench check``:

* **telemetry off** (target ≤1%) — a ``TelemetryOptions`` bundle
  attached to an untraced run adds only parent-side bookkeeping per
  gathered unit: two histogram observations, a few no-op progress
  calls and is-there-a-bus checks.  That cost is microseconds per unit
  against seconds of alignment, far below the end-to-end timing noise
  floor of a shared 1-core container (measured ~±4% here — see the
  ``noise`` block of the artifact), so it is measured directly: the
  exact per-unit bookkeeping sequence is timed in a tight loop and
  normalized by the end-to-end CPU time of the baseline run, with a
  generous ops-per-unit overestimate.  A sub-noise cost measured at
  its call site is a *more* accurate number than an end-to-end A/B
  that cannot resolve it; the signed end-to-end delta is still
  recorded for transparency.
* **telemetry on** (target ≤5%) — full ``Tracer`` plus the
  cross-process bus: workers serialize and stream span trees, funnel
  counters and resource samples as each unit completes.  This cost is
  large enough to resolve end-to-end: CPU time (parent + reaped
  workers via ``os.times``; wall clock is meaningless when 2 workers
  share 1 core) over interleaved rounds, each round on a fresh
  pre-warmed pool (a pool forked onto busy cores stays slow for its
  lifetime, so pool reuse bakes placement luck into a configuration),
  minimum per configuration compared.

Hard assertions: output identity across all configurations and zero
dropped/lost bus events.  Overheads are recorded signed; the gate
fails only slowdowns beyond target.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.pipeline import align_assemblies
from repro.genome import Assembly, Sequence, make_species_pair
from repro.obs import NO_PROGRESS, TelemetryOptions, Tracer
from repro.obs.tracer import NULL_TRACER
from repro.parallel import ExecutionEngine

from .conftest import (
    BENCH_PIPELINE_PATH,
    EXON_COUNT,
    PAIR_MODEL,
    PAIR_SPECS,
    print_table,
)
from .conftest import GENOME_LENGTH as FULL_GENOME_LENGTH

WORKERS = 2
TARGETS = {"telemetry_off": 0.01, "telemetry_on": 0.05}
#: Interleaved timed rounds per configuration; the minimum CPU time is
#: compared (the minimum estimates the contention-free run).
ROUNDS = 5
#: Smaller than the main pair runs: many short rounds beat one long
#: one on a noisy shared machine.
GENOME_LENGTH = FULL_GENOME_LENGTH // 2
#: Iterations of the off-path bookkeeping microbenchmark.
MICRO_ITERATIONS = 20_000
#: Deliberate overestimate of bookkeeping sequences per gathered unit
#: (one per unit plus one per extension batch; real runs see far
#: fewer) so the derived off-overhead is an upper bound.
OPS_PER_UNIT = 100


def _split_assembly(genome, prefix):
    half = len(genome.codes) // 2
    return Assembly(
        name=prefix,
        chromosomes=[
            Sequence(genome.codes[:half], name=f"{prefix}1"),
            Sequence(genome.codes[half:], name=f"{prefix}2"),
        ],
    )


def _alignment_key(result):
    """Byte-identity proxy: every alignment's full coordinate tuple."""
    return [
        (
            a.target_name,
            a.query_name,
            a.strand,
            a.target_start,
            a.target_end,
            a.query_start,
            a.query_end,
            a.score,
        )
        for a in result.alignments
    ]


def _cpu_now():
    """CPU seconds of this process plus every reaped child."""
    stamp = os.times()
    return (
        stamp.user + stamp.system + stamp.children_user + stamp.children_system
    )


def _bookkeeping_cost_per_op():
    """Seconds per off-path bookkeeping sequence, measured directly.

    This is the exact extra work ``_align_assemblies_parallel`` and
    ``_extend_parallel`` do per gathered unit when a telemetry bundle
    is attached to an untraced run (no bus, no tracer): two histogram
    observations into the registry, the no-op progress calls, and the
    bus-is-None checks.
    """
    telemetry = TelemetryOptions(progress=NO_PROGRESS)
    registry = telemetry.registry
    start = time.perf_counter()
    for index in range(MICRO_ITERATIONS):
        bus = telemetry.bus
        if bus is not None:  # pragma: no cover - off path has no bus
            raise AssertionError
        registry.histogram("queue_depth").observe(index % 7)
        registry.histogram("dispatch_latency_seconds").observe(1e-4)
        NO_PROGRESS.set_in_flight(index % 7)
        NO_PROGRESS.advance(units=1, cells=1000.0)
    return (time.perf_counter() - start) / MICRO_ITERATIONS


def _record(entry):
    try:
        artifact = json.loads(BENCH_PIPELINE_PATH.read_text())
    except (OSError, ValueError):
        artifact = {"version": 1}
    artifact["obs_overhead"] = entry
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True)
    )


@pytest.mark.benchmark(group="obs_overhead")
def test_telemetry_overhead(benchmark):
    name, distance, seed = PAIR_SPECS[-1]
    pair = make_species_pair(
        GENOME_LENGTH,
        distance,
        np.random.default_rng(seed),
        exon_count=EXON_COUNT,
        **PAIR_MODEL,
    )
    target = _split_assembly(pair.target.genome, "t")
    query = _split_assembly(pair.query.genome, "q")
    unit_count = 4  # 2 target x 2 query chromosomes

    off_telemetry = TelemetryOptions()
    on_telemetry = TelemetryOptions()
    # The on-config bus must exist before its pools build (the queue
    # rides the pool initializer); align_assemblies would do this
    # lazily, but here engines are built up front.
    on_telemetry.ensure_bus()

    configs = {
        "baseline": (None, lambda: NULL_TRACER),
        "telemetry_off": (off_telemetry, lambda: NULL_TRACER),
        "telemetry_on": (on_telemetry, Tracer),
    }

    def sweep():
        best = {}
        try:
            for _ in range(ROUNDS):
                for label, (telemetry, make_tracer) in configs.items():
                    with ExecutionEngine(
                        WORKERS, telemetry=telemetry
                    ) as engine:
                        # Warm the fresh pool with a full untimed run.
                        align_assemblies(target, query, engine=engine)
                        tracer = make_tracer()
                        cpu_start = _cpu_now()
                        wall_start = time.perf_counter()
                        result = align_assemblies(
                            target,
                            query,
                            engine=engine,
                            tracer=tracer,
                            telemetry=telemetry,
                        )
                        wall = time.perf_counter() - wall_start
                    # Engine closed: workers reaped, their CPU visible.
                    cpu = _cpu_now() - cpu_start
                    if label not in best or cpu < best[label][1]:
                        best[label] = (result, cpu, wall)
            on_summary = on_telemetry.finish()
        finally:
            on_telemetry.close()
        per_op = _bookkeeping_cost_per_op()

        baseline, base_cpu, base_wall = best["baseline"]
        off_result, off_cpu, _ = best["telemetry_off"]
        on_result, on_cpu, _ = best["telemetry_on"]
        assert off_telemetry.bus is None  # untraced runs never pay a bus
        assert _alignment_key(off_result) == _alignment_key(baseline)
        assert _alignment_key(on_result) == _alignment_key(baseline)
        bus = on_summary["bus"]
        assert bus is not None and bus["workers"] >= 1
        return {
            "cpu": {
                "baseline": base_cpu,
                "telemetry_off": off_cpu,
                "telemetry_on": on_cpu,
            },
            "base_wall": base_wall,
            "per_op": per_op,
            "bus": bus,
        }

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cpu = measured["cpu"]
    bus = measured["bus"]
    # Off: derived upper bound (call-site cost x generous op count,
    # normalized by baseline CPU) — see module docstring for why the
    # end-to-end delta cannot resolve this and is recorded as noise.
    off_derived = (
        measured["per_op"] * OPS_PER_UNIT * unit_count / cpu["baseline"]
    )
    off_signed = cpu["telemetry_off"] / cpu["baseline"] - 1.0
    on_overhead = cpu["telemetry_on"] / cpu["baseline"] - 1.0
    overhead = {
        "telemetry_off": off_derived,
        "telemetry_on": on_overhead,
    }
    dropped = bus["dropped_events"] + bus["lost_events"]
    _record(
        {
            "pair": name,
            "genome_length": GENOME_LENGTH,
            "workers": WORKERS,
            "rounds": ROUNDS,
            "cpu_seconds": cpu,
            "overhead": overhead,
            "targets": dict(TARGETS),
            "method": {
                "telemetry_off": (
                    "per-unit bookkeeping microbenchmark x "
                    f"{OPS_PER_UNIT} ops/unit upper bound, normalized "
                    "by baseline CPU (end-to-end A/B cannot resolve "
                    "a sub-noise cost; see EXPERIMENTS.md)"
                ),
                "telemetry_on": (
                    "end-to-end CPU A/B, min of interleaved rounds on "
                    "fresh pre-warmed pools"
                ),
            },
            "noise": {
                "telemetry_off_end_to_end_signed": off_signed,
                "bookkeeping_seconds_per_op": measured["per_op"],
            },
            "events": bus["events"],
            "dropped_events": dropped,
            "identical_output": True,
        }
    )

    assert dropped == 0
    assert off_derived < TARGETS["telemetry_off"]
    print_table(
        f"Telemetry overhead ({name}, {GENOME_LENGTH:,} bp, "
        f"{WORKERS} workers, min CPU of {ROUNDS} rounds)",
        ("configuration", "cpu s", "overhead", "target"),
        [
            ("baseline (null tracer)", f"{cpu['baseline']:.2f}", "-", "-"),
            (
                "telemetry off (derived)",
                f"{cpu['telemetry_off']:.2f}",
                f"{off_derived * 100:+.4f}%",
                f"<{TARGETS['telemetry_off']:.0%}",
            ),
            (
                "telemetry on (bus)",
                f"{cpu['telemetry_on']:.2f}",
                f"{on_overhead * 100:+.1f}%",
                f"<{TARGETS['telemetry_on']:.0%}",
            ),
        ],
    )
