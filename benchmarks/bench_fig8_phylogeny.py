"""Figure 8: phylogenetic distances and trees from WGA output.

The paper reports PHAST distances between its species (Figure 8).  Here
four synthetic species are evolved from a common ancestor along a known
tree; each pair is aligned with Darwin-WGA, the K80 distance is estimated
from the alignments, and a neighbour-joining tree is rebuilt.  Shape to
reproduce: the estimated distances recover the planted branch-length
ordering and the NJ topology groups the correct sister species.
"""

import numpy as np
import pytest

from repro.core import DarwinWGA
from repro.genome import EvolutionParams, evolve
from repro.genome.synthesis import markov_genome
from repro.phylo import estimate_distance, neighbour_joining, tree_distance

from .conftest import print_table

GENOME = 15000


def make_clade():
    """Four species on a known tree: ((A,B),(C,D)) with short/long arms."""
    rng = np.random.default_rng(88)
    root = markov_genome(GENOME, rng, name="root")

    def branch(seq, distance, name):
        params = EvolutionParams(
            distance=distance, indel_per_substitution=0.02
        )
        return evolve(seq, [], params, rng, name=name).genome

    left = branch(root, 0.15, "left")
    right = branch(root, 0.15, "right")
    return {
        "A": branch(left, 0.05, "A"),
        "B": branch(left, 0.05, "B"),
        "C": branch(right, 0.10, "C"),
        "D": branch(right, 0.10, "D"),
    }


@pytest.mark.benchmark(group="fig8")
def test_fig8_phylogeny(benchmark):
    def evaluate():
        species = make_clade()
        names = sorted(species)
        aligner = DarwinWGA()
        n = len(names)
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                result = aligner.align(species[names[i]], species[names[j]])
                d = estimate_distance(
                    species[names[i]], species[names[j]], result.alignments
                )
                matrix[i, j] = matrix[j, i] = d
        return names, matrix

    names, matrix = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = [
        (names[i], names[j], f"{matrix[i, j]:.3f}")
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]
    print_table(
        "Figure 8: estimated pairwise distances (subs/site)",
        ["species 1", "species 2", "K80 distance"],
        rows,
    )
    tree = neighbour_joining(names, matrix)
    print("NJ tree:", tree.newick())

    idx = {name: i for i, name in enumerate(names)}
    # Sister pairs are closer than cross-clade pairs.
    assert matrix[idx["A"], idx["B"]] < matrix[idx["A"], idx["C"]]
    assert matrix[idx["C"], idx["D"]] < matrix[idx["B"], idx["D"]]
    # Planted A-B distance ~0.10, A-C ~0.55: recover within tolerance.
    assert matrix[idx["A"], idx["B"]] == pytest.approx(0.10, rel=0.4)
    assert matrix[idx["A"], idx["C"]] == pytest.approx(0.55, rel=0.4)
    # NJ keeps sisters together: patristic distance A-B < A-C.
    assert tree_distance(tree, "A", "B") < tree_distance(tree, "A", "C")
