"""Shared infrastructure for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation section has a benchmark
module here.  The species pairs are synthetic (see DESIGN.md): four pairs
at increasing phylogenetic distance stand in for dm6-droSim1, dm6-droYak2,
dm6-dp4 and ce11-cb4.  Both aligners run once per pair (session-scoped
cache); the individual benchmarks derive their tables from those runs.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1.0) to grow/shrink the
synthetic genomes; shapes are stable across scales, absolute numbers grow
with genome size.
"""

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.chain import build_chains
from repro.core import DarwinWGA
from repro.genome import make_species_pair
from repro.lastz import LastzAligner

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Synthetic stand-ins for the paper's four species pairs, ordered from
#: closest to most distant (Figure 8 distances in substitutions/site).
PAIR_SPECS = (
    ("dm6-droSim1", 0.11, 42),
    ("dm6-droYak2", 0.23, 43),
    ("dm6-dp4", 0.55, 44),
    ("ce11-cb4", 1.32, 45),
)

GENOME_LENGTH = int(30000 * SCALE)
EXON_COUNT = max(4, int(14 * SCALE))


@dataclass
class PairRun:
    """Everything the benchmarks need about one species pair."""

    name: str
    distance: float
    pair: object
    darwin: object
    lastz: object
    darwin_chains: list
    lastz_chains: list


#: Mosaic-model parameters (see DESIGN.md): ~35% of the genome alignable
#: in ~300 bp islands, indel density ~1 event/7 substitutions (saturating
#: with distance), plus codon-aligned indels inside exons.
PAIR_MODEL = dict(
    alignable_fraction=0.35,
    island_mean_length=300,
    island_distance_cap=0.4,
    indel_per_substitution=0.14,
    exon_indel_per_substitution=0.05,
)


def _run_pair(name, distance, seed):
    pair = make_species_pair(
        GENOME_LENGTH,
        distance,
        np.random.default_rng(seed),
        exon_count=EXON_COUNT,
        **PAIR_MODEL,
    )
    target, query = pair.target.genome, pair.query.genome
    darwin = DarwinWGA().align(target, query)
    lastz = LastzAligner().align(target, query)
    return PairRun(
        name=name,
        distance=distance,
        pair=pair,
        darwin=darwin,
        lastz=lastz,
        darwin_chains=build_chains(darwin.alignments),
        lastz_chains=build_chains(lastz.alignments),
    )


@pytest.fixture(scope="session")
def pair_runs():
    """Both aligners on all four species pairs (cached per session)."""
    return [_run_pair(*spec) for spec in PAIR_SPECS]


@pytest.fixture(scope="session")
def distant_run(pair_runs):
    """The most distant pair (the ce11-cb4 stand-in)."""
    return pair_runs[-1]


@pytest.fixture(scope="session")
def close_run(pair_runs):
    return pair_runs[0]


def print_table(title, headers, rows):
    """Render a paper-style table to stdout (captured with ``-s``)."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
